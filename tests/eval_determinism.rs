//! Determinism contract of the evaluation pipeline stage.
//!
//! The graph and workload stages promise byte-identical artifacts at
//! every thread count; the `--eval` matrix keeps the same promise for its
//! deterministic outputs whenever cell outcomes cannot race the wall
//! clock — pinned here in the two regimes that guarantee it:
//!
//! * **no time limit** (`budget_ms = 0`): outcomes depend only on the
//!   tuple cap, a pure function of the plan and seed;
//! * **budget exhaustion**: an already-expired clock (every cell times
//!   out) and a tiny tuple cap (every heavy cell reports too-large) are
//!   equally scheduling-independent.
//!
//! Byte-identity is asserted for the `eval.txt` artifact and for the
//! `eval` object of `summary.json`, library- and CLI-level, at 1/2/8
//! threads.

use gmark::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn bib_config() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/configs/bib.xml")
}

/// A small deterministic eval plan over the shipped bib.xml scenario:
/// no per-cell time limit, tuple cap tight enough to finish fast in debug
/// builds (recursive quadratic cells report too-large instead of
/// grinding).
fn eval_plan() -> RunPlan {
    let mut plan = RunPlan::from_config_file(bib_config())
        .expect("bib.xml parses")
        .with_nodes(250);
    plan.eval = Some(EvalSpec {
        budget_ms: 0,
        max_tuples: 100_000,
        ..EvalSpec::default()
    });
    plan
}

/// The `"eval":{...}` suffix of a `summary.json` document. The whole file
/// cannot be byte-compared across thread counts (it records `threads` and
/// wall-clock `seconds` for the other stages); the eval object is the
/// part this PR's contract covers, and it is last in the key order.
fn eval_json_section(summary: &[u8]) -> String {
    let text = String::from_utf8(summary.to_vec()).expect("summary.json is UTF-8");
    let at = text.find("\"eval\"").expect("summary has an eval key");
    text[at..].to_owned()
}

#[test]
fn library_eval_report_is_byte_identical_across_thread_counts() {
    let plan = eval_plan();
    let run_at = |threads: usize| {
        let mut sink = MemorySink::new();
        run(
            &plan,
            &RunOptions::with_seed(11).threads(threads),
            &mut sink,
        )
        .expect("pipeline runs");
        (
            sink.bytes(Artifact::EvalReport).expect("eval.txt written"),
            eval_json_section(&sink.bytes(Artifact::Summary).expect("summary rendered")),
        )
    };
    let (base_report, base_json) = run_at(1);
    assert!(!base_report.is_empty());
    let base_text = String::from_utf8(base_report.clone()).unwrap();
    assert!(
        base_text.contains("class="),
        "per-query metadata missing: {base_text}"
    );
    // The default regime is planner-on: the report says so, ok cells carry
    // the est~actual annotation, and the plan-quality totals close it.
    assert!(base_text.contains("planner: on"), "{base_text}");
    assert!(base_text.contains('~'), "{base_text}");
    assert!(base_text.contains("\nplan: "), "{base_text}");
    // …and cache-on: the header names the budget and hit counters, and the
    // summary's eval object records them — so this whole test pins that
    // the cache's contents (and therefore its stats) are byte-identical at
    // every thread count, not just the cells.
    assert!(base_text.contains("\ncache: on ("), "{base_text}");
    assert!(
        base_json.contains("\"cache\":{\"enabled\":true"),
        "{base_json}"
    );
    for threads in [2usize, 8] {
        let (report, json) = run_at(threads);
        assert_eq!(report, base_report, "eval.txt differs at {threads} threads");
        assert_eq!(json, base_json, "summary eval differs at {threads} threads");
    }
}

#[test]
fn planner_off_eval_report_is_byte_identical_across_thread_counts() {
    let mut plan = eval_plan();
    plan.eval.as_mut().expect("eval spec set").plan = false;
    let run_at = |threads: usize| {
        let mut sink = MemorySink::new();
        run(
            &plan,
            &RunOptions::with_seed(11).threads(threads),
            &mut sink,
        )
        .expect("pipeline runs");
        (
            sink.bytes(Artifact::EvalReport).expect("eval.txt written"),
            eval_json_section(&sink.bytes(Artifact::Summary).expect("summary rendered")),
        )
    };
    let (base_report, base_json) = run_at(1);
    let base_text = String::from_utf8(base_report.clone()).unwrap();
    assert!(base_text.contains("planner: off"), "{base_text}");
    assert!(!base_text.contains('~'), "{base_text}");
    assert!(base_json.contains("\"plan\":false"), "{base_json}");
    for threads in [2usize, 8] {
        let (report, json) = run_at(threads);
        assert_eq!(report, base_report, "eval.txt differs at {threads} threads");
        assert_eq!(json, base_json, "summary eval differs at {threads} threads");
    }
}

#[test]
fn cache_off_changes_only_the_cache_header_and_stats() {
    // With planning off (so the planner cannot consult cached exact
    // cardinalities and reorder joins), disabling the cache may change
    // nothing in the artifacts except the lines that *describe* the cache:
    // the `cache:` header of eval.txt and the `"cache"` object of the
    // summary. Every cell line must be byte-identical.
    let mut plan_on = eval_plan();
    plan_on.eval.as_mut().expect("eval spec set").plan = false;
    let mut plan_off = eval_plan();
    {
        let spec = plan_off.eval.as_mut().expect("eval spec set");
        spec.plan = false;
        spec.cache = false;
    }
    let opts = RunOptions::with_seed(11).threads(2);
    let arts_of = |plan: &RunPlan| {
        let mut sink = MemorySink::new();
        run(plan, &opts, &mut sink).expect("pipeline runs");
        (
            String::from_utf8(sink.bytes(Artifact::EvalReport).expect("eval.txt written"))
                .expect("eval.txt is UTF-8"),
            eval_json_section(&sink.bytes(Artifact::Summary).expect("summary rendered")),
        )
    };
    let (on_txt, on_json) = arts_of(&plan_on);
    let (off_txt, off_json) = arts_of(&plan_off);
    assert!(on_txt.contains("\ncache: on ("), "{on_txt}");
    assert!(off_txt.contains("\ncache: off"), "{off_txt}");
    let strip = |text: &str| {
        text.lines()
            .filter(|l| !l.starts_with("cache: "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&on_txt), strip(&off_txt), "a cell line moved");
    assert!(on_json.contains("\"cache\":{\"enabled\":true"), "{on_json}");
    assert!(
        off_json.contains("\"cache\":{\"enabled\":false}"),
        "{off_json}"
    );
    let scrub = |json: &str| {
        let start = json.find("\"cache\":").expect("summary has a cache key");
        let end = start + json[start..].find('}').expect("cache object closes") + 1;
        format!("{}{}", &json[..start], &json[end..])
    };
    assert_eq!(scrub(&on_json), scrub(&off_json), "an eval row moved");
}

#[test]
fn planner_never_changes_answer_cardinalities() {
    // `--no-plan` vs the default: plans reorder joins, so the evaluation
    // *cost* differs — which cells exhaust the tuple cap may differ too —
    // but any cell that completes in both regimes must report the same
    // answer cardinality.
    let planned = eval_plan();
    let mut unplanned = eval_plan();
    unplanned.eval.as_mut().expect("eval spec set").plan = false;
    let opts = RunOptions::with_seed(11).threads(2);
    let rows_of = |plan: &RunPlan| {
        run_in_memory(plan, &opts)
            .expect("pipeline runs")
            .summary
            .eval
            .expect("eval ran")
            .rows
    };
    let on = rows_of(&planned);
    let off = rows_of(&unplanned);
    assert_eq!(on.len(), off.len());
    let mut compared = 0;
    for (a, b) in on.iter().zip(&off) {
        assert_eq!((a.query, a.engine), (b.query, b.engine));
        assert!(a.estimate.is_some(), "planner-on rows carry the estimate");
        assert!(b.estimate.is_none(), "planner-off rows carry none");
        if let (Some(ca), Some(cb)) = (a.count, b.count) {
            assert_eq!(ca, cb, "q{} {} cardinality changed", a.query, a.engine);
            compared += 1;
        }
    }
    assert!(compared > 0, "no cell completed in both regimes");
}

#[test]
fn eval_does_not_change_any_generated_artifact_bytes() {
    // With --eval the run materializes the workload once and renders the
    // documents from it (instead of streaming); every generated artifact
    // must stay byte-identical to a plain run of the same plan.
    let plan_eval = eval_plan();
    let mut plan_plain = eval_plan();
    plan_plain.eval = None;
    let opts = RunOptions::with_seed(13).threads(2);
    let mut with_eval = MemorySink::new();
    run(&plan_eval, &opts, &mut with_eval).expect("eval run");
    let mut plain = MemorySink::new();
    run(&plan_plain, &opts, &mut plain).expect("plain run");
    for artifact in [
        Artifact::Graph,
        Artifact::Rules,
        Artifact::Sparql,
        Artifact::Cypher,
        Artifact::Sql,
        Artifact::Datalog,
    ] {
        assert_eq!(
            with_eval.bytes(artifact),
            plain.bytes(artifact),
            "{artifact} bytes changed by --eval"
        );
    }
    assert!(with_eval.bytes(Artifact::EvalReport).is_some());
    assert!(plain.bytes(Artifact::EvalReport).is_none());
}

#[test]
fn in_memory_eval_outcomes_are_thread_count_invariant() {
    let plan = eval_plan();
    let digest = |threads: usize| {
        let arts = run_in_memory(&plan, &RunOptions::with_seed(5).threads(threads))
            .expect("pipeline runs");
        let report = arts.eval.expect("eval matrix ran");
        report
            .cells
            .iter()
            .map(|c| (c.query, c.engine, c.outcome.label()))
            .collect::<Vec<_>>()
    };
    let base = digest(1);
    assert_eq!(base.len(), 48, "12 queries x 4 engines");
    assert_eq!(digest(2), base);
    assert_eq!(digest(8), base);
}

#[test]
fn tuple_budget_exhaustion_is_deterministic_across_thread_counts() {
    // A cap of 1 tuple: every non-empty cell fails deterministically with
    // too-large — no clock involved at all.
    let mut plan = eval_plan();
    plan.eval = Some(EvalSpec {
        budget_ms: 0,
        max_tuples: 1,
        ..EvalSpec::default()
    });
    let render_at = |threads: usize| {
        let arts = run_in_memory(&plan, &RunOptions::with_seed(3).threads(threads))
            .expect("pipeline runs");
        let summary = arts.summary.eval.expect("eval ran");
        assert!(summary.too_large > 0, "the cap must bite");
        arts.eval.expect("matrix kept").render()
    };
    let base = render_at(1);
    assert_eq!(render_at(2), base);
    assert_eq!(render_at(8), base);
}

#[test]
fn expired_clock_budget_times_out_every_cell_at_every_thread_count() {
    // The wall-clock side of budget exhaustion, pinned without sleeping:
    // a zero timeout expires the per-cell deadline before the first
    // Budget::check_time, so every cell reports timeout — deterministic
    // at any thread count even though a clock is involved.
    let arts = run_in_memory(
        &RunPlan::builder(gmark::core::usecases::bib())
            .nodes(200)
            .workload(WorkloadConfig::new(4).with_seed(9))
            .build()
            .unwrap(),
        &RunOptions::with_seed(9),
    )
    .expect("pipeline runs");
    let graph = arts.graph.expect("graph built");
    let workload = arts.workload.expect("workload built");
    let queries: Vec<&Query> = workload.queries.iter().map(|gq| &gq.query).collect();
    let ctx = EvalContext::new(&graph);
    let expired = CellBudget {
        timeout: Some(Duration::ZERO),
        max_tuples: usize::MAX,
    };
    let render_at = |threads: usize| {
        let report = evaluate_matrix(
            &ctx,
            &queries,
            &EngineKind::ALL,
            &expired,
            &MatrixOptions {
                threads,
                warm_runs: 0,
                ..MatrixOptions::default()
            },
        );
        let totals = report.totals();
        assert_eq!(totals.timeout, totals.cells, "{totals:?}");
        report.render()
    };
    let base = render_at(1);
    assert_eq!(render_at(2), base);
    assert_eq!(render_at(8), base);

    // The deadline semantics behind it, via the injected clock (the
    // deflaked Budget::check_time_at path): the same budget that judges a
    // later instant expired judges the start instant fine.
    let now = Instant::now();
    let budget = Budget::with_timeout(Duration::from_secs(3600));
    assert!(budget.check_time_at(now).is_ok());
    assert_eq!(
        budget.check_time_at(now + Duration::from_secs(7200)),
        Err(EvalError::Timeout)
    );
}

#[test]
fn cli_eval_outputs_are_byte_identical_across_thread_counts() {
    let out_dir = |threads: usize| {
        std::env::temp_dir().join(format!("gmark-evaldet-{}-t{threads}", std::process::id()))
    };
    let run_at = |threads: usize| {
        let dir = out_dir(threads);
        let status = Command::new(env!("CARGO_BIN_EXE_gmark"))
            .args([
                "--config",
                bib_config().to_str().unwrap(),
                "--output",
                dir.to_str().unwrap(),
                "--nodes",
                "250",
                "--seed",
                "11",
                "--eval",
                "--budget-ms",
                "0",
                "--max-tuples",
                "100000",
                "--threads",
                &threads.to_string(),
                "--format",
                "json",
            ])
            .output()
            .expect("spawning the gmark binary");
        assert!(
            status.status.success(),
            "gmark --eval failed at {threads} threads: {}",
            String::from_utf8_lossy(&status.stderr)
        );
        let report = std::fs::read(dir.join("eval.txt")).expect("eval.txt written");
        let summary = std::fs::read(dir.join("summary.json")).expect("summary.json written");
        (report, eval_json_section(&summary))
    };
    let (base_report, base_json) = run_at(1);
    for threads in [2usize, 8] {
        let (report, json) = run_at(threads);
        assert_eq!(report, base_report, "eval.txt differs at {threads} threads");
        assert_eq!(json, base_json, "summary eval differs at {threads} threads");
    }
    for threads in [1usize, 2, 8] {
        let _ = std::fs::remove_dir_all(out_dir(threads));
    }
}
