//! Differential testing of the four evaluation engines.
//!
//! The relational, triple-store, and Datalog engines implement the same
//! UCRPQ semantics through three different architectures; on any graph and
//! any query they must agree exactly. The navigational engine evaluates
//! the openCypher-degraded query (Section 7.1), so it is only required to
//! agree on queries the degradation leaves untouched.

use gmark::prelude::*;
use proptest::prelude::*;

/// A deterministic random graph over `n` nodes and `preds` labels.
fn random_graph(n: u32, preds: usize, edges_per_pred: usize, seed: u64) -> Graph {
    let mut rng = gmark::stats::Prng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(TypePartition::from_counts(&[n as u64]), preds);
    for p in 0..preds {
        for _ in 0..edges_per_pred {
            let s = rng.below(n as u64) as NodeId;
            let t = rng.below(n as u64) as NodeId;
            b.edge(s, p, t);
        }
    }
    b.build()
}

/// Strategy: a random path of up to 3 symbols over `preds` labels.
fn arb_path(preds: usize) -> impl Strategy<Value = PathExpr> {
    prop::collection::vec((0..preds, any::<bool>()), 1..=3).prop_map(|syms| {
        PathExpr(
            syms.into_iter()
                .map(|(p, inv)| {
                    let s = Symbol::forward(PredicateId(p));
                    if inv {
                        s.flipped()
                    } else {
                        s
                    }
                })
                .collect(),
        )
    })
}

/// Strategy: a regular expression with 1–2 disjuncts, possibly starred.
fn arb_expr(preds: usize) -> impl Strategy<Value = RegularExpr> {
    (prop::collection::vec(arb_path(preds), 1..=2), any::<bool>())
        .prop_map(|(disjuncts, starred)| RegularExpr { disjuncts, starred })
}

/// Strategy: a chain query of 1–3 conjuncts.
fn arb_chain(preds: usize) -> impl Strategy<Value = Query> {
    prop::collection::vec(arb_expr(preds), 1..=3).prop_map(|exprs| {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .expect("chains are well-formed")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relational_triplestore_datalog_agree(
        seed in 0u64..1000,
        query in arb_chain(2),
    ) {
        let graph = random_graph(30, 2, 45, seed);
        let budget = Budget::default();
        let a = RelationalEngine.evaluate(&graph, &query, &budget).unwrap();
        let b = TripleStoreEngine.evaluate(&graph, &query, &budget).unwrap();
        let c = DatalogEngine.evaluate(&graph, &query, &budget).unwrap();
        prop_assert_eq!(&a, &b, "relational vs triplestore");
        prop_assert_eq!(&a, &c, "relational vs datalog");
    }

    #[test]
    fn navigational_agrees_when_not_degraded(
        seed in 0u64..1000,
        query in arb_chain(2),
    ) {
        let (degraded, lossy) =
            gmark::engines::navigational::degrade_for_cypher(&query);
        prop_assume!(!lossy && degraded == query);
        let graph = random_graph(30, 2, 45, seed);
        let budget = Budget::default();
        let a = RelationalEngine.evaluate(&graph, &query, &budget).unwrap();
        let n = NavigationalEngine.evaluate(&graph, &query, &budget).unwrap();
        prop_assert_eq!(a, n);
    }

    #[test]
    fn boolean_queries_agree(
        seed in 0u64..1000,
        expr in arb_expr(2),
    ) {
        let query = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct { src: Var(0), expr, trg: Var(1) }],
        }).unwrap();
        let graph = random_graph(20, 2, 25, seed);
        let budget = Budget::default();
        let a = RelationalEngine.evaluate(&graph, &query, &budget).unwrap();
        let c = DatalogEngine.evaluate(&graph, &query, &budget).unwrap();
        prop_assert_eq!(a.non_empty(), c.non_empty());
    }

    #[test]
    fn star_shaped_queries_agree(
        seed in 0u64..1000,
        e1 in arb_expr(2),
        e2 in arb_expr(2),
    ) {
        // (?c, e1, ?x), (?c, e2, ?y) projected on (x, y).
        let query = Query::single(Rule {
            head: vec![Var(1), Var(2)],
            body: vec![
                Conjunct { src: Var(0), expr: e1, trg: Var(1) },
                Conjunct { src: Var(0), expr: e2, trg: Var(2) },
            ],
        }).unwrap();
        let graph = random_graph(20, 2, 25, seed);
        let budget = Budget::default();
        let a = RelationalEngine.evaluate(&graph, &query, &budget).unwrap();
        let b = TripleStoreEngine.evaluate(&graph, &query, &budget).unwrap();
        let c = DatalogEngine.evaluate(&graph, &query, &budget).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}

// Differential correctness on the *generator's own* output: for
// non-recursive workloads (no stars ⇒ no Section 7.1 degradation ⇒ even
// the navigational engine must agree), all engines produce identical
// sorted answer sets over small generated graphs — through one shared
// EvalContext per graph, so this also pins that the shared-index path
// computes the same answers as the paper semantics.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engines_agree_on_nonrecursive_generated_workloads(seed in 0u64..400) {
        let schema = gmark::core::usecases::bib();
        let config = GraphConfig::new(250, schema.clone());
        let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(seed));
        let mut wcfg = WorkloadConfig::new(6).with_seed(seed ^ 0xD1FF);
        wcfg.recursion_probability = 0.0; // non-recursive ⇒ non-degraded
        let (workload, _) = generate_workload(&schema, &wcfg).expect("workload generates");
        let ctx = EvalContext::new(&graph);
        let budget = Budget::default();
        for gq in &workload.queries {
            prop_assert!(!gq.query.is_recursive());
            let (_, lossy) = gmark::engines::navigational::degrade_for_cypher(&gq.query);
            prop_assert!(!lossy, "non-recursive queries cannot be degraded");
            let reference = RelationalEngine
                .evaluate_ctx(&ctx, &gq.query, &budget)
                .unwrap();
            // The same cardinalities must come out with the shared
            // statistics plan ordering every engine's joins and without it
            // — plans change evaluation order, never answers.
            let plan = plan_query(&ctx, Some(&schema), &gq.query);
            for kind in EngineKind::ALL {
                let answers = kind.evaluate(&ctx, &gq.query, &budget).unwrap();
                prop_assert_eq!(
                    &answers,
                    &reference,
                    "{} differs on {:?}",
                    kind.name(),
                    gq.query
                );
                let planned = kind
                    .evaluate_with(&ctx, &gq.query, Some(&plan), &budget)
                    .unwrap();
                prop_assert_eq!(
                    &planned,
                    &reference,
                    "{} planned differs on {:?}",
                    kind.name(),
                    gq.query
                );
            }
        }
    }
}

#[test]
fn shared_context_matches_per_call_contexts() {
    // The shared EvalContext path (one context, many queries/engines)
    // must produce the same *result* — answers or typed budget failure —
    // as Engine::evaluate's fresh-context path. The tight tuple cap keeps
    // heavy recursive cells cheap (they fail identically on both paths).
    let schema = gmark::core::usecases::bib();
    let config = GraphConfig::new(300, schema.clone());
    let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(21));
    let mut wcfg = WorkloadConfig::new(8).with_seed(22);
    wcfg.recursion_probability = 0.3;
    let (workload, _) = generate_workload(&schema, &wcfg).expect("workload generates");
    let ctx = EvalContext::new(&graph);
    let budget = Budget::with_limits(None, 200_000);
    for gq in &workload.queries {
        for kind in EngineKind::ALL {
            let shared = kind.evaluate(&ctx, &gq.query, &budget);
            let fresh = match kind {
                EngineKind::Relational => RelationalEngine.evaluate(&graph, &gq.query, &budget),
                EngineKind::Navigational => NavigationalEngine.evaluate(&graph, &gq.query, &budget),
                EngineKind::TripleStore => TripleStoreEngine.evaluate(&graph, &gq.query, &budget),
                EngineKind::Datalog => DatalogEngine.evaluate(&graph, &gq.query, &budget),
            };
            assert_eq!(shared, fresh, "{} on {:?}", kind.name(), gq.query);
        }
    }
}

#[test]
fn engines_agree_on_generated_workloads() {
    // Not random shapes: the actual gMark workload generator's output.
    let schema = gmark::core::usecases::bib();
    let config = GraphConfig::new(600, schema.clone());
    let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(13));
    let mut wcfg = WorkloadConfig::new(15).with_seed(17);
    wcfg.recursion_probability = 0.3;
    let (workload, _) = generate_workload(&schema, &wcfg).expect("workload generates");
    let budget = Budget::default();
    for gq in &workload.queries {
        let a = RelationalEngine
            .evaluate(&graph, &gq.query, &budget)
            .unwrap();
        let b = TripleStoreEngine
            .evaluate(&graph, &gq.query, &budget)
            .unwrap();
        let c = DatalogEngine.evaluate(&graph, &gq.query, &budget).unwrap();
        assert_eq!(a, b, "relational vs triplestore on {:?}", gq.query);
        assert_eq!(a, c, "relational vs datalog on {:?}", gq.query);
    }
}
