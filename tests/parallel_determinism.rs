//! The parallel pipeline's core guarantee: `generate_graph` produces a
//! bit-identical graph and report at every thread count.
//!
//! Each schema constraint draws from an RNG stream split off the master
//! seed by constraint index, shards are merged in ascending constraint
//! order, and CSR finalization is a pure per-predicate function — so
//! neither worker count nor scheduling may influence the output. This test
//! pins that contract for the paper's bibliographical and social-network
//! scenarios, comparing both the structured graphs and their N-Triples
//! serializations byte for byte.

use gmark::prelude::*;
use gmark::store::NTriplesWriter;
use gmark_core::gen::GenReport;
use gmark_core::usecases;

/// Serializes a graph to N-Triples bytes (predicate-major, CSR order).
fn to_ntriples(graph: &Graph, schema: &gmark::core::schema::Schema) -> Vec<u8> {
    let mut buf = Vec::new();
    {
        let mut writer = NTriplesWriter::new(&mut buf, schema.predicate_names());
        for pred in 0..graph.predicate_count() {
            for (src, trg) in graph.edges(pred) {
                writer.edge(src, pred, trg);
            }
        }
        writer.finish().expect("in-memory write cannot fail");
    }
    buf
}

fn assert_identical(a: &Graph, b: &Graph, what: &str) {
    assert_eq!(a.partition(), b.partition(), "{what}: partitions differ");
    assert_eq!(
        a.predicate_count(),
        b.predicate_count(),
        "{what}: predicate counts differ"
    );
    for pred in 0..a.predicate_count() {
        assert_eq!(
            a.forward(pred),
            b.forward(pred),
            "{what}: forward CSR differs for predicate {pred}"
        );
        assert_eq!(
            a.backward(pred),
            b.backward(pred),
            "{what}: backward CSR differs for predicate {pred}"
        );
    }
}

fn assert_same_report(a: &GenReport, b: &GenReport, what: &str) {
    assert_eq!(a.total_edges, b.total_edges, "{what}: total_edges differ");
    assert_eq!(
        a.constraints, b.constraints,
        "{what}: per-constraint reports differ"
    );
}

fn check_scenario(name: &str, schema: gmark::core::schema::Schema, n: u64, seed: u64) {
    let config = GraphConfig::new(n, schema.clone());
    let baseline_opts = GeneratorOptions {
        threads: 1,
        ..GeneratorOptions::with_seed(seed)
    };
    let (baseline, baseline_report) = generate_graph(&config, &baseline_opts);
    let baseline_nt = to_ntriples(&baseline, &schema);
    assert!(
        baseline_report.total_edges > 0,
        "{name}: empty baseline graph"
    );

    for threads in [2usize, 8] {
        let opts = GeneratorOptions {
            threads,
            ..GeneratorOptions::with_seed(seed)
        };
        let (graph, report) = generate_graph(&config, &opts);
        let what = format!("{name}, {threads} threads");
        assert_identical(&baseline, &graph, &what);
        assert_same_report(&baseline_report, &report, &what);
        assert_eq!(
            baseline_nt,
            to_ntriples(&graph, &schema),
            "{what}: N-Triples serialization differs"
        );
    }
}

#[test]
fn bib_is_identical_across_thread_counts() {
    check_scenario("bib", usecases::bib(), 5_000, 0xB1B);
}

#[test]
fn social_network_is_identical_across_thread_counts() {
    check_scenario("lsn", usecases::lsn(), 5_000, 0x15D);
}

#[test]
fn reports_are_identical_even_when_threads_exceed_constraints() {
    // More workers than constraints: surplus threads must idle, not skew.
    let schema = usecases::bib();
    let config = GraphConfig::new(1_000, schema.clone());
    let constraints = schema.constraints().len();
    let opts_seq = GeneratorOptions {
        threads: 1,
        ..GeneratorOptions::with_seed(7)
    };
    let opts_wide = GeneratorOptions {
        threads: constraints + 13,
        ..GeneratorOptions::with_seed(7)
    };
    let (a, ra) = generate_graph(&config, &opts_seq);
    let (b, rb) = generate_graph(&config, &opts_wide);
    assert_identical(&a, &b, "bib, oversubscribed threads");
    assert_same_report(&ra, &rb, "bib, oversubscribed threads");
}
