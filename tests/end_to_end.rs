//! End-to-end pipeline tests: XML configuration → graph generation →
//! workload generation → translation → evaluation (the full Fig. 1
//! workflow of the paper).

use gmark::config::{parse_config, write_config};
use gmark::prelude::*;
use gmark::translate::{translate_all, Syntax};

const CONFIG: &str = r#"
<generator>
  <graph>
    <nodes>800</nodes>
    <types>
      <type name="researcher" proportion="0.5"/>
      <type name="paper" proportion="0.3"/>
      <type name="conference" proportion="0.2"/>
      <type name="city" fixed="20"/>
    </types>
    <predicates>
      <predicate name="authors"/>
      <predicate name="publishedIn"/>
      <predicate name="heldIn"/>
    </predicates>
    <constraints>
      <constraint source="researcher" predicate="authors" target="paper">
        <indistribution type="gaussian" mu="3" sigma="1"/>
        <outdistribution type="zipfian" s="2.5"/>
      </constraint>
      <constraint source="paper" predicate="publishedIn" target="conference">
        <outdistribution type="uniform" min="1" max="1"/>
      </constraint>
      <constraint source="conference" predicate="heldIn" target="city">
        <indistribution type="zipfian" s="2.5"/>
        <outdistribution type="uniform" min="1" max="1"/>
      </constraint>
    </constraints>
  </graph>
  <workload size="12" seed="11">
    <arity>2</arity>
    <shape>chain</shape>
    <selectivity>constant</selectivity>
    <selectivity>linear</selectivity>
    <selectivity>quadratic</selectivity>
    <conjuncts min="1" max="2"/>
    <length min="1" max="3"/>
  </workload>
</generator>"#;

#[test]
fn xml_to_graph_to_workload_to_answers() {
    // The full Fig. 1 workflow through the unified pipeline API: one plan
    // from XML, one in-memory run, everything evaluated downstream.
    let plan = RunPlan::from_xml(CONFIG).expect("config parses");
    let arts = run_in_memory(&plan, &RunOptions::with_seed(5)).expect("pipeline runs");
    let gsum = arts.summary.graph.as_ref().expect("graph generated");
    assert!(
        gsum.edges_generated > 100,
        "edges: {}",
        gsum.edges_generated
    );
    let graph = arts.graph.expect("graph materialized");
    assert_eq!(graph.node_count(), 820); // 0.5+0.3+0.2 of 800 + 20 fixed
    assert_eq!(gsum.nodes_realized, 820);

    let workload = arts.workload.expect("workload materialized");
    let wsum = arts.summary.workload.as_ref().expect("workload generated");
    assert_eq!(workload.queries.len(), 12);
    // --seed 5 overrides the XML's seed=11 in the plan's options…
    assert_eq!(wsum.seed, 5);
    assert_eq!(wsum.unsatisfied_selectivity, 0);
    let schema = &plan.graph.schema;

    // Every query translates to all four syntaxes and evaluates on at
    // least two engines with identical counts.
    for gq in &workload.queries {
        let translations = translate_all(&gq.query, schema).expect("translates");
        assert_eq!(translations.len(), 4);
        for (syntax, text) in &translations {
            assert!(!text.trim().is_empty(), "{syntax} produced empty text");
        }
        let a = RelationalEngine
            .evaluate(&graph, &gq.query, &Budget::default())
            .expect("relational evaluation");
        let b = TripleStoreEngine
            .evaluate(&graph, &gq.query, &Budget::default())
            .expect("triplestore evaluation");
        assert_eq!(a.count(), b.count(), "count mismatch on {:?}", gq.query);
    }
}

#[test]
fn config_round_trip_preserves_generation() {
    let parsed = parse_config(CONFIG).expect("config parses");
    let rewritten = write_config(&parsed.graph, parsed.workload.as_ref());
    let reparsed = parse_config(&rewritten).expect("rewritten config parses");
    assert_eq!(parsed.graph, reparsed.graph);
    // Graphs generated from both configurations are identical.
    let (g1, r1) = generate_graph(&parsed.graph, &GeneratorOptions::with_seed(9));
    let (g2, r2) = generate_graph(&reparsed.graph, &GeneratorOptions::with_seed(9));
    assert_eq!(r1.total_edges, r2.total_edges);
    for p in 0..g1.predicate_count() {
        assert_eq!(
            g1.edges(p).collect::<Vec<_>>(),
            g2.edges(p).collect::<Vec<_>>()
        );
    }
}

#[test]
fn ntriples_round_trip_through_store() {
    let parsed = parse_config(CONFIG).expect("config parses");
    let schema = &parsed.graph.schema;
    let mut buffer = Vec::new();
    {
        let mut writer = gmark::store::NTriplesWriter::new(&mut buffer, schema.predicate_names());
        gmark::core::generate_into(&parsed.graph, &GeneratorOptions::with_seed(5), &mut writer);
        writer.finish().expect("flush");
    }
    let triples = gmark::store::read_ntriples(buffer.as_slice(), &schema.predicate_names())
        .expect("read back");
    // Same number of triples as a counting run.
    let mut counter = gmark::store::CountingSink::new(schema.predicate_count());
    gmark::core::generate_into(&parsed.graph, &GeneratorOptions::with_seed(5), &mut counter);
    assert_eq!(triples.len() as u64, counter.total());
}

#[test]
fn translations_are_deterministic() {
    let parsed = parse_config(CONFIG).expect("config parses");
    let (workload, _) =
        generate_workload(&parsed.graph.schema, &parsed.workload.expect("workload"))
            .expect("workload generates");
    for gq in &workload.queries {
        for syntax in Syntax::ALL {
            let a = gmark::translate::translate(&gq.query, &parsed.graph.schema, syntax);
            let b = gmark::translate::translate(&gq.query, &parsed.graph.schema, syntax);
            assert_eq!(a, b);
        }
    }
}
