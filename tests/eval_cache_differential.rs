//! Differential testing of the cross-cell sub-expression result cache.
//!
//! The cache (see `gmark_engines::context`) may only change *how fast*
//! cells evaluate, never *what* they report: for every engine and every
//! query — recursive shapes included — the (outcome label, answer
//! cardinality) of each cell must be identical with the cache enabled and
//! disabled, even when tuple caps make cells fail. These tests run the
//! whole evaluation matrix both ways and compare cell by cell.
//!
//! Planning is disabled in the property tests: the planner legitimately
//! *reads* the cache (exact cardinalities replace estimates, which can
//! reorder joins), so `plan: false` isolates the cache's contract that
//! outcomes themselves never shift. The generated-workload test then
//! covers the planned regime, where answers still may not move.

use gmark::prelude::*;
use proptest::prelude::*;

/// A deterministic random graph over `n` nodes and `preds` labels.
fn random_graph(n: u32, preds: usize, edges_per_pred: usize, seed: u64) -> Graph {
    let mut rng = gmark::stats::Prng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(TypePartition::from_counts(&[n as u64]), preds);
    for p in 0..preds {
        for _ in 0..edges_per_pred {
            let s = rng.below(n as u64) as NodeId;
            let t = rng.below(n as u64) as NodeId;
            b.edge(s, p, t);
        }
    }
    b.build()
}

/// Strategy: a random path of up to 3 symbols over `preds` labels.
fn arb_path(preds: usize) -> impl Strategy<Value = PathExpr> {
    prop::collection::vec((0..preds, any::<bool>()), 1..=3).prop_map(|syms| {
        PathExpr(
            syms.into_iter()
                .map(|(p, inv)| {
                    let s = Symbol::forward(PredicateId(p));
                    if inv {
                        s.flipped()
                    } else {
                        s
                    }
                })
                .collect(),
        )
    })
}

/// Strategy: a regular expression with 1–2 disjuncts, possibly starred —
/// the starred draws are the recursive shapes the cache caches hardest
/// (transitive closures are its headline hit).
fn arb_expr(preds: usize) -> impl Strategy<Value = RegularExpr> {
    (prop::collection::vec(arb_path(preds), 1..=2), any::<bool>())
        .prop_map(|(disjuncts, starred)| RegularExpr { disjuncts, starred })
}

/// Strategy: a chain query of 1–3 conjuncts.
fn arb_chain(preds: usize) -> impl Strategy<Value = Query> {
    prop::collection::vec(arb_expr(preds), 1..=3).prop_map(|exprs| {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .expect("chains are well-formed")
    })
}

/// Runs the full matrix over `queries` twice — cache on, cache off — on
/// *fresh* contexts (the cache freezes into its context on first fill) and
/// returns the two reports.
fn matrix_pair(
    graph: &Graph,
    schema: Option<&Schema>,
    queries: &[&Query],
    max_tuples: usize,
    plan: bool,
) -> (EvalReport, EvalReport) {
    let budget = CellBudget {
        timeout: None, // no wall clock: outcomes are pure in (graph, queries)
        max_tuples,
    };
    let cached_ctx = EvalContext::new(graph);
    let plain_ctx = EvalContext::new(graph);
    let cached = evaluate_matrix_with_schema(
        &cached_ctx,
        schema,
        queries,
        &EngineKind::ALL,
        &budget,
        &MatrixOptions {
            plan,
            ..MatrixOptions::default()
        },
    );
    let plain = evaluate_matrix_with_schema(
        &plain_ctx,
        schema,
        queries,
        &EngineKind::ALL,
        &budget,
        &MatrixOptions {
            plan,
            cache_mb: 0,
            ..MatrixOptions::default()
        },
    );
    (cached, plain)
}

/// Asserts cell-for-cell equality of outcome labels (the count for ok
/// cells, the typed failure word otherwise).
fn assert_cells_match(cached: &EvalReport, plain: &EvalReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(cached.cells.len(), plain.cells.len());
    for (c, p) in cached.cells.iter().zip(&plain.cells) {
        prop_assert_eq!(c.query, p.query);
        prop_assert_eq!(c.engine, p.engine);
        prop_assert_eq!(
            c.outcome.label(),
            p.outcome.label(),
            "query {} on {}: cached {:?} vs uncached {:?}",
            c.query,
            c.engine.name(),
            c.outcome,
            p.outcome
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Generous cap: (nearly) every cell completes, so this pins the
    // cached *cardinalities* — every engine must report the same count
    // with and without the cache, stars included.
    #[test]
    fn cached_and_uncached_report_identical_counts(
        seed in 0u64..1000,
        q1 in arb_chain(2),
        q2 in arb_chain(2),
    ) {
        let graph = random_graph(30, 2, 45, seed);
        let queries = [&q1, &q2];
        let (cached, plain) = matrix_pair(&graph, None, &queries, 1_000_000, false);
        assert_cells_match(&cached, &plain)?;
        let stats = cached.cache.as_ref().expect("cache was enabled");
        prop_assert!(plain.cache.is_none(), "cache_mb: 0 must disable the cache");
        // Two queries over four engines must actually exercise the cache.
        prop_assert!(stats.hits + stats.misses > 0);
    }

    // Tight cap: cells fail too-large. The failure *labels* must be
    // identical too — a cache hit may not rescue a cell its uncached
    // evaluation would fail, nor fail a cell it would complete.
    #[test]
    fn cached_and_uncached_fail_identically_under_tight_caps(
        seed in 0u64..1000,
        q1 in arb_chain(2),
        q2 in arb_chain(2),
        cap in prop_oneof![Just(50usize), Just(200usize), Just(800usize)],
    ) {
        let graph = random_graph(30, 2, 45, seed);
        let queries = [&q1, &q2];
        let (cached, plain) = matrix_pair(&graph, None, &queries, cap, false);
        assert_cells_match(&cached, &plain)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The generator's own recursive workloads on the bib schema, planned
    // regime: the planner may consult cached cardinalities and reorder
    // joins, but no ok-cell count may change and no outcome may flip.
    #[test]
    fn generated_workloads_are_cache_invariant(seed in 0u64..400) {
        let schema = gmark::core::usecases::bib();
        let config = GraphConfig::new(200, schema.clone());
        let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(seed));
        let mut wcfg = WorkloadConfig::new(6).with_seed(seed ^ 0xCAC4E);
        wcfg.recursion_probability = 0.5;
        let (workload, _) = generate_workload(&schema, &wcfg).expect("workload generates");
        let queries: Vec<&Query> = workload.queries.iter().map(|gq| &gq.query).collect();
        let (cached, plain) = matrix_pair(&graph, Some(&schema), &queries, 100_000, true);
        assert_cells_match(&cached, &plain)?;
    }
}
