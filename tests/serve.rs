//! `gmark serve` integration contract: byte-determinism under
//! concurrency, pay-once snapshot builds, admission control, and
//! graceful drain.
//!
//! The central pin: the bytes a client receives for a plan are exactly
//! the bytes the CLI writes for the same plan — regardless of how many
//! clients ask at once, which worker answers, or whether the snapshot
//! was cached. Everything else (429s, stats counters, shutdown) is the
//! service wrapper around that invariant.

use gmark::run::{run, Artifact, MemorySink, RunOptions, RunPlan};
use gmark::serve::http::{fetch, Client, ClientResponse};
use gmark::serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::Arc;

const BIB_XML: &str = include_str!("../examples/configs/bib.xml");

fn start(workers: usize, queue_depth: usize, cache_mb: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        cache_mb,
        deadline_ms: 0,
        ..ServeConfig::default()
    })
    .expect("server binds a free port")
}

fn post_run(addr: SocketAddr, query: &str) -> ClientResponse {
    fetch(addr, "POST", &format!("/v1/run{query}"), BIB_XML.as_bytes())
        .expect("request round-trips")
}

/// The reference bytes: the same plan through the library pipeline (what
/// `DirSink` would put on disk — `MemorySink` buffers are byte-identical
/// to the CLI's files by the sink contract).
fn reference_artifact(query_nodes: u64, seed: u64, artifact: Artifact) -> Vec<u8> {
    let plan = RunPlan::from_xml(BIB_XML)
        .expect("bib schema parses")
        .with_nodes(query_nodes);
    let mut sink = MemorySink::new();
    run(
        &plan,
        &RunOptions {
            seed: Some(seed),
            ..RunOptions::default()
        },
        &mut sink,
    )
    .expect("reference run succeeds");
    sink.bytes(artifact).expect("reference artifact present")
}

#[test]
fn concurrent_identical_plans_build_once_and_stream_identical_bytes() {
    let server = start(4, 64, 64);
    let addr = server.local_addr();
    let reference = reference_artifact(80, 11, Artifact::Graph);

    // N threads post the same plan at once; every response must carry
    // exactly the CLI's bytes, and the build must have happened once.
    let mut handles = Vec::new();
    for _ in 0..6 {
        handles.push(std::thread::spawn(move || {
            post_run(addr, "?nodes=80&seed=11&artifact=graph.nt")
        }));
    }
    let responses: Vec<ClientResponse> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for resp in &responses {
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.body, reference, "served bytes must equal CLI bytes");
    }
    // All six requests shared one snapshot key…
    let keys: std::collections::BTreeSet<_> = responses
        .iter()
        .map(|r| r.header("x-gmark-snapshot-key").unwrap().to_owned())
        .collect();
    assert_eq!(keys.len(), 1, "one plan, one snapshot key");
    // …and the cache built it exactly once (the pay-once guarantee).
    let stats = fetch(addr, "GET", "/v1/stats", b"").unwrap();
    let text = String::from_utf8(stats.body).unwrap();
    assert!(text.contains("\"builds\":1"), "built once: {text}");
    assert!(text.contains("\"hits\":5"), "five hits: {text}");

    server.shutdown();
}

#[test]
fn different_plans_get_different_snapshots_and_correct_bytes_each() {
    let server = start(3, 64, 64);
    let addr = server.local_addr();

    // Three distinct plans in flight at once; each response must match
    // its own plan's reference bytes (no cross-request bleed).
    let cases: [(u64, u64); 3] = [(60, 1), (60, 2), (90, 1)];
    let mut handles = Vec::new();
    for (nodes, seed) in cases {
        handles.push(std::thread::spawn(move || {
            let resp = post_run(
                addr,
                &format!("?nodes={nodes}&seed={seed}&artifact=graph.nt"),
            );
            (nodes, seed, resp)
        }));
    }
    let mut keys = std::collections::BTreeSet::new();
    for handle in handles {
        let (nodes, seed, resp) = handle.join().expect("client thread");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            reference_artifact(nodes, seed, Artifact::Graph),
            "plan (nodes={nodes}, seed={seed}) must serve its own bytes"
        );
        keys.insert(resp.header("x-gmark-snapshot-key").unwrap().to_owned());
    }
    assert_eq!(keys.len(), 3, "three plans, three snapshot keys");

    let stats = fetch(addr, "GET", "/v1/stats", b"").unwrap();
    let text = String::from_utf8(stats.body).unwrap();
    assert!(text.contains("\"builds\":3"), "{text}");

    server.shutdown();
}

#[test]
fn thread_count_and_cache_state_never_change_response_bytes() {
    let server = start(2, 64, 64);
    let addr = server.local_addr();

    // Cold build, warm hit, different execution thread counts: one
    // byte-for-byte identical payload. `threads` is outside the snapshot
    // key on purpose — the pipeline's bytes don't depend on it.
    let cold = post_run(addr, "?nodes=70&seed=3&threads=1&artifact=workload.txt");
    let warm = post_run(addr, "?nodes=70&seed=3&threads=1&artifact=workload.txt");
    let other_threads = post_run(addr, "?nodes=70&seed=3&threads=4&artifact=workload.txt");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-gmark-cache"), Some("build"));
    assert_eq!(warm.header("x-gmark-cache"), Some("hit"));
    assert_eq!(
        other_threads.header("x-gmark-cache"),
        Some("hit"),
        "threads stays out of the snapshot key"
    );
    assert_eq!(warm.body, cold.body);
    assert_eq!(other_threads.body, cold.body);

    // Run ids are distinct per request even when the snapshot is shared,
    // and each resolves to the same summary bytes.
    let id_cold = cold.header("x-gmark-run-id").unwrap();
    let id_warm = warm.header("x-gmark-run-id").unwrap();
    assert_ne!(id_cold, id_warm);
    let s1 = fetch(addr, "GET", &format!("/v1/run/{id_cold}/summary"), b"").unwrap();
    let s2 = fetch(addr, "GET", &format!("/v1/run/{id_warm}/summary"), b"").unwrap();
    assert_eq!((s1.status, s2.status), (200, 200));
    assert_eq!(s1.body, s2.body, "shared snapshot, shared summary bytes");

    server.shutdown();
}

#[test]
fn saturation_answers_429_with_retry_after_and_still_serves_some() {
    // One worker, a one-deep queue, and slow builds: with six plans in
    // flight at once, at least one connection must bounce off the full
    // queue with 429 + Retry-After, and at least one must be served.
    let server = start(1, 1, 64);
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for i in 0..6u64 {
        handles.push(std::thread::spawn(move || {
            // Distinct seeds so every request is a fresh (slow) build.
            post_run(addr, &format!("?nodes=2000&seed={i}&artifact=summary.json"))
        }));
    }
    let responses: Vec<ClientResponse> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let served = responses.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<&ClientResponse> = responses.iter().filter(|r| r.status == 429).collect();
    assert!(served >= 1, "someone must be served");
    assert!(
        !rejected.is_empty(),
        "a 1-worker 1-deep server under 6 concurrent slow builds must shed load; statuses: {:?}",
        responses.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    for resp in rejected {
        assert_eq!(
            resp.header("retry-after"),
            Some("1"),
            "429 carries Retry-After"
        );
    }
    let stats = fetch(addr, "GET", "/v1/stats", b"").unwrap();
    let text = String::from_utf8(stats.body).unwrap();
    assert!(text.contains("\"rejected\":"), "{text}");
    assert!(!text.contains("\"rejected\":0"), "counter moved: {text}");

    server.shutdown();
}

#[test]
fn keep_alive_requests_are_byte_identical_to_one_per_connection() {
    let server = start(2, 64, 64);
    let addr = server.local_addr();

    // The same three plans, once over three separate connections…
    let cases: [(u64, u64); 3] = [(60, 1), (60, 2), (90, 1)];
    let one_per_conn: Vec<ClientResponse> = cases
        .iter()
        .map(|(nodes, seed)| {
            post_run(
                addr,
                &format!("?nodes={nodes}&seed={seed}&artifact=graph.nt"),
            )
        })
        .collect();

    // …and once back to back on a single kept-alive connection.
    let mut client = Client::connect(addr).expect("connects");
    for ((nodes, seed), reference) in cases.iter().zip(&one_per_conn) {
        let resp = client
            .request(
                "POST",
                &format!("/v1/run?nodes={nodes}&seed={seed}&artifact=graph.nt"),
                BIB_XML.as_bytes(),
            )
            .expect("kept-alive request round-trips");
        assert_eq!(resp.status, 200);
        assert!(
            !resp.close_after(),
            "server must offer to keep the connection"
        );
        assert_eq!(
            resp.body, reference.body,
            "kept-alive bytes must equal one-per-connection bytes \
             (nodes={nodes}, seed={seed})"
        );
        assert_eq!(
            resp.header("x-gmark-snapshot-key"),
            reference.header("x-gmark-snapshot-key"),
            "transport must not leak into the snapshot key"
        );
        // And both equal the CLI's bytes — the central pin, regardless
        // of transport.
        assert_eq!(
            resp.body,
            reference_artifact(*nodes, *seed, Artifact::Graph)
        );
    }

    // Each kept-alive request was admitted individually: 3 connections
    // + 3 follow-up-capable requests on one = 7 admitted requests total
    // (6 runs + the stats request still in flight is not yet counted).
    let stats = fetch(addr, "GET", "/v1/stats", b"").unwrap();
    let text = String::from_utf8(stats.body).unwrap();
    assert!(
        text.contains("\"admitted\":7"),
        "per-request admission accounting: {text}"
    );
    // The run route fed the latency histograms.
    assert!(text.contains("\"latency\":"), "{text}");
    assert!(!text.contains("\"queue_wait\":{\"count\":0"), "{text}");

    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_closed_after_the_window() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        keep_alive_ms: 200,
        ..ServeConfig::default()
    })
    .expect("server binds a free port");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connects");
    let resp = client
        .request("GET", "/healthz", b"")
        .expect("first request works");
    assert_eq!(resp.status, 200);
    assert!(!resp.close_after(), "connection offered for reuse");

    // Sit out the idle window; the server must close the connection.
    std::thread::sleep(std::time::Duration::from_millis(700));
    assert!(
        client.request("GET", "/healthz", b"").is_err(),
        "a request after the idle window must fail: the server closed"
    );

    // The worker is back in the pool: fresh connections are served.
    let after = fetch(addr, "GET", "/healthz", b"").expect("fresh connection served");
    assert_eq!(after.status, 200);

    server.shutdown();
}

#[test]
fn per_connection_request_cap_closes_after_the_limit() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        max_requests_per_conn: 2,
        ..ServeConfig::default()
    })
    .expect("server binds a free port");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connects");
    let first = client.request("GET", "/healthz", b"").expect("first");
    assert!(!first.close_after(), "below the cap: keep-alive");
    let second = client.request("GET", "/healthz", b"").expect("second");
    assert!(
        second.close_after(),
        "the cap-reaching response must announce the close"
    );
    assert!(
        client.request("GET", "/healthz", b"").is_err(),
        "the server hung up after the cap"
    );

    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_requests_before_returning() {
    let server = start(1, 8, 64);
    let addr = server.local_addr();

    // Start a request, give it a moment to be admitted, then shut down
    // concurrently. The admitted request must still complete with 200.
    let client = std::thread::spawn(move || post_run(addr, "?nodes=400&seed=9&artifact=graph.nt"));
    std::thread::sleep(std::time::Duration::from_millis(150));
    let server = Arc::new(std::sync::Mutex::new(Some(server)));
    let shutdown = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            server.lock().unwrap().take().unwrap().shutdown();
        })
    };
    let resp = client.join().expect("client thread");
    assert_eq!(
        resp.status,
        200,
        "admitted request must be drained, not dropped: {}",
        String::from_utf8_lossy(&resp.body)
    );
    shutdown.join().expect("shutdown completes");

    // After drain, the port no longer answers.
    assert!(
        fetch(addr, "GET", "/healthz", b"").is_err(),
        "listener must be gone after shutdown"
    );
}
