//! The paper's central scientific claim, as a test (Section 6.2, Table 2):
//! queries generated for a selectivity class really exhibit that class's
//! growth exponent when evaluated on generated instances of growing size.
//!
//! The full sweep is reproduced by `cargo run -p gmark-bench --bin table2`;
//! this test runs a scaled-down version (three sizes, one use case per
//! class check) so the invariant is guarded by `cargo test`.

use gmark::prelude::*;
use gmark::stats::log_log_alpha;

/// Measures the α exponent of one query across graph sizes.
fn measure_alpha(schema: &Schema, query: &Query, sizes: &[u64]) -> Option<f64> {
    let mut observations = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let config = GraphConfig::new(n, schema.clone());
        let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(101));
        let answers = TripleStoreEngine
            .evaluate(&graph, query, &Budget::default())
            .ok()?;
        observations.push((n, answers.count()));
    }
    log_log_alpha(&observations).map(|(alpha, _beta)| alpha)
}

#[test]
fn bib_selectivity_classes_hold_empirically() {
    let schema = gmark::core::usecases::bib();
    let sizes = [1_000, 2_000, 4_000, 8_000];
    let mut wcfg = WorkloadConfig::new(9).with_seed(23);
    wcfg.query_size.conjuncts = (1, 2);
    let (workload, report) = generate_workload(&schema, &wcfg).expect("workload generates");
    assert_eq!(report.unsatisfied_selectivity, 0);

    // Table 2 reports class *means* (individual queries scatter — the
    // paper's own constant rows reach 0.2±0.42); check the means separate
    // cleanly, plus loose per-query sanity bounds.
    let mut sums = std::collections::HashMap::new();
    let mut checked = 0;
    for gq in &workload.queries {
        let Some(target) = gq.target else { continue };
        let Some(alpha) = measure_alpha(&schema, &gq.query, &sizes) else {
            continue;
        };
        assert!(
            (-0.3..2.5).contains(&alpha),
            "alpha {alpha:.2} out of physical range for {}",
            gq.query.display(&schema)
        );
        let entry = sums.entry(target).or_insert((0.0f64, 0u32));
        entry.0 += alpha;
        entry.1 += 1;
        checked += 1;
    }
    assert!(checked >= 6, "too few queries measured: {checked}");
    let mean = |class: SelectivityClass| -> f64 {
        let (s, n) = sums.get(&class).copied().unwrap_or((0.0, 0));
        if n == 0 {
            f64::NAN
        } else {
            s / n as f64
        }
    };
    let (c, l, q) = (
        mean(SelectivityClass::Constant),
        mean(SelectivityClass::Linear),
        mean(SelectivityClass::Quadratic),
    );
    assert!(c < 0.7, "constant class mean drifted: {c:.2}");
    assert!((0.4..1.6).contains(&l), "linear class mean drifted: {l:.2}");
    assert!(q > 1.2, "quadratic class mean drifted: {q:.2}");
    // The classes must be ordered as the paper's Table 2 shows.
    assert!(
        c < l && l < q,
        "class means must order: {c:.2} < {l:.2} < {q:.2}"
    );
}

#[test]
fn estimator_alpha_matches_generated_targets_across_usecases() {
    // The static estimate α̂ (no graphs involved) must equal the target
    // class for every selectivity-controlled query on every use case.
    for (name, schema) in gmark::core::usecases::all() {
        let (workload, _) = generate_workload(&schema, &WorkloadConfig::new(12).with_seed(31))
            .expect("workload generates");
        for gq in &workload.queries {
            if let (Some(target), Some(alpha)) = (gq.target, gq.estimated_alpha) {
                assert_eq!(
                    alpha,
                    target.alpha(),
                    "{name}: estimator disagrees on {}",
                    gq.query.display(&schema)
                );
            }
        }
    }
}

#[test]
fn quadratic_queries_return_more_results_than_constant() {
    // Fig. 11's qualitative shape: at a fixed size, result counts order as
    // constant ≤ linear ≤ quadratic (checked on class means).
    let schema = gmark::core::usecases::bib();
    let config = GraphConfig::new(4_000, schema.clone());
    let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(7));
    let (workload, _) = generate_workload(&schema, &WorkloadConfig::new(9).with_seed(37))
        .expect("workload generates");
    let mean_count = |class: SelectivityClass| -> f64 {
        let counts: Vec<u64> = workload
            .of_class(class)
            .filter_map(|gq| {
                TripleStoreEngine
                    .evaluate(&graph, &gq.query, &Budget::default())
                    .ok()
                    .map(|a| a.count())
            })
            .collect();
        counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64
    };
    let c = mean_count(SelectivityClass::Constant);
    let q = mean_count(SelectivityClass::Quadratic);
    assert!(
        q > 10.0 * (c + 1.0),
        "quadratic mean {q:.0} should dwarf constant mean {c:.0}"
    );
}
