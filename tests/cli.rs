//! CLI contract tests: early-exit flags, exit codes, and the
//! machine-readable `--format json` output.
//!
//! `--version` and `--help` historically called `std::process::exit`
//! mid-parse — skipping destructors and bypassing `main`'s `ExitCode`.
//! They now return a parsed early-exit variant; these tests pin the
//! observable contract (exit status 0, expected text, no output files).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn gmark(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gmark"))
        .args(args)
        .output()
        .expect("spawning the gmark binary")
}

#[test]
fn version_exits_zero_and_prints_the_version() {
    for flag in ["--version", "-V"] {
        let out = gmark(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(
            stdout.trim().starts_with("gmark ") && stdout.contains(env!("CARGO_PKG_VERSION")),
            "{flag}: unexpected output {stdout:?}"
        );
    }
}

#[test]
fn help_exits_zero_and_documents_every_flag() {
    for flag in ["--help", "-h"] {
        let out = gmark(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        for documented in [
            "--threads",
            "--stream",
            "--queries-only",
            "--format",
            "--eval",
            "--engines",
            "--budget-ms",
            "--max-tuples",
            "--version",
        ] {
            assert!(stdout.contains(documented), "{flag}: {documented} missing");
        }
    }
}

#[test]
fn early_exit_flags_win_even_with_other_arguments_present() {
    // --version after valid-looking flags must still exit 0 without
    // generating anything.
    let scratch = std::env::temp_dir().join(format!("gmark-earlyexit-{}", std::process::id()));
    let out = gmark(&[
        "--config",
        repo_path("examples/configs/bib.xml").to_str().unwrap(),
        "--output",
        scratch.to_str().unwrap(),
        "--version",
    ]);
    assert!(out.status.success());
    assert!(
        !scratch.exists(),
        "--version must not run the pipeline (output dir was created)"
    );
}

#[test]
fn unknown_and_malformed_arguments_fail_with_usage() {
    for bad in [&["--bogus"][..], &["--format", "yaml"], &["--seed", "x"]] {
        let out = gmark(bad);
        assert!(!out.status.success(), "{bad:?} must fail");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "{bad:?}: no usage in {stderr:?}");
    }
}

#[test]
fn format_json_writes_summary_json_and_pure_json_stdout() {
    let scratch = std::env::temp_dir().join(format!("gmark-json-{}", std::process::id()));
    let out = gmark(&[
        "--config",
        repo_path("examples/configs/bib.xml").to_str().unwrap(),
        "--output",
        scratch.to_str().unwrap(),
        "--queries-only",
        "--format",
        "json",
        "--seed",
        "42",
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{:?}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();

    // Stdout is exactly one JSON object (no banner mixed in) mirroring
    // summary.json.
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('{') && trimmed.ends_with('}'),
        "stdout is not a lone JSON object: {stdout:?}"
    );
    let on_disk = std::fs::read_to_string(scratch.join("summary.json")).expect("summary.json");
    assert_eq!(trimmed, on_disk.trim(), "stdout and summary.json diverge");

    // The anchors external harnesses key on.
    for anchor in [
        "\"gmark_version\"",
        "\"seed\":42",
        "\"graph\":null",
        "\"produced\":12",
        "\"cypher_degradations\"",
        "\"bytes\"",
    ] {
        assert!(trimmed.contains(anchor), "missing {anchor} in {trimmed}");
    }
    // --queries-only: no graph, but all five workload documents.
    assert!(!scratch.join("graph.nt").exists());
    for doc in [
        "workload.txt",
        "workload.sparql",
        "workload.cypher",
        "workload.sql",
        "workload.datalog",
    ] {
        assert!(scratch.join(doc).exists(), "{doc} missing");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn text_format_keeps_the_human_banner_and_skips_summary_json() {
    let scratch = std::env::temp_dir().join(format!("gmark-text-{}", std::process::id()));
    let out = gmark(&[
        "--config",
        repo_path("examples/configs/bib.xml").to_str().unwrap(),
        "--output",
        scratch.to_str().unwrap(),
        "--queries-only",
        "--seed",
        "42",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("workload: 12 queries"), "{stdout}");
    assert!(stdout.contains("report ->"), "{stdout}");
    assert!(
        !scratch.join("summary.json").exists(),
        "summary.json must be opt-in via --format json"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn verify_store_accepts_a_good_store_and_rejects_corruption() {
    let scratch = std::env::temp_dir().join(format!("gmark-vstore-{}", std::process::id()));

    // Build a store through the CLI itself.
    let out = gmark(&[
        "--config",
        repo_path("examples/configs/bib.xml").to_str().unwrap(),
        "--output",
        scratch.to_str().unwrap(),
        "--nodes",
        "100",
        "--seed",
        "7",
        "--store",
    ]);
    assert!(
        out.status.success(),
        "{:?}",
        String::from_utf8_lossy(&out.stderr)
    );
    let store = scratch.join("graph.gstore");

    // The intact store verifies with exit 0 and a shape line.
    let ok = gmark(&["--verify-store", store.to_str().unwrap()]);
    assert_eq!(ok.status.code(), Some(0), "intact store must verify");
    let stdout = String::from_utf8(ok.stdout).unwrap();
    assert!(stdout.contains(": ok ("), "{stdout}");

    // Flip one byte mid-file: exit code becomes non-zero and stderr
    // carries the typed StoreError message, not a panic.
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&store, &bytes).unwrap();
    let bad = gmark(&["--verify-store", store.to_str().unwrap()]);
    assert_ne!(
        bad.status.code(),
        Some(0),
        "corrupt store must exit non-zero"
    );
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.starts_with("gmark: "), "typed error line: {stderr}");
    assert!(
        stderr.contains("checksum") || stderr.contains("store") || stderr.contains("page"),
        "stderr names the store failure: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "corruption must be a typed error, not a panic: {stderr}"
    );

    // A path that does not exist is also a clean non-zero exit.
    let missing = gmark(&[
        "--verify-store",
        scratch.join("nope.gstore").to_str().unwrap(),
    ]);
    assert_ne!(missing.status.code(), Some(0));
    let stderr = String::from_utf8(missing.stderr).unwrap();
    assert!(stderr.starts_with("gmark: "), "{stderr}");

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn queries_only_without_workload_section_is_a_plan_error() {
    let scratch = std::env::temp_dir().join(format!("gmark-noplan-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let config = scratch.join("graph-only.xml");
    std::fs::write(
        &config,
        r#"<generator><graph><nodes>100</nodes>
           <types><type name="a" proportion="1.0"/></types>
           <predicates><predicate name="p" proportion="0.5"/></predicates>
           <constraints><constraint source="a" predicate="p" target="a">
             <outdistribution type="uniform" min="1" max="1"/>
           </constraint></constraints></graph></generator>"#,
    )
    .unwrap();
    let out = gmark(&[
        "--config",
        config.to_str().unwrap(),
        "--output",
        scratch.join("out").to_str().unwrap(),
        "--queries-only",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no <workload> section"), "{stderr}");
    let _ = std::fs::remove_dir_all(&scratch);
}
