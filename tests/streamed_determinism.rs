//! The streaming pipeline's headline guarantee, pinned end to end: the
//! `gmark` CLI with `--stream` writes a byte-identical `graph.nt` for
//! `--threads 1`, `2`, and `8` on `examples/configs/bib.xml`, and the
//! library-level stream equals the single-threaded direct stream.
//!
//! (Shard bytes are a pure function of `(config, seed, constraint
//! index)`; concatenation in ascending constraint order makes scheduling
//! invisible — see `gmark_store::shard` for the invariant.)

use gmark::prelude::*;
use gmark_core::gen::{generate_streamed, StreamOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn run_cli(out_dir: &Path, threads: &str) -> Vec<u8> {
    let status = Command::new(env!("CARGO_BIN_EXE_gmark"))
        .args([
            "--config",
            repo_path("examples/configs/bib.xml").to_str().unwrap(),
            "--output",
            out_dir.to_str().unwrap(),
            "--stream",
            "--threads",
            threads,
            "--seed",
            "42",
        ])
        .status()
        .expect("spawning the gmark binary");
    assert!(
        status.success(),
        "gmark --stream --threads {threads} failed"
    );
    std::fs::read(out_dir.join("graph.nt")).expect("graph.nt written")
}

#[test]
fn cli_streamed_graph_is_byte_identical_at_1_2_8_threads() {
    let scratch = std::env::temp_dir().join(format!("gmark-stream-test-{}", std::process::id()));
    let baseline = run_cli(&scratch.join("t1"), "1");
    assert!(!baseline.is_empty(), "streamed graph.nt is empty");
    for threads in ["2", "8"] {
        let nt = run_cli(&scratch.join(format!("t{threads}")), threads);
        assert_eq!(
            nt, baseline,
            "graph.nt differs between --threads 1 and --threads {threads}"
        );
    }
    // No shard scratch directories may survive a successful run.
    for dir in ["t1", "t2", "t8"] {
        let leftovers: Vec<_> = std::fs::read_dir(scratch.join(dir))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".gmark-shards"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "{dir}: leftover shard dirs {leftovers:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn library_streamed_bytes_match_across_thread_counts() {
    let schema = gmark::core::usecases::bib();
    let config = GraphConfig::new(5_000, schema);
    let stream = StreamOptions::default();
    let mut baseline = Vec::new();
    let opts = |threads| GeneratorOptions {
        threads,
        ..GeneratorOptions::with_seed(0xB1B)
    };
    let (report, written) = generate_streamed(&config, &opts(1), &stream, &mut baseline).unwrap();
    assert_eq!(report.total_edges, written);
    assert!(written > 0);
    for threads in [2usize, 8] {
        let mut buf = Vec::new();
        let (r, w) = generate_streamed(&config, &opts(threads), &stream, &mut buf).unwrap();
        assert_eq!(buf, baseline, "{threads} threads: streamed bytes differ");
        assert_eq!(w, written, "{threads} threads: triple count differs");
        assert_eq!(r.constraints, report.constraints);
    }
}

#[test]
fn run_api_streamed_graph_is_byte_identical_at_1_2_8_threads() {
    // The same guarantee through the unified pipeline API.
    use gmark::run::{run, Artifact, MemorySink, RunOptions, RunPlan};
    let plan = RunPlan::builder(gmark::core::usecases::bib())
        .nodes(3_000)
        .build()
        .expect("plan builds");
    let bytes_at = |threads: usize| {
        let mut sink = MemorySink::new();
        let summary = run(
            &plan,
            &RunOptions::with_seed(0xB1B).threads(threads).stream(true),
            &mut sink,
        )
        .expect("streams");
        assert!(summary.streamed);
        sink.bytes(Artifact::Graph).expect("graph written")
    };
    let baseline = bytes_at(1);
    assert!(!baseline.is_empty());
    for threads in [2usize, 8] {
        assert_eq!(bytes_at(threads), baseline, "{threads} threads differ");
    }
}

#[test]
fn streamed_output_parses_back_to_the_same_edge_multiset() {
    // The streamed file must round-trip through the strict reader and
    // carry exactly the edges the in-memory pipeline reports.
    let schema = gmark::core::usecases::bib();
    let config = GraphConfig::new(2_000, schema.clone());
    let opts = GeneratorOptions {
        threads: 4,
        ..GeneratorOptions::with_seed(7)
    };
    let mut buf = Vec::new();
    let (report, written) =
        generate_streamed(&config, &opts, &StreamOptions::default(), &mut buf).unwrap();
    let triples = gmark::store::read_ntriples(buf.as_slice(), &schema.predicate_names()).unwrap();
    assert_eq!(triples.len() as u64, written);
    assert_eq!(report.total_edges, written);
}
