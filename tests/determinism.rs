//! Reproducibility guarantees: everything gMark generates is a pure
//! function of (configuration, seed) — including under parallel generation
//! and across all output formats.
//!
//! The historical wart — default-mode (non-streamed) `graph.nt` was
//! byte-identical only across T > 1, because T = 1 streamed raw triples —
//! is fixed: the unified `gmark::run` pipeline routes every thread count
//! through the same ordered-merge-then-serialize path, and the tests here
//! pin T = 1 vs T = 2 vs T = 8 both at the library level and through the
//! CLI.

use gmark::prelude::*;
use gmark::run::{run, Artifact, MemorySink, RunOptions, RunPlan};
use std::path::{Path, PathBuf};
use std::process::Command;

fn graph_fingerprint(g: &Graph) -> u64 {
    // Order-independent-ish FNV over all edges per predicate.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in 0..g.predicate_count() {
        for (s, t) in g.edges(p) {
            let x = ((p as u64) << 48) ^ ((s as u64) << 24) ^ t as u64;
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[test]
fn graph_generation_is_seed_deterministic() {
    for (name, schema) in gmark::core::usecases::all() {
        let config = GraphConfig::new(1_500, schema);
        let (g1, _) = generate_graph(&config, &GeneratorOptions::with_seed(77));
        let (g2, _) = generate_graph(&config, &GeneratorOptions::with_seed(77));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g2), "{name}");
        let (g3, _) = generate_graph(&config, &GeneratorOptions::with_seed(78));
        assert_ne!(
            graph_fingerprint(&g1),
            graph_fingerprint(&g3),
            "{name}: different seeds must differ"
        );
    }
}

#[test]
fn thread_count_does_not_change_the_graph() {
    let schema = gmark::core::usecases::lsn();
    let config = GraphConfig::new(3_000, schema);
    let mut opts = GeneratorOptions::with_seed(99);
    let (seq, _) = generate_graph(&config, &opts);
    for threads in [2, 3, 8] {
        opts.threads = threads;
        let (par, _) = generate_graph(&config, &opts);
        assert_eq!(
            graph_fingerprint(&seq),
            graph_fingerprint(&par),
            "threads = {threads}"
        );
    }
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn default_mode_graph_bytes_are_identical_at_1_2_8_threads() {
    // The new-API pin of the fixed T=1 wart: non-streamed graph.nt is one
    // byte sequence at every thread count, including 1.
    let plan = RunPlan::builder(gmark::core::usecases::lsn())
        .nodes(2_000)
        .build()
        .expect("plan builds");
    let bytes_at = |threads: usize| {
        let mut sink = MemorySink::new();
        run(
            &plan,
            &RunOptions::with_seed(99).threads(threads),
            &mut sink,
        )
        .expect("runs");
        sink.bytes(Artifact::Graph).expect("graph written")
    };
    let baseline = bytes_at(1);
    assert!(!baseline.is_empty());
    for threads in [2usize, 8] {
        assert_eq!(
            bytes_at(threads),
            baseline,
            "default-mode graph bytes differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn cli_default_mode_graph_is_byte_identical_at_t1_vs_t2() {
    // End-to-end cover of the same guarantee through the binary (the CI
    // smoke step runs the same comparison on release builds).
    let scratch = std::env::temp_dir().join(format!("gmark-default-t1-{}", std::process::id()));
    let run_cli = |dir: &Path, threads: &str| {
        let status = Command::new(env!("CARGO_BIN_EXE_gmark"))
            .args([
                "--config",
                repo_path("examples/configs/bib.xml").to_str().unwrap(),
                "--output",
                dir.to_str().unwrap(),
                "--threads",
                threads,
                "--seed",
                "42",
            ])
            .status()
            .expect("spawning the gmark binary");
        assert!(status.success(), "gmark --threads {threads} failed");
        std::fs::read(dir.join("graph.nt")).expect("graph.nt written")
    };
    let t1 = run_cli(&scratch.join("t1"), "1");
    let t2 = run_cli(&scratch.join("t2"), "2");
    assert_eq!(
        t1, t2,
        "CLI default-mode graph.nt differs between T=1 and T=2"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn workloads_are_seed_deterministic() {
    let schema = gmark::core::usecases::sp();
    let mut cfg = WorkloadConfig::new(20).with_seed(123);
    cfg.recursion_probability = 0.2;
    cfg.shapes = vec![Shape::Chain, Shape::Star, Shape::Cycle, Shape::StarChain];
    let (w1, _) = generate_workload(&schema, &cfg).expect("workload generates");
    let (w2, _) = generate_workload(&schema, &cfg).expect("workload generates");
    for (a, b) in w1.queries.iter().zip(&w2.queries) {
        assert_eq!(a.query, b.query);
        assert_eq!(a.target, b.target);
    }
    let (w3, _) =
        generate_workload(&schema, &cfg.clone().with_seed(124)).expect("workload generates");
    let all_same = w1
        .queries
        .iter()
        .zip(&w3.queries)
        .all(|(a, b)| a.query == b.query);
    assert!(
        !all_same,
        "different seeds should produce different workloads"
    );
}

#[test]
fn query_order_is_independent_of_workload_size() {
    // Per-query RNG splitting: the i-th query is identical no matter how
    // many queries follow it.
    let schema = gmark::core::usecases::bib();
    let (small, _) = generate_workload(&schema, &WorkloadConfig::new(5).with_seed(55))
        .expect("workload generates");
    let (large, _) = generate_workload(&schema, &WorkloadConfig::new(25).with_seed(55))
        .expect("workload generates");
    for (a, b) in small.queries.iter().zip(&large.queries) {
        assert_eq!(a.query, b.query);
    }
}

#[test]
fn evaluation_is_deterministic() {
    let schema = gmark::core::usecases::bib();
    let config = GraphConfig::new(1_000, schema.clone());
    let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(5));
    let (workload, _) = generate_workload(&schema, &WorkloadConfig::new(6).with_seed(6))
        .expect("workload generates");
    for gq in &workload.queries {
        let a = DatalogEngine
            .evaluate(&graph, &gq.query, &Budget::default())
            .unwrap();
        let b = DatalogEngine
            .evaluate(&graph, &gq.query, &Budget::default())
            .unwrap();
        assert_eq!(a, b);
    }
}
