//! Plan equivalence: the two roads to a [`RunPlan`] — parsing
//! `examples/configs/bib.xml` and building the same scenario with the
//! fluent builder — must produce **bit-identical** graph and workload
//! bytes through a `MemorySink`, at every thread count.
//!
//! This is the load-bearing guarantee of the typed-plan API: the XML
//! front-end is pure surface; all semantics (constraint declaration
//! order, seeds, RNG splitting) live in the plan.

use gmark::prelude::*;
use gmark::run::{run, Artifact, MemorySink, RunOptions, RunPlan};
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// `examples/configs/bib.xml`, transcribed with the fluent builder in the
/// exact declaration order of the XML (constraint order is the RNG-stream
/// key, so it is part of the scenario's identity).
fn bib_xml_plan_via_builder() -> RunPlan {
    let mut b = SchemaBuilder::new();
    let researcher = b.node_type("researcher", Occurrence::Proportion(0.5));
    let paper = b.node_type("paper", Occurrence::Proportion(0.3));
    let journal = b.node_type("journal", Occurrence::Proportion(0.1));
    let conference = b.node_type("conference", Occurrence::Proportion(0.1));
    let city = b.node_type("city", Occurrence::Fixed(100));

    let authors = b.predicate("authors", Some(Occurrence::Proportion(0.5)));
    let published_in = b.predicate("publishedIn", Some(Occurrence::Proportion(0.3)));
    let held_in = b.predicate("heldIn", Some(Occurrence::Proportion(0.1)));
    let extended_to = b.predicate("extendedTo", Some(Occurrence::Proportion(0.1)));

    b.edge(
        researcher,
        authors,
        paper,
        Distribution::gaussian(3.0, 1.0),
        Distribution::zipfian(2.5),
    );
    b.edge(
        paper,
        published_in,
        conference,
        Distribution::NonSpecified,
        Distribution::uniform(1, 1),
    );
    b.edge(
        conference,
        held_in,
        city,
        Distribution::zipfian(2.5),
        Distribution::uniform(1, 1),
    );
    b.edge(
        paper,
        extended_to,
        journal,
        Distribution::NonSpecified,
        Distribution::uniform(0, 1),
    );
    let schema = b.build().expect("bib.xml schema is well-formed");

    let mut wcfg = WorkloadConfig::new(12).with_seed(42);
    wcfg.recursion_probability = 0.2;
    wcfg.query_size = QuerySize {
        conjuncts: (1, 3),
        disjuncts: (1, 2),
        length: (1, 3),
    };

    RunPlan::builder(schema)
        .nodes(10_000)
        .workload(wcfg)
        .build()
        .expect("builder plan is valid")
}

fn run_to_memory(plan: &RunPlan, opts: &RunOptions) -> MemorySink {
    let mut sink = MemorySink::new();
    run(plan, opts, &mut sink).expect("pipeline runs");
    sink
}

const COMPARED: [Artifact; 6] = [
    Artifact::Graph,
    Artifact::Rules,
    Artifact::Sparql,
    Artifact::Cypher,
    Artifact::Sql,
    Artifact::Datalog,
];

#[test]
fn xml_plan_and_builder_plan_produce_bit_identical_artifacts() {
    let from_xml =
        RunPlan::from_config_file(repo_path("examples/configs/bib.xml")).expect("bib.xml parses");
    let from_builder = bib_xml_plan_via_builder();
    // No seed override: the graph uses the generator default, the
    // workload its configured seed (42 in both plans).
    let opts = RunOptions::default().threads(2);

    let a = run_to_memory(&from_xml, &opts);
    let b = run_to_memory(&from_builder, &opts);
    for artifact in COMPARED {
        let xml_bytes = a.bytes(artifact).unwrap_or_default();
        let builder_bytes = b.bytes(artifact).unwrap_or_default();
        assert!(
            !xml_bytes.is_empty(),
            "{artifact}: XML plan produced nothing"
        );
        assert_eq!(
            xml_bytes, builder_bytes,
            "{artifact}: XML-parsed and builder-built plans diverge"
        );
    }
    let sa = a.summary().expect("summary stored");
    let sb = b.summary().expect("summary stored");
    assert_eq!(
        sa.graph.as_ref().unwrap().constraints,
        sb.graph.as_ref().unwrap().constraints
    );
    assert_eq!(
        sa.workload.as_ref().unwrap().produced,
        sb.workload.as_ref().unwrap().produced
    );
}

#[test]
fn equivalence_holds_at_every_thread_count_and_in_streamed_mode() {
    let from_xml =
        RunPlan::from_config_file(repo_path("examples/configs/bib.xml")).expect("bib.xml parses");
    let from_builder = bib_xml_plan_via_builder();
    for (threads, stream) in [(1usize, false), (8, false), (4, true)] {
        let opts = RunOptions::default().threads(threads).stream(stream);
        let a = run_to_memory(&from_xml, &opts);
        let b = run_to_memory(&from_builder, &opts);
        for artifact in COMPARED {
            assert_eq!(
                a.bytes(artifact),
                b.bytes(artifact),
                "{artifact} diverges at threads={threads} stream={stream}"
            );
        }
    }
}

#[test]
fn seed_override_pins_both_plans_to_the_same_bytes() {
    // An explicit seed overrides the workload's configured seed in both
    // plan flavors identically.
    let from_xml =
        RunPlan::from_config_file(repo_path("examples/configs/bib.xml")).expect("bib.xml parses");
    let from_builder = bib_xml_plan_via_builder();
    let opts = RunOptions::with_seed(0xFEED).threads(2);
    let a = run_to_memory(&from_xml, &opts);
    let b = run_to_memory(&from_builder, &opts);
    for artifact in COMPARED {
        assert_eq!(a.bytes(artifact), b.bytes(artifact), "{artifact}");
    }
    // And the override actually changed the workload relative to seed 42.
    let base = run_to_memory(&from_xml, &RunOptions::default().threads(2));
    assert_ne!(
        base.bytes(Artifact::Rules),
        a.bytes(Artifact::Rules),
        "seed override had no effect"
    );
}
