//! The workload pipeline's headline guarantee, pinned end to end: the
//! `gmark` CLI writes byte-identical `workload.{txt,sparql,cypher,sql,
//! datalog}` for `--threads 1`, `2`, and `8` on `examples/configs/bib.xml`,
//! `--queries-only` produces them without generating `graph.nt`, and the
//! library-level parallel generator returns the same `Workload` and
//! `WorkloadReport` at every thread count.
//!
//! (Query `i` draws from an RNG stream split off the master seed by query
//! index, so its five rendered documents are a pure function of
//! `(schema, config, i)`; concatenating per-query shards in ascending
//! index order makes scheduling invisible — see `gmark_translate::stream`.)

use gmark::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

const WORKLOAD_FILES: [&str; 5] = [
    "workload.txt",
    "workload.sparql",
    "workload.cypher",
    "workload.sql",
    "workload.datalog",
];

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn run_cli(out_dir: &Path, threads: &str) -> Vec<Vec<u8>> {
    let status = Command::new(env!("CARGO_BIN_EXE_gmark"))
        .args([
            "--config",
            repo_path("examples/configs/bib.xml").to_str().unwrap(),
            "--output",
            out_dir.to_str().unwrap(),
            "--queries-only",
            "--threads",
            threads,
            "--seed",
            "42",
        ])
        .status()
        .expect("spawning the gmark binary");
    assert!(
        status.success(),
        "gmark --queries-only --threads {threads} failed"
    );
    WORKLOAD_FILES
        .iter()
        .map(|f| std::fs::read(out_dir.join(f)).unwrap_or_else(|e| panic!("{f} written: {e}")))
        .collect()
}

#[test]
fn cli_workload_documents_are_byte_identical_at_1_2_8_threads() {
    let scratch = std::env::temp_dir().join(format!("gmark-wl-test-{}", std::process::id()));
    let baseline = run_cli(&scratch.join("t1"), "1");
    for (f, bytes) in WORKLOAD_FILES.iter().zip(&baseline) {
        assert!(!bytes.is_empty(), "{f} is empty");
    }
    for threads in ["2", "8"] {
        let docs = run_cli(&scratch.join(format!("t{threads}")), threads);
        for (f, (doc, base)) in WORKLOAD_FILES.iter().zip(docs.iter().zip(&baseline)) {
            assert_eq!(
                doc, base,
                "{f} differs between --threads 1 and --threads {threads}"
            );
        }
    }
    // --queries-only must not build the graph, and no shard scratch
    // directories may survive a successful run.
    for dir in ["t1", "t2", "t8"] {
        let out = scratch.join(dir);
        assert!(
            !out.join("graph.nt").exists(),
            "{dir}: --queries-only wrote graph.nt"
        );
        assert!(out.join("report.txt").exists(), "{dir}: report.txt missing");
        let leftovers: Vec<_> = std::fs::read_dir(&out)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".gmark-shards"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "{dir}: leftover shard dirs {leftovers:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn cli_queries_only_report_mentions_skipped_graph() {
    let scratch = std::env::temp_dir().join(format!("gmark-wl-report-{}", std::process::id()));
    run_cli(&scratch, "2");
    let report = std::fs::read_to_string(scratch.join("report.txt")).expect("report.txt");
    assert!(
        report.contains("graph: skipped (--queries-only)"),
        "{report}"
    );
    assert!(report.contains("cypher degradations:"), "{report}");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn library_workload_is_bit_identical_across_thread_counts() {
    let schema = gmark::core::usecases::bib();
    let mut cfg = WorkloadConfig::new(30).with_seed(0xB1B);
    cfg.shapes = vec![Shape::Chain, Shape::Star, Shape::Cycle, Shape::StarChain];
    cfg.recursion_probability = 0.25;
    let (base, base_report) =
        generate_workload_with_threads(&schema, &cfg, 1).expect("workload generates");
    assert_eq!(base.queries.len(), 30);
    // The sequential entry point is the 1-thread pipeline.
    let (seq, seq_report) = generate_workload(&schema, &cfg).expect("workload generates");
    assert_eq!(seq_report, base_report);
    for (a, b) in seq.queries.iter().zip(&base.queries) {
        assert_eq!(a.query, b.query);
    }
    for threads in [2usize, 8] {
        let (w, report) =
            generate_workload_with_threads(&schema, &cfg, threads).expect("workload generates");
        assert_eq!(report, base_report, "{threads} threads: report differs");
        assert_eq!(w.queries.len(), base.queries.len());
        for (i, (a, b)) in w.queries.iter().zip(&base.queries).enumerate() {
            assert_eq!(a.query, b.query, "{threads} threads: query {i} differs");
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.requested, b.requested);
            assert_eq!(a.target, b.target);
            assert_eq!(a.estimated_alpha, b.estimated_alpha);
            assert_eq!(a.relaxations, b.relaxations);
        }
    }
}

#[test]
fn run_api_workload_documents_are_byte_identical_at_1_2_8_threads() {
    // The five documents through the unified pipeline API (queries-only
    // plan), pinned byte-for-byte across thread counts.
    use gmark::run::{run, Artifact, MemorySink, RunOptions, RunPlan};
    let mut cfg = WorkloadConfig::new(24).with_seed(0xB1B);
    cfg.shapes = vec![Shape::Chain, Shape::Star, Shape::Cycle, Shape::StarChain];
    cfg.recursion_probability = 0.25;
    let plan = RunPlan::builder(gmark::core::usecases::bib())
        .workload(cfg)
        .queries_only()
        .build()
        .expect("plan builds");
    let docs_at = |threads: usize| {
        let mut sink = MemorySink::new();
        let summary = run(&plan, &RunOptions::default().threads(threads), &mut sink)
            .expect("workload streams");
        assert!(summary.graph.is_none(), "queries-only must skip the graph");
        assert!(
            sink.bytes(Artifact::Graph).is_none(),
            "graph.nt written anyway"
        );
        Artifact::WORKLOAD.map(|a| sink.bytes(a).expect("document written"))
    };
    let baseline = docs_at(1);
    for doc in &baseline {
        assert!(!doc.is_empty());
    }
    for threads in [2usize, 8] {
        let docs = docs_at(threads);
        for (artifact, (doc, base)) in Artifact::WORKLOAD.iter().zip(docs.iter().zip(&baseline)) {
            assert_eq!(doc, base, "{artifact} differs at {threads} threads");
        }
    }
}

#[test]
fn zero_threads_auto_detects_and_matches() {
    let schema = gmark::core::usecases::bib();
    let cfg = WorkloadConfig::new(12).with_seed(7);
    let (auto, r_auto) = generate_workload_with_threads(&schema, &cfg, 0).expect("generates");
    let (one, r_one) = generate_workload_with_threads(&schema, &cfg, 1).expect("generates");
    assert_eq!(r_auto, r_one);
    for (a, b) in auto.queries.iter().zip(&one.queries) {
        assert_eq!(a.query, b.query);
    }
}
