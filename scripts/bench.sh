#!/usr/bin/env bash
# Runs the generation-side performance baseline and records it as
# BENCH_gen.json (graph) plus BENCH_workload.json (query workloads) for
# perf-trajectory tracking across PRs:
#
#   * the `generation` criterion bench (graph_gen / query_gen / ablation
#     groups, including the 1-vs-4-thread parallel pipeline ablation),
#     exported one JSON object per line via GMARK_BENCH_JSON;
#   * the `querygen_scale` binary (Section 6.2's 1000-query workload
#     generation + translation through the streaming pipeline), one row
#     per scenario per thread count (1 vs auto) into BENCH_workload.json —
#     each row records queries/s and the run's peak RSS (VmHWM), one
#     process per thread count so the peaks are per-run;
#   * the `scale_sweep` binary (Table 3-style): streamed generation at
#     50K -> 5M nodes plus materialized contrast rows, one process per
#     size so each row's `peak_rss_kb` (VmHWM) is a per-size peak — these
#     rows pin the memory-bounded streaming claim;
#   * the `eval_matrix` binary (Section 7 in miniature): the full
#     (engine x query) evaluation matrix on Bib through the shared
#     EvalContext harness, one process per (planner regime x thread
#     count) — planner on vs --no-plan, 1 thread vs auto — into
#     BENCH_eval.json, plus one --no-eval-cache contrast row. Each row
#     records cells/s, the timeout/too-large counts, its `"plan"` and
#     `"cache"` regimes, the cache hit/miss counters, and the run's peak
#     RSS (VmHWM); the on/off pairs pin the statistics planner's and the
#     sub-expression cache's effects across PRs.
#   * the `store_sweep` binary (on-disk paged store): builds a 500K-node
#     `graph.gstore` through the streamed spool tee (build MB/s), then
#     evaluates the same workload paged (cold + warm pass) and in-RAM —
#     one process per mode so the `peak_rss_kb` rows contrast the paged
#     reader's bounded memory against the materialized CSR — into
#     BENCH_store.json.
#   * the `serve_sweep` binary (`gmark serve` daemon): drives the HTTP
#     serving path end to end — real TCP, chunked responses, the keyed
#     snapshot cache in the middle — and records a cold row (fresh seed
#     per request, every request a full build), a warm row (one plan,
#     snapshot hits, fresh connection per request), and a warm_keepalive
#     row (the same hits over one persistent connection) into
#     BENCH_serve.json: requests/s, p50/p95 latency, and peak RSS. The
#     warm/cold requests_per_s ratio pins the pay-once snapshot
#     guarantee, warm_keepalive/warm the keep-alive fast path.
#   * the `drive` binary (closed-loop traffic driver): fires the same
#     deterministic Zipf-skewed request sequence at three targets — the
#     in-process engine call path (no sockets), the served path over
#     keep-alive connections, and the served path with Connection: close
#     — one process per regime into BENCH_drive.json: sustained QPS and
#     p50/p95/p99/max latency of the measured phase after warmup. The
#     keepalive/close QPS ratio pins the keep-alive win end to end.
#
# Usage: scripts/bench.sh [gen.json] [workload.json] [eval.json]
#        [store.json] [serve.json] [drive.json]
#        (defaults: BENCH_gen.json BENCH_workload.json BENCH_eval.json
#         BENCH_store.json BENCH_serve.json BENCH_drive.json)

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_gen.json}"
wl_out="${2:-BENCH_workload.json}"
eval_out="${3:-BENCH_eval.json}"
store_out="${4:-BENCH_store.json}"
serve_out="${5:-BENCH_serve.json}"
drive_out="${6:-BENCH_drive.json}"
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;; # cargo runs bench binaries from the package dir
esac
case "$wl_out" in
    /*) ;;
    *) wl_out="$PWD/$wl_out" ;;
esac
case "$eval_out" in
    /*) ;;
    *) eval_out="$PWD/$eval_out" ;;
esac
case "$store_out" in
    /*) ;;
    *) store_out="$PWD/$store_out" ;;
esac
case "$serve_out" in
    /*) ;;
    *) serve_out="$PWD/$serve_out" ;;
esac
case "$drive_out" in
    /*) ;;
    *) drive_out="$PWD/$drive_out" ;;
esac
rm -f "$out" "$wl_out" "$eval_out" "$store_out" "$serve_out" "$drive_out"

echo "== criterion generation benches (exporting to $out) =="
GMARK_BENCH_JSON="$out" cargo bench --offline -p gmark-bench --bench generation

echo "== querygen_scale (Section 6.2, exporting to $wl_out) =="
# One process per thread count: peak_rss_kb rows are per-run VmHWM peaks.
# 1 thread vs auto-detect pins the parallel workload pipeline's trajectory.
for t in 1 0; do
    GMARK_BENCH_JSON="$wl_out" cargo run --offline --release -p gmark-bench \
        --bin querygen_scale -- --threads "$t"
done

echo "== scale sweep (Table 3-style, streamed + materialized contrast) =="
# One process per size: peak_rss_kb rows are per-size VmHWM peaks.
for n in 50000 500000 5000000; do
    GMARK_BENCH_JSON="$out" cargo run --offline --release -p gmark-bench \
        --bin scale_sweep -- --nodes "$n" --mode streamed --threads 0
done
for n in 50000 500000; do
    GMARK_BENCH_JSON="$out" cargo run --offline --release -p gmark-bench \
        --bin scale_sweep -- --nodes "$n" --mode materialized --threads 0
done

echo "== eval matrix (Section 7 in miniature, exporting to $eval_out) =="
# One process per (planner regime x thread count): peak_rss_kb rows are
# per-run VmHWM peaks. 1 thread vs auto-detect pins the parallel evaluation
# pipeline's trajectory; planner on vs --no-plan pins the statistics
# planner's effect on the timeout/too-large counts.
for plan_flag in "" "--no-plan"; do
    for t in 1 0; do
        # shellcheck disable=SC2086
        GMARK_BENCH_JSON="$eval_out" cargo run --offline --release -p gmark-bench \
            --bin eval_matrix -- --threads "$t" $plan_flag
    done
done
# Cached-regime pair: the same single-threaded planned run with the
# sub-expression result cache disabled. Against the cache-on row above
# (whose cache_hits/cache_misses fields record the hit rate), this pair
# pins the cache's cells/s effect across PRs.
GMARK_BENCH_JSON="$eval_out" cargo run --offline --release -p gmark-bench \
    --bin eval_matrix -- --threads 1 --no-eval-cache

echo "== store sweep (paged store build + paged-vs-in-RAM eval, exporting to $store_out) =="
# One process per mode: the paged rows' peak_rss_kb (VmHWM) measures the
# bounded-memory paged reader, the inram row the materialized CSR.
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
for mode in build paged inram; do
    GMARK_BENCH_JSON="$store_out" cargo run --offline --release -p gmark-bench \
        --bin store_sweep -- --mode "$mode" --nodes 500000 --store "$store_dir"
done

echo "== serve sweep (gmark serve daemon, cold vs warm, exporting to $serve_out) =="
# One process, three rows: cold (fresh seed per request, every request a
# full pipeline build), warm (one plan, snapshot hits after the first
# build, fresh connection per request), and warm_keepalive (the same
# hits over one persistent connection). warm/cold pins the snapshot
# cache; warm_keepalive/warm pins the keep-alive fast path.
GMARK_BENCH_JSON="$serve_out" cargo run --offline --release -p gmark-bench \
    --bin serve_sweep -- --nodes 500 --requests 20 --workers 2

echo "== drive (closed-loop traffic driver, exporting to $drive_out) =="
# One process per regime, identical driver parameters, so the three QPS
# numbers are directly comparable: the in-process engine-call ceiling,
# the served path over kept-alive connections, and the served path
# reconnecting per request. keepalive beating close is the keep-alive
# acceptance pin.
GMARK_BENCH_JSON="$drive_out" cargo run --offline --release -p gmark-bench \
    --bin drive -- --target inprocess --nodes 300 \
    --requests 400 --warmup 40 --max-concurrency 2 --distinct 8
for transport in keepalive close; do
    GMARK_BENCH_JSON="$drive_out" cargo run --offline --release -p gmark-bench \
        --bin drive -- --target served --transport "$transport" --nodes 300 \
        --requests 400 --warmup 40 --max-concurrency 2 --workers 2 --distinct 8
done

echo "== baselines written =="
wc -l "$out" "$wl_out" "$eval_out" "$store_out" "$serve_out" "$drive_out"
cat "$out"
cat "$wl_out"
cat "$eval_out"
cat "$store_out"
cat "$serve_out"
cat "$drive_out"
