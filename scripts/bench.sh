#!/usr/bin/env bash
# Runs the generation-side performance baseline and records it as
# BENCH_gen.json for perf-trajectory tracking across PRs:
#
#   * the `generation` criterion bench (graph_gen / query_gen / ablation
#     groups, including the 1-vs-4-thread parallel pipeline ablation),
#     exported one JSON object per line via GMARK_BENCH_JSON;
#   * the `querygen_scale` binary (Section 6.2's 1000-query workload
#     generation + translation), timed per scenario and appended in the
#     same format;
#   * the `scale_sweep` binary (Table 3-style): streamed generation at
#     50K -> 5M nodes plus materialized contrast rows, one process per
#     size so each row's `peak_rss_kb` (VmHWM) is a per-size peak — these
#     rows pin the memory-bounded streaming claim.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_gen.json)

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_gen.json}"
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;; # cargo runs bench binaries from the package dir
esac
rm -f "$out"

echo "== criterion generation benches (exporting to $out) =="
GMARK_BENCH_JSON="$out" cargo bench --offline -p gmark-bench --bench generation

echo "== querygen_scale (Section 6.2) =="
# Time the whole sweep; per-scenario timings are printed by the binary.
start_ns=$(date +%s%N)
cargo run --offline --release -p gmark-bench --bin querygen_scale
end_ns=$(date +%s%N)
total_ns=$((end_ns - start_ns))
printf '{"group":"querygen_scale","bench":"all_scenarios_1000q","mean_ns":%d,"min_ns":%d,"iters":1,"throughput_kind":"none","throughput_units":0}\n' \
    "$total_ns" "$total_ns" >> "$out"

echo "== scale sweep (Table 3-style, streamed + materialized contrast) =="
# One process per size: peak_rss_kb rows are per-size VmHWM peaks.
for n in 50000 500000 5000000; do
    GMARK_BENCH_JSON="$out" cargo run --offline --release -p gmark-bench \
        --bin scale_sweep -- --nodes "$n" --mode streamed --threads 0
done
for n in 50000 500000; do
    GMARK_BENCH_JSON="$out" cargo run --offline --release -p gmark-bench \
        --bin scale_sweep -- --nodes "$n" --mode materialized --threads 0
done

echo "== baseline written =="
wc -l "$out"
cat "$out"
