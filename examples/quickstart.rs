//! Quickstart: generate a graph and a selectivity-controlled workload from
//! the paper's default bibliographical scenario, evaluate a query, and
//! print it in all four output syntaxes.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --threads N]
//! ```

use gmark::prelude::*;
use gmark::translate::translate_all;

/// `--threads N` from argv (generation is bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    // 1. The Bib schema of Fig. 2: researchers author papers published in
    //    conferences held in cities; papers may be extended to journals.
    let schema = gmark::core::usecases::bib();
    println!(
        "schema: {} node types, {} predicates, {} constraints",
        schema.type_count(),
        schema.predicate_count(),
        schema.constraints().len()
    );

    // 2. Generate a 10 000-node instance (deterministic in the seed).
    let config = GraphConfig::new(10_000, schema.clone());
    for issue in config.validate() {
        println!("consistency check: {issue:?}");
    }
    let opts = GeneratorOptions {
        threads: threads_from_args(),
        ..GeneratorOptions::with_seed(42)
    };
    let (graph, report) = generate_graph(&config, &opts);
    println!(
        "graph: {} nodes, {} edges ({} per constraint: {:?})",
        graph.node_count(),
        report.total_edges,
        report.constraints.len(),
        report
            .constraints
            .iter()
            .map(|c| c.edges)
            .collect::<Vec<_>>()
    );

    // 3. Generate a 9-query workload: 3 constant, 3 linear, 3 quadratic
    //    binary chain queries (the paper's Section 6.2 setup, scaled down).
    let (workload, wreport) = generate_workload(&schema, &WorkloadConfig::new(9).with_seed(7))
        .expect("workload generates");
    println!(
        "workload: {} queries ({} selectivity targets missed)",
        workload.queries.len(),
        wreport.unsatisfied_selectivity
    );

    // 4. Evaluate each query, printing its class and result count.
    for gq in &workload.queries {
        let answers = TripleStoreEngine
            .evaluate(&graph, &gq.query, &Budget::default())
            .expect("within budget");
        println!(
            "  [{}] |Q(G)| = {:<8} {}",
            gq.target.map_or("-".into(), |t| t.to_string()),
            answers.count(),
            gq.query.display(&schema)
        );
    }

    // 5. Translate the first query into SPARQL, openCypher, SQL, Datalog.
    let q = &workload.queries[0].query;
    println!("\ntranslations of the first query:");
    for (syntax, text) in translate_all(q, &schema).expect("translates") {
        println!("--- {syntax} ---\n{text}");
    }
}
