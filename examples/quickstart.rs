//! Quickstart: the unified pipeline API end to end — build a
//! [`RunPlan`](gmark::run::RunPlan) over the paper's default
//! bibliographical scenario, materialize the graph and a
//! selectivity-controlled workload with
//! [`run_in_memory`](gmark::run::run_in_memory), evaluate each query, and
//! print the first one in all four output syntaxes.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --threads N]
//! ```

use gmark::prelude::*;
use gmark::translate::translate_all;

/// `--threads N` from argv (generation is bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() -> Result<(), GmarkError> {
    // 1. The Bib schema of Fig. 2: researchers author papers published in
    //    conferences held in cities; papers may be extended to journals.
    let schema = gmark::core::usecases::bib();
    println!(
        "schema: {} node types, {} predicates, {} constraints",
        schema.type_count(),
        schema.predicate_count(),
        schema.constraints().len()
    );

    // 2. One plan: a 10 000-node instance plus a 9-query workload —
    //    3 constant, 3 linear, 3 quadratic binary chain queries (the
    //    paper's Section 6.2 setup, scaled down).
    let plan = RunPlan::builder(schema.clone())
        .nodes(10_000)
        .workload(WorkloadConfig::new(9).with_seed(7))
        .build()?;
    let opts = RunOptions::with_seed(42).threads(threads_from_args());

    // 3. Materialize (the embedding entry point: engines want the graph
    //    itself, not its N-Triples).
    let arts = run_in_memory(&plan, &opts)?;
    let summary = &arts.summary;
    for issue in &summary.consistency {
        println!("consistency check: {issue}");
    }
    let g = summary.graph.as_ref().expect("plan generates a graph");
    println!(
        "graph: {} nodes, {} edges ({} per constraint: {:?})",
        g.nodes_realized,
        g.edges_generated,
        g.constraints.len(),
        g.constraints.iter().map(|c| c.edges).collect::<Vec<_>>()
    );
    let w = summary
        .workload
        .as_ref()
        .expect("plan generates a workload");
    println!(
        "workload: {} queries ({} selectivity targets missed)",
        w.produced, w.unsatisfied_selectivity
    );

    // 4. Evaluate each query, printing its class and result count.
    let graph = arts.graph.expect("materialized");
    let workload = arts.workload.expect("materialized");
    for gq in &workload.queries {
        let answers = TripleStoreEngine
            .evaluate(&graph, &gq.query, &Budget::default())
            .expect("within budget");
        println!(
            "  [{}] |Q(G)| = {:<8} {}",
            gq.target.map_or("-".into(), |t| t.to_string()),
            answers.count(),
            gq.query.display(&schema)
        );
    }

    // 5. Translate the first query into SPARQL, openCypher, SQL, Datalog.
    let q = &workload.queries[0].query;
    println!("\ntranslations of the first query:");
    for (syntax, text) in translate_all(q, &schema).expect("translates") {
        println!("--- {syntax} ---\n{text}");
    }
    Ok(())
}
