//! A tour of the selectivity machinery of Section 5.2: base classes,
//! the Fig. 7 algebra, the schema graph / distance matrix / selectivity
//! graph, and an empirical α measurement closing the loop.
//!
//! ```sh
//! cargo run --release --example selectivity_lab [-- --threads N]
//! ```

use gmark::core::selectivity::graph::{SchemaGraph, SelectivityGraph};
use gmark::core::selectivity::{Card, Estimator, SelOp, SelTriple};
use gmark::prelude::*;
use gmark::stats::log_log_alpha;

/// `--threads N` from argv (generation is bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let schema = gmark::core::usecases::bib();
    let est = Estimator::new(&schema);

    // Base classes of each predicate between its endpoint types.
    println!("base selectivity classes:");
    for c in schema.constraints() {
        let sym = Symbol::forward(c.predicate);
        if let Some(t) = est.symbol_class(c.source, c.target, sym) {
            println!(
                "  sel({}, {}, {}) = {t}   (inverse: {})",
                schema.type_name(c.source),
                schema.predicate_name(c.predicate),
                schema.type_name(c.target),
                t.inverse()
            );
        }
    }

    // The Fig. 7 algebra at work: the quadratic pattern > · <.
    let greater = SelTriple::new(Card::Many, SelOp::Greater, Card::Many);
    let less = SelTriple::new(Card::Many, SelOp::Less, Card::Many);
    println!(
        "\nFig. 7 concatenation: {greater} · {less} = {}",
        greater.concat(less)
    );
    println!(
        "Fig. 7 concatenation: {less} · {greater} = {}",
        less.concat(greater)
    );

    // The schema graph G_S and selectivity graph G_sel (Section 5.2.3).
    let gs = SchemaGraph::build(&schema);
    let valid = gs.valid_nodes().count();
    let edges: usize = gs.valid_nodes().map(|n| gs.successors(n).len()).sum();
    println!("\nG_S: {valid} nodes, {edges} labeled edges");
    let d = gs.distance_matrix();
    let finite: usize = d.iter().flatten().filter(|e| e.is_some()).count();
    println!("distance matrix: {finite} finite entries");
    let gsel = SelectivityGraph::build(&gs, 1, 4);
    let gsel_edges: usize = gs.valid_nodes().map(|n| gsel.successors(n).len()).sum();
    println!("G_sel (lengths 1..=4): {gsel_edges} edges");

    // Close the loop: measure α of one query per class on real instances.
    // Queries and graphs both come from the unified pipeline API.
    let workload = run_in_memory(
        &RunPlan::builder(schema.clone())
            .workload(WorkloadConfig::new(3).with_seed(12))
            .queries_only()
            .build()
            .expect("plan builds"),
        &RunOptions::default(),
    )
    .expect("workload generates")
    .workload
    .expect("plan generates a workload");
    println!("\nempirical α (|Q(G)| = β·|G|^α, Section 6.2):");
    for gq in &workload.queries {
        let mut observations = Vec::new();
        for n in [1_000u64, 2_000, 4_000, 8_000] {
            let plan = RunPlan::builder(schema.clone())
                .nodes(n)
                .build()
                .expect("plan builds");
            let opts = RunOptions::with_seed(8).threads(threads_from_args());
            let graph = run_in_memory(&plan, &opts)
                .expect("graph generates")
                .graph
                .expect("plan generates a graph");
            let count = TripleStoreEngine
                .evaluate(&graph, &gq.query, &Budget::default())
                .map(|a| a.count())
                .unwrap_or(0);
            observations.push((n, count));
        }
        let (alpha, beta) = log_log_alpha(&observations).unwrap_or((f64::NAN, f64::NAN));
        println!(
            "  target {:<10} measured α = {alpha:>5.2} (β = {beta:.2e})  {}",
            gq.target.map_or("-".into(), |t| t.to_string()),
            gq.query.display(&schema)
        );
    }
}
