//! Theorem 3.6, executable: the SAT-1-in-3 reduction showing graph
//! configuration satisfiability is NP-complete.
//!
//! ```sh
//! cargo run --release --example intractability
//! ```

use gmark::core::sat1in3::{graph_for_valuation, phi_zero, reduce, Cnf3, Literal};

fn main() {
    // The paper's ϕ0 = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4).
    let phi = phi_zero();
    let reduction = reduce(&phi);
    println!(
        "ϕ0 over {} variables, {} clauses → configuration with node budget \
         2n+k+1 = {}, {} η-entries",
        phi.vars,
        phi.clauses.len(),
        reduction.node_budget,
        reduction.eta.len()
    );

    // The Fig. 4 witness: x1, x2 ↦ true; x3, x4 ↦ false.
    let witness = vec![true, true, false, false];
    println!(
        "witness {witness:?}: 1-in-3 satisfied = {}, configuration admits \
         induced graph = {}",
        phi.one_in_three(&witness),
        reduction.admits(&graph_for_valuation(&phi, &witness))
    );

    // Exhaustive check of the iff (both directions of the theorem).
    let sat_direct = phi.solve_one_in_three();
    let sat_config = reduction.satisfiable();
    println!("direct SAT-1-in-3 witness:     {sat_direct:?}");
    println!("configuration-level witness:   {sat_config:?}");
    assert_eq!(sat_direct.is_some(), sat_config.is_some());

    // An unsatisfiable formula: (x∨x∨x) needs exactly one of three equal
    // literals true — impossible.
    let lit = |var, positive| Literal { var, positive };
    let unsat = Cnf3 {
        vars: 1,
        clauses: vec![[lit(0, true), lit(0, true), lit(0, true)]],
    };
    let red = reduce(&unsat);
    println!(
        "\n(x ∨ x ∨ x): 1-in-3 satisfiable = {}, configuration satisfiable = {}",
        unsat.solve_one_in_three().is_some(),
        red.satisfiable().is_some()
    );
    println!(
        "\nBecause deciding this is NP-complete in general, the gMark \
         generator is heuristic: it always returns a graph in linear time \
         and relaxes constraints it cannot meet (Section 4)."
    );
}
