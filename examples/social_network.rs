//! Recursive queries on the LDBC-Social-Network use case (`LSN`).
//!
//! Demonstrates the paper's flagship recursion example — the transitive
//! closure of `knows` is a *quadratic* query because the social graph's
//! power-law in/out distributions create hub users (Section 5.2.1) — and
//! the openCypher degradation phenomenon of Section 7.1. Generation runs
//! through the unified pipeline API ([`run_in_memory`]).
//!
//! ```sh
//! cargo run --release --example social_network [-- --threads N]
//! ```

use gmark::prelude::*;
use std::time::Duration;

/// `--threads N` from argv (generation is bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() -> Result<(), GmarkError> {
    let schema = gmark::core::usecases::lsn();

    // One plan carries both halves: the 4 000-node instance and the Rec
    // workload of the paper's recursion experiments.
    let mut wcfg = WorkloadConfig::new(9).with_seed(5);
    wcfg.recursion_probability = 0.5;
    wcfg.query_size.conjuncts = (1, 2);
    let plan = RunPlan::builder(schema.clone())
        .nodes(4_000)
        .workload(wcfg)
        .build()?;
    let arts = run_in_memory(
        &plan,
        &RunOptions::with_seed(99).threads(threads_from_args()),
    )?;
    let graph = arts.graph.expect("plan generates a graph");
    println!(
        "LSN instance: {} nodes, {} edges",
        graph.node_count(),
        arts.summary.graph.as_ref().unwrap().edges_generated
    );

    let knows = schema.predicate_by_name("knows").expect("LSN has knows");
    let k = Symbol::forward(knows);

    // (?x, knows·knows⁻)* , ?y): the co-acquaintance closure — the paper's
    // (authors·authors⁻)* example transposed to the social network.
    let closure = Query::single(Rule {
        head: vec![Var(0), Var(1)],
        body: vec![Conjunct {
            src: Var(0),
            expr: RegularExpr::star(vec![PathExpr(vec![k, k.flipped()])]),
            trg: Var(1),
        }],
    })
    .unwrap();

    // Static, schema-only estimate first (no graph needed!).
    let estimator = gmark::core::selectivity::Estimator::new(&schema);
    println!(
        "schema-driven estimate for (knows·knows⁻)*: α̂ = {:?}",
        estimator.alpha(&closure)
    );

    // Evaluate on the instance with each engine under a 20 s budget.
    println!("\nengine comparison on the recursive closure:");
    for engine in all_engines() {
        let budget = Budget::with_timeout(Duration::from_secs(20));
        let start = std::time::Instant::now();
        match engine.evaluate(&graph, &closure, &budget) {
            Ok(answers) => println!(
                "  {:<16} {:>10} answers in {:>8.2?}",
                engine.name(),
                answers.count(),
                start.elapsed()
            ),
            Err(e) => println!("  {:<16} FAILED: {e}", engine.name()),
        }
    }
    println!(
        "(the navigational engine evaluates the degraded openCypher form — \
         knows* without the inverse — so its answer set differs, exactly as \
         the paper observes for system G)"
    );

    // The Rec workload the plan generated alongside the graph.
    let workload = arts.workload.expect("plan generates a workload");
    println!("\ngenerated Rec workload:");
    for gq in &workload.queries {
        println!(
            "  [{}]{} {}",
            gq.target.map_or("-".into(), |t| t.to_string()),
            if gq.query.is_recursive() {
                " (recursive)"
            } else {
                ""
            },
            gq.query.display(&schema)
        );
    }
    Ok(())
}
