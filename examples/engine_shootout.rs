//! A miniature of the paper's Section 7 experiment: run a diverse workload
//! against all four evaluation engines and print the timing grid
//! (Fig. 12 in small).
//!
//! Built on the evaluation harness: per graph size one shared
//! `EvalContext` feeds every engine, and `evaluate_matrix` fans the
//! (engine × query) cells over `--threads` workers with a fresh per-cell
//! budget — the same machinery behind the CLI's `--eval`.
//!
//! ```sh
//! cargo run --release --example engine_shootout [-- --threads N]
//! ```

use gmark::prelude::*;
use std::time::Duration;

/// `--threads N` from argv (generation and the matrix's deterministic
/// content are bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let schema = gmark::core::usecases::bib();
    let sizes = [1_000u64, 2_000, 4_000];
    let threads = threads_from_args();
    let opts = RunOptions::with_seed(17).threads(threads);

    let mut wcfg = WorkloadConfig::new(9).with_seed(3);
    wcfg.query_size.conjuncts = (1, 3);
    wcfg.query_size.disjuncts = (1, 2);
    let workload = run_in_memory(
        &RunPlan::builder(schema.clone())
            .workload(wcfg)
            .queries_only()
            .build()
            .expect("plan builds"),
        &RunOptions::default(),
    )
    .expect("workload generates")
    .workload
    .expect("plan generates a workload");

    let budget = CellBudget {
        timeout: Some(Duration::from_secs(10)),
        max_tuples: 20_000_000,
    };
    let matrix_opts = MatrixOptions {
        threads,
        warm_runs: 0,
        ..MatrixOptions::default()
    };

    println!(
        "{:<12} {:>6}  {:>14} {:>14} {:>14} {:>14}",
        "class", "nodes", "P/relational", "G/navigational", "S/triplestore", "D/datalog"
    );
    for &n in &sizes {
        let plan = RunPlan::builder(schema.clone())
            .nodes(n)
            .build()
            .expect("plan builds");
        let graph = run_in_memory(&plan, &opts)
            .expect("graph generates")
            .graph
            .expect("plan generates a graph");
        let ctx = EvalContext::new(&graph);
        let queries: Vec<&Query> = workload.queries.iter().map(|gq| &gq.query).collect();
        let report = evaluate_matrix(&ctx, &queries, &EngineKind::ALL, &budget, &matrix_opts);

        for class in SelectivityClass::ALL {
            let rows: Vec<usize> = workload
                .queries
                .iter()
                .enumerate()
                .filter(|(_, gq)| gq.target == Some(class))
                .map(|(i, _)| i)
                .collect();
            let mut line = format!("{:<12} {:>6}", class.to_string(), n);
            for kind in EngineKind::ALL {
                let mut total = Duration::ZERO;
                let mut failed = false;
                for &row in &rows {
                    let cell = report.cell(row, kind).expect("matrix covers every cell");
                    match &cell.outcome {
                        CellOutcome::Answers { .. } => {
                            total += Duration::from_secs_f64(cell.seconds)
                        }
                        CellOutcome::Failed(_) => failed = true,
                    }
                }
                if failed {
                    line.push_str(&format!(" {:>14}", "-"));
                } else {
                    line.push_str(&format!(" {:>13.1?}", total));
                }
            }
            println!("{line}");
        }
    }
    println!(
        "\n(per row: total time over the class's 3 queries; '-' marks a \
         budget failure, the paper's Table 4 phenomenon)"
    );
}
