//! A miniature of the paper's Section 7 experiment: run a diverse workload
//! against all four evaluation engines and print the timing grid
//! (Fig. 12 in small).
//!
//! ```sh
//! cargo run --release --example engine_shootout [-- --threads N]
//! ```

use gmark::prelude::*;
use std::time::{Duration, Instant};

/// `--threads N` from argv (generation is bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let schema = gmark::core::usecases::bib();
    let sizes = [1_000u64, 2_000, 4_000];
    let opts = RunOptions::with_seed(17).threads(threads_from_args());

    let mut wcfg = WorkloadConfig::new(9).with_seed(3);
    wcfg.query_size.conjuncts = (1, 3);
    wcfg.query_size.disjuncts = (1, 2);
    let workload = run_in_memory(
        &RunPlan::builder(schema.clone())
            .workload(wcfg)
            .queries_only()
            .build()
            .expect("plan builds"),
        &RunOptions::default(),
    )
    .expect("workload generates")
    .workload
    .expect("plan generates a workload");

    println!(
        "{:<12} {:>6}  {:>14} {:>14} {:>14} {:>14}",
        "class", "nodes", "P/relational", "G/navigational", "S/triplestore", "D/datalog"
    );
    for class in SelectivityClass::ALL {
        for &n in &sizes {
            let plan = RunPlan::builder(schema.clone())
                .nodes(n)
                .build()
                .expect("plan builds");
            let graph = run_in_memory(&plan, &opts)
                .expect("graph generates")
                .graph
                .expect("plan generates a graph");
            let mut row = format!("{:<12} {:>6}", class.to_string(), n);
            for engine in all_engines() {
                let mut total = Duration::ZERO;
                let mut failed = false;
                for gq in workload.of_class(class) {
                    let budget = Budget::with_timeout(Duration::from_secs(10));
                    let start = Instant::now();
                    match engine.evaluate(&graph, &gq.query, &budget) {
                        Ok(_) => total += start.elapsed(),
                        Err(_) => failed = true,
                    }
                }
                if failed {
                    row.push_str(&format!(" {:>14}", "-"));
                } else {
                    row.push_str(&format!(" {:>13.1?}", total));
                }
            }
            println!("{row}");
        }
    }
    println!(
        "\n(per row: total time over the class's 3 queries; '-' marks a \
         budget failure, the paper's Table 4 phenomenon)"
    );
}
