//! The motivating example of Section 3.1, built from scratch with the
//! schema-builder API (rather than the canned `usecases::bib()`), written
//! to and re-read from the XML configuration format, run through the
//! unified pipeline (graph in memory for inspection, N-Triples through a
//! [`MemorySink`](gmark::run::MemorySink)), and checked against the
//! degree-distribution intent of Fig. 2(c).
//!
//! ```sh
//! cargo run --release --example bibliographical [-- --threads N]
//! ```

use gmark::config::{parse_config, write_config};
use gmark::prelude::*;

/// `--threads N` from argv (generation is bit-identical at any count).
fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() -> Result<(), GmarkError> {
    // Fig. 2(a)/(b): occurrence constraints; Fig. 2(c): distributions.
    let mut b = SchemaBuilder::new();
    let researcher = b.node_type("researcher", Occurrence::Proportion(0.5));
    let paper = b.node_type("paper", Occurrence::Proportion(0.3));
    let journal = b.node_type("journal", Occurrence::Proportion(0.1));
    let conference = b.node_type("conference", Occurrence::Proportion(0.1));
    let city = b.node_type("city", Occurrence::Fixed(100));

    let authors = b.predicate("authors", Some(Occurrence::Proportion(0.5)));
    let published_in = b.predicate("publishedIn", Some(Occurrence::Proportion(0.3)));
    let held_in = b.predicate("heldIn", Some(Occurrence::Proportion(0.1)));
    let extended_to = b.predicate("extendedTo", Some(Occurrence::Proportion(0.1)));

    // "the number of authors on papers follows a Gaussian distribution …
    // whereas the number of papers authored by a researcher follows a
    // Zipfian"
    b.edge(
        researcher,
        authors,
        paper,
        Distribution::gaussian(3.0, 1.0),
        Distribution::zipfian(2.5),
    );
    // "a paper is published in exactly one conference"
    b.edge(
        paper,
        published_in,
        conference,
        Distribution::gaussian(3.0, 1.0),
        Distribution::uniform(1, 1),
    );
    // "a paper can be extended or not to a journal"
    b.edge(
        paper,
        extended_to,
        journal,
        Distribution::gaussian(2.0, 1.0),
        Distribution::uniform(0, 1),
    );
    // "a conference is held in exactly one city, the number of conferences
    // per city follows a Zipfian distribution"
    b.edge(
        conference,
        held_in,
        city,
        Distribution::zipfian(2.5),
        Distribution::uniform(1, 1),
    );
    let schema = b.build().expect("well-formed schema");

    let config = GraphConfig::new(20_000, schema.clone());

    // Round-trip through the XML configuration format (Fig. 1's input) —
    // a plan parsed back from the written XML describes the same scenario.
    let xml = write_config(&config, None);
    println!("=== XML configuration ===\n{xml}");
    let reparsed = parse_config(&xml).expect("round trip");
    assert_eq!(reparsed.graph, config);
    let plan_from_xml = RunPlan::from_xml(&xml)?;
    assert_eq!(plan_from_xml.graph, config);

    // Generate and inspect through the pipeline API.
    let plan = RunPlan::builder(schema.clone()).nodes(20_000).build()?;
    let opts = RunOptions::with_seed(2024).threads(threads_from_args());
    let arts = run_in_memory(&plan, &opts)?;
    let graph = arts.graph.expect("plan generates a graph");
    println!(
        "generated {} nodes / {} edges",
        graph.node_count(),
        arts.summary.graph.as_ref().unwrap().edges_generated
    );

    // Check the Fig. 2(c) intent on the instance.
    let city_t = schema.type_by_name("city").unwrap();
    let held_in_p = schema.predicate_by_name("heldIn").unwrap();
    let conf_per_city = graph.in_degrees(held_in_p.0, city_t.0);
    let max = conf_per_city.iter().max().copied().unwrap_or(0);
    let mean = conf_per_city.iter().sum::<usize>() as f64 / conf_per_city.len() as f64;
    println!(
        "conferences per city: mean {mean:.1}, max {max} (Zipfian skew: hub city \
         hosts {:.0}x the average)",
        max as f64 / mean.max(1e-9)
    );

    let paper_t = schema.type_by_name("paper").unwrap();
    let pub_p = schema.predicate_by_name("publishedIn").unwrap();
    let out = graph.out_degrees(pub_p.0, paper_t.0);
    let exactly_one = out.iter().filter(|&&d| d == 1).count();
    println!(
        "papers with exactly one conference: {exactly_one}/{} ({:.1}%)",
        out.len(),
        100.0 * exactly_one as f64 / out.len() as f64
    );

    // Export a small instance as N-Triples (the data format of Fig. 1)
    // through a MemorySink — the same bytes a DirSink would put in
    // graph.nt.
    let small = RunPlan::builder(schema.clone()).nodes(50).build()?;
    let mut sink = MemorySink::new();
    run(&small, &RunOptions::with_seed(2024), &mut sink)?;
    let text = String::from_utf8(sink.bytes(Artifact::Graph).expect("graph written")).unwrap();
    println!("\n=== first N-Triples of a 50-node instance ===");
    for line in text.lines().take(8) {
        println!("{line}");
    }

    // Schema extraction (the concluding-remarks extension): recover a
    // configuration from the generated instance.
    let type_names: Vec<String> = schema
        .types()
        .map(|t| schema.type_name(t).to_owned())
        .collect();
    let extracted = gmark::core::extract::extract_config(
        &graph,
        &type_names,
        &schema.predicate_names(),
        &gmark::core::extract::ExtractOptions::default(),
    );
    println!("\n=== extracted schema (from the instance) ===");
    for c in extracted.schema.constraints() {
        println!(
            "  {} --{}--> {}: in {} / out {}",
            extracted.schema.type_name(c.source),
            extracted.schema.predicate_name(c.predicate),
            extracted.schema.type_name(c.target),
            c.din,
            c.dout,
        );
    }
    Ok(())
}
