//! Execution options, collapsed from the three per-crate option structs.
//!
//! PRs 1–3 grew three overlapping option types — `GeneratorOptions` (seed,
//! threads, Gaussian fast path), `StreamOptions` (base IRI, scratch dir),
//! and `WorkloadStreamOptions` (threads, scratch dir) — that every caller
//! had to assemble consistently by hand. [`RunOptions`] is the single
//! knob set of the unified pipeline; [`run`](crate::run::run) derives the
//! per-crate structs from it internally.

use gmark_core::gen::{GeneratorOptions, StreamOptions};
use gmark_translate::WorkloadStreamOptions;
use std::path::PathBuf;

/// How to execute a [`RunPlan`](crate::run::RunPlan): seed, parallelism,
/// and streaming. The *what* lives in the plan; everything here may change
/// without changing a single output byte — except `seed` (different bytes
/// by design) and `stream` (same edge set, different serialization
/// strategy).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Master seed override. `None` keeps the defaults: the generator's
    /// built-in seed for the graph and the workload configuration's own
    /// seed (e.g. from the XML `seed` attribute) for the queries.
    /// `Some(s)` pins both pipelines to `s`.
    pub seed: Option<u64>,
    /// Worker threads for both pipelines (graph constraints and workload
    /// queries). `0` auto-detects via
    /// [`std::thread::available_parallelism`]. Every output is
    /// byte-identical at every thread count.
    pub threads: usize,
    /// Memory-bounded graph pipeline: stream N-Triples through
    /// per-constraint shard files instead of materializing the graph.
    /// Streamed output preserves generation order and keeps duplicate
    /// triples; non-streamed output is sorted and deduplicated (same edge
    /// set — RDF set semantics make them equivalent data).
    pub stream: bool,
    /// The Gaussian fast path of the graph generator (see
    /// [`GeneratorOptions::gaussian_fast_path`]).
    pub gaussian_fast_path: bool,
    /// Base IRI of the N-Triples output (no trailing slash needed).
    pub base_iri: String,
    /// Scratch directory override for temporary shard files. `None` asks
    /// the [`Sink`](crate::run::Sink) for one (falling back to
    /// [`std::env::temp_dir`]), which keeps shards on the output's
    /// filesystem so concatenation is a plain sequential copy.
    pub scratch_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        let defaults = GeneratorOptions::default();
        RunOptions {
            seed: None,
            threads: defaults.threads,
            stream: false,
            gaussian_fast_path: defaults.gaussian_fast_path,
            base_iri: StreamOptions::default().base,
            scratch_dir: None,
        }
    }
}

impl RunOptions {
    /// Options pinning both pipelines to one seed.
    pub fn with_seed(seed: u64) -> RunOptions {
        RunOptions {
            seed: Some(seed),
            ..RunOptions::default()
        }
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> RunOptions {
        self.threads = threads;
        self
    }

    /// Enables or disables the memory-bounded streaming graph pipeline.
    pub fn stream(mut self, stream: bool) -> RunOptions {
        self.stream = stream;
        self
    }

    /// The graph seed after applying the default.
    pub fn graph_seed(&self) -> u64 {
        self.seed.unwrap_or(GeneratorOptions::default().seed)
    }

    /// Resolves `0 = auto-detect` exactly like the per-crate options do.
    pub fn effective_threads(&self) -> usize {
        self.generator_options().effective_threads()
    }

    /// The graph generator's option struct derived from these options.
    pub(crate) fn generator_options(&self) -> GeneratorOptions {
        GeneratorOptions {
            seed: self.graph_seed(),
            gaussian_fast_path: self.gaussian_fast_path,
            threads: self.threads,
        }
    }

    /// The streaming graph pipeline's option struct.
    pub(crate) fn stream_options(&self, scratch: PathBuf) -> StreamOptions {
        StreamOptions {
            base: self.base_iri.clone(),
            scratch_dir: scratch,
        }
    }

    /// The streaming workload pipeline's option struct.
    pub(crate) fn workload_stream_options(&self, scratch: PathBuf) -> WorkloadStreamOptions {
        WorkloadStreamOptions {
            threads: self.threads,
            scratch_dir: scratch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_per_crate_structs() {
        let opts = RunOptions::default();
        let gen = GeneratorOptions::default();
        assert_eq!(opts.graph_seed(), gen.seed);
        assert_eq!(opts.threads, gen.threads);
        assert_eq!(opts.gaussian_fast_path, gen.gaussian_fast_path);
        assert_eq!(opts.base_iri, StreamOptions::default().base);
    }

    #[test]
    fn seed_override_reaches_the_generator() {
        let opts = RunOptions::with_seed(7).threads(3);
        let gen = opts.generator_options();
        assert_eq!(gen.seed, 7);
        assert_eq!(gen.threads, 3);
    }

    #[test]
    fn zero_threads_auto_detects() {
        assert!(RunOptions::default().threads(0).effective_threads() >= 1);
    }
}
