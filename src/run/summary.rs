//! The machine-readable run summary.
//!
//! One [`RunSummary`] captures everything `report.txt` and the CLI banner
//! used to print — what was generated, with which seed, how long it took,
//! what the consistency check found — and serializes it to JSON
//! ([`RunSummary::to_json`], hand-rolled: no serde offline) so harnesses
//! like `scripts/bench.sh` stop scraping the human-readable report.

use gmark_core::gen::ConstraintReport;
use gmark_core::workload::DiversitySummary;
use std::fmt::Write as _;
use std::path::PathBuf;

/// What one pipeline run produced. Returned by [`run`](crate::run::run)
/// and [`run_in_memory`](crate::run::run_in_memory), rendered to
/// `report.txt` by [`DirSink`](crate::run::DirSink), serializable with
/// [`RunSummary::to_json`].
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The configuration file the plan came from, when it came from one.
    pub config: Option<PathBuf>,
    /// The graph pipeline's resolved master seed.
    pub seed: u64,
    /// Worker threads actually used (after resolving `0 = auto-detect`).
    pub threads: usize,
    /// Whether the memory-bounded streaming graph pipeline ran.
    pub streamed: bool,
    /// Findings of the Section 4 consistency check (empty = consistent).
    pub consistency: Vec<String>,
    /// Graph-instance outcome; `None` when the plan skipped the graph.
    pub graph: Option<GraphRunSummary>,
    /// On-disk paged store outcome; `None` when the plan had no store
    /// output. (Evaluating an existing store via `from_store` does not
    /// set this — nothing was written.)
    pub store: Option<StoreRunSummary>,
    /// Workload outcome; `None` when the plan had no workload output.
    pub workload: Option<WorkloadRunSummary>,
    /// Evaluation outcome; `None` when the plan had no `--eval` stage.
    pub eval: Option<EvalRunSummary>,
}

/// The graph half of a [`RunSummary`].
#[derive(Debug, Clone)]
pub struct GraphRunSummary {
    /// Node count requested by the configuration.
    pub nodes_requested: u64,
    /// Node count realized after per-type rounding and fixed counts.
    pub nodes_realized: u64,
    /// Triples written to the [`Artifact::Graph`](crate::run::Artifact)
    /// output.
    pub edges_written: u64,
    /// Edges generated before deduplication.
    pub edges_generated: u64,
    /// Per-constraint generation outcomes, in declaration order.
    pub constraints: Vec<ConstraintReport>,
    /// Wall-clock generation + serialization time.
    pub seconds: f64,
}

/// The on-disk paged store's slice of a [`RunSummary`] (the `--store`
/// output). Everything but `seconds` is a pure function of the
/// configuration and seed.
#[derive(Debug, Clone)]
pub struct StoreRunSummary {
    /// Total store file size in bytes.
    pub bytes: u64,
    /// Page size of the store file.
    pub page_size: u32,
    /// Deduplicated edges recorded in the store.
    pub edges: u64,
    /// Wall-clock store build time (report/banner only).
    pub seconds: f64,
}

/// The workload half of a [`RunSummary`].
#[derive(Debug, Clone)]
pub struct WorkloadRunSummary {
    /// The workload pipeline's resolved seed.
    pub seed: u64,
    /// Queries produced.
    pub produced: usize,
    /// Queries whose selectivity target had to be abandoned.
    pub unsatisfied_selectivity: usize,
    /// Total relaxation steps applied across the workload.
    pub relaxations: u32,
    /// Starred concatenations the openCypher translator degrades
    /// (Section 7.1).
    pub cypher_star_concat: u64,
    /// Starred inverses the openCypher translator degrades (Section 7.1).
    pub cypher_star_inverse: u64,
    /// Bytes written per workload document, in
    /// [`Artifact::WORKLOAD`](crate::run::Artifact::WORKLOAD) order.
    /// All zeros when the run materialized queries without rendering them
    /// ([`run_in_memory`](crate::run::run_in_memory)).
    pub bytes: [u64; 5],
    /// Workload diversity (shapes, classes, arities, size maxima).
    pub diversity: DiversitySummary,
    /// Wall-clock generation + translation time.
    pub seconds: f64,
}

/// The evaluation half of a [`RunSummary`] — the outcome of the
/// (engine × query) matrix the `--eval` stage ran.
///
/// Everything serialized by [`RunSummary::to_json`] from this struct is a
/// pure function of the plan and the seed (outcomes, cardinalities,
/// counts): the `eval` section of `summary.json` is byte-identical at
/// every thread count. The stage's wall time is recorded in
/// [`EvalRunSummary::seconds`] for the report and the CLI banner but
/// deliberately kept **out** of the JSON, preserving that guarantee.
#[derive(Debug, Clone)]
pub struct EvalRunSummary {
    /// Engine letters in column order, e.g. `"PGSD"`.
    pub engines: String,
    /// Per-cell wall-clock budget in milliseconds (`0` = unlimited).
    pub budget_ms: u64,
    /// Per-cell tuple cap.
    pub max_tuples: usize,
    /// Whether the schema-statistics planner ordered the engines' joins.
    pub plan: bool,
    /// Sub-expression cache contents and hit accounting; `None` when the
    /// cache was disabled. Deterministic: fill contents are a pure
    /// function of graph and query set, and hit/miss totals are sums of
    /// per-cell counts independent of thread schedule.
    pub cache: Option<gmark_engines::EvalCacheStats>,
    /// Number of evaluated queries (matrix rows).
    pub queries: usize,
    /// Number of evaluated cells (`queries × engines`).
    pub cells: usize,
    /// Cells that completed.
    pub ok: usize,
    /// Cells that exhausted the wall-clock budget.
    pub timeout: usize,
    /// Cells that exceeded the tuple budget.
    pub too_large: usize,
    /// Cells the engine could not express.
    pub unsupported: usize,
    /// Cells that hit an engine invariant violation.
    pub internal: usize,
    /// Per-cell rows in ascending `(query, engine position)` order.
    pub rows: Vec<EvalCellRow>,
    /// Stage wall time (report/banner only — not serialized to JSON).
    pub seconds: f64,
}

/// One deterministic cell row of an [`EvalRunSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalCellRow {
    /// Query index (generation order).
    pub query: usize,
    /// Engine letter (`P`/`G`/`S`/`D`).
    pub engine: char,
    /// Outcome word: `ok`, `timeout`, `too-large`, `unsupported`, or
    /// `error`.
    pub outcome: String,
    /// Distinct answer tuples for completed cells, `None` otherwise.
    pub count: Option<u64>,
    /// The planner's estimated answer cardinality for the cell's query;
    /// `None` when the run had the planner off.
    pub estimate: Option<u64>,
}

impl RunSummary {
    /// Renders the human-readable `report.txt` (same layout the CLI has
    /// written since PR 1, so downstream scrapers keep working during the
    /// migration to [`RunSummary::to_json`]).
    pub fn render_report(&self) -> String {
        let mut rep = String::new();
        let _ = writeln!(rep, "gMark generation report");
        match &self.config {
            Some(path) => {
                let _ = writeln!(rep, "config: {}", path.display());
            }
            None => {
                let _ = writeln!(rep, "config: (programmatic plan)");
            }
        }
        let _ = writeln!(rep, "seed: {}", self.seed);
        match &self.graph {
            Some(g) => {
                let _ = writeln!(rep, "nodes requested: {}", g.nodes_requested);
                let _ = writeln!(rep, "nodes realized: {}", g.nodes_realized);
                let _ = writeln!(
                    rep,
                    "edges: {} written ({} generated before dedup) in {:.3}s",
                    g.edges_written, g.edges_generated, g.seconds
                );
                for (i, cr) in g.constraints.iter().enumerate() {
                    let _ = writeln!(
                        rep,
                        "constraint {i}: src_slots={} trg_slots={} edges={}",
                        cr.src_slots, cr.trg_slots, cr.edges
                    );
                }
            }
            None => {
                let _ = writeln!(rep, "graph: skipped (--queries-only)");
            }
        }
        if let Some(s) = &self.store {
            let _ = writeln!(
                rep,
                "store: {} edges, {} bytes (page size {}) in {:.3}s",
                s.edges, s.bytes, s.page_size, s.seconds
            );
        }
        if self.consistency.is_empty() {
            let _ = writeln!(rep, "consistency check: ok");
        }
        for issue in &self.consistency {
            let _ = writeln!(rep, "consistency check: {issue}");
        }
        if let Some(w) = &self.workload {
            let _ = writeln!(
                rep,
                "workload: {} queries, {} relaxation steps, {} unmet selectivity targets",
                w.produced, w.relaxations, w.unsatisfied_selectivity
            );
            let _ = writeln!(
                rep,
                "cypher degradations: {} concatenation-under-star, {} inverse-under-star",
                w.cypher_star_concat, w.cypher_star_inverse
            );
            let _ = writeln!(rep, "diversity:\n{}", w.diversity);
        }
        if let Some(e) = &self.eval {
            let _ = writeln!(
                rep,
                "evaluation: {} queries x {} engines ({}) = {} cells in {:.3}s",
                e.queries,
                e.engines.len(),
                e.engines,
                e.cells,
                e.seconds
            );
            let _ = writeln!(
                rep,
                "evaluation outcomes: {} ok, {} timeout, {} too-large, {} unsupported, {} error",
                e.ok, e.timeout, e.too_large, e.unsupported, e.internal
            );
        }
        rep
    }

    /// Serializes the summary as one JSON object (stable key order, no
    /// trailing newline). `--format json` writes this to `summary.json`
    /// and stdout.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_key(&mut out, "gmark_version");
        push_str(&mut out, env!("CARGO_PKG_VERSION"));
        out.push(',');
        push_key(&mut out, "config");
        match &self.config {
            Some(p) => push_str(&mut out, &p.display().to_string()),
            None => out.push_str("null"),
        }
        out.push(',');
        push_key(&mut out, "seed");
        let _ = write!(out, "{}", self.seed);
        out.push(',');
        push_key(&mut out, "threads");
        let _ = write!(out, "{}", self.threads);
        out.push(',');
        push_key(&mut out, "streamed");
        let _ = write!(out, "{}", self.streamed);
        out.push(',');
        push_key(&mut out, "consistency");
        out.push('[');
        for (i, issue) in self.consistency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, issue);
        }
        out.push(']');
        out.push(',');
        push_key(&mut out, "graph");
        match &self.graph {
            Some(g) => g.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push(',');
        push_key(&mut out, "store");
        match &self.store {
            Some(s) => s.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push(',');
        push_key(&mut out, "workload");
        match &self.workload {
            Some(w) => w.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push(',');
        push_key(&mut out, "eval");
        match &self.eval {
            Some(e) => e.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for RunSummary {
    /// The CLI's human-readable banner (one line per pipeline that ran).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(g) = &self.graph {
            writeln!(
                f,
                "graph: {} nodes requested, {} edges -> graph.nt ({:.3}s, {} thread{}{})",
                g.nodes_requested,
                g.edges_written,
                g.seconds,
                self.threads,
                if self.threads > 1 { "s" } else { "" },
                if self.streamed { ", streamed" } else { "" }
            )?;
        }
        if let Some(s) = &self.store {
            writeln!(
                f,
                "store: {} edges -> graph.gstore ({} bytes, page size {}, {:.3}s)",
                s.edges, s.bytes, s.page_size, s.seconds
            )?;
        }
        if let Some(w) = &self.workload {
            writeln!(
                f,
                "workload: {} queries -> workload.{{txt,sparql,cypher,sql,datalog}} \
                 ({:.3}s, {} thread{}; cypher degradations: {} concatenation, {} inverse)",
                w.produced,
                w.seconds,
                self.threads,
                if self.threads > 1 { "s" } else { "" },
                w.cypher_star_concat,
                w.cypher_star_inverse,
            )?;
        }
        if let Some(e) = &self.eval {
            writeln!(
                f,
                "eval: {} cells ({} queries x {} engines) -> eval.txt \
                 ({:.3}s, {} thread{}; {} ok, {} timeout, {} too-large)",
                e.cells,
                e.queries,
                e.engines,
                e.seconds,
                self.threads,
                if self.threads > 1 { "s" } else { "" },
                e.ok,
                e.timeout,
                e.too_large,
            )?;
        }
        Ok(())
    }
}

impl GraphRunSummary {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "nodes_requested");
        let _ = write!(out, "{}", self.nodes_requested);
        out.push(',');
        push_key(out, "nodes_realized");
        let _ = write!(out, "{}", self.nodes_realized);
        out.push(',');
        push_key(out, "edges_written");
        let _ = write!(out, "{}", self.edges_written);
        out.push(',');
        push_key(out, "edges_generated");
        let _ = write!(out, "{}", self.edges_generated);
        out.push(',');
        push_key(out, "seconds");
        let _ = write!(out, "{:.6}", self.seconds);
        out.push(',');
        push_key(out, "constraints");
        out.push('[');
        for (i, cr) in self.constraints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"src_slots\":{},\"trg_slots\":{},\"edges\":{}}}",
                cr.src_slots, cr.trg_slots, cr.edges
            );
        }
        out.push(']');
        out.push('}');
    }
}

impl StoreRunSummary {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "bytes");
        let _ = write!(out, "{}", self.bytes);
        out.push(',');
        push_key(out, "page_size");
        let _ = write!(out, "{}", self.page_size);
        out.push(',');
        push_key(out, "edges");
        let _ = write!(out, "{}", self.edges);
        out.push(',');
        push_key(out, "seconds");
        let _ = write!(out, "{:.6}", self.seconds);
        out.push('}');
    }
}

impl WorkloadRunSummary {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "seed");
        let _ = write!(out, "{}", self.seed);
        out.push(',');
        push_key(out, "produced");
        let _ = write!(out, "{}", self.produced);
        out.push(',');
        push_key(out, "unsatisfied_selectivity");
        let _ = write!(out, "{}", self.unsatisfied_selectivity);
        out.push(',');
        push_key(out, "relaxations");
        let _ = write!(out, "{}", self.relaxations);
        out.push(',');
        push_key(out, "cypher_degradations");
        let _ = write!(
            out,
            "{{\"star_concat\":{},\"star_inverse\":{}}}",
            self.cypher_star_concat, self.cypher_star_inverse
        );
        out.push(',');
        push_key(out, "bytes");
        let _ = write!(
            out,
            "{{\"rules\":{},\"sparql\":{},\"cypher\":{},\"sql\":{},\"datalog\":{}}}",
            self.bytes[0], self.bytes[1], self.bytes[2], self.bytes[3], self.bytes[4]
        );
        out.push(',');
        push_key(out, "seconds");
        let _ = write!(out, "{:.6}", self.seconds);
        out.push(',');
        push_key(out, "diversity");
        write_diversity_json(&self.diversity, out);
        out.push('}');
    }
}

impl EvalRunSummary {
    /// Serializes the deterministic evaluation fields. The stage's wall
    /// time is intentionally absent: the `eval` JSON object is a pure
    /// function of the plan and seed (see the struct docs).
    fn write_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "engines");
        push_str(out, &self.engines);
        out.push(',');
        push_key(out, "budget_ms");
        let _ = write!(out, "{}", self.budget_ms);
        out.push(',');
        push_key(out, "max_tuples");
        let _ = write!(out, "{}", self.max_tuples);
        out.push(',');
        push_key(out, "plan");
        out.push_str(if self.plan { "true" } else { "false" });
        out.push(',');
        push_key(out, "cache");
        match &self.cache {
            Some(c) => {
                let _ = write!(
                    out,
                    "{{\"enabled\":true,\"budget_mb\":{},\"entries\":{},\"tuples\":{},\
                     \"fills\":{},\"hits\":{},\"misses\":{},\"rejected\":{}}}",
                    c.budget_mb, c.entries, c.tuples, c.fills, c.hits, c.misses, c.rejected
                );
            }
            None => out.push_str("{\"enabled\":false}"),
        }
        out.push(',');
        push_key(out, "queries");
        let _ = write!(out, "{}", self.queries);
        out.push(',');
        push_key(out, "cells");
        let _ = write!(out, "{}", self.cells);
        out.push(',');
        push_key(out, "outcomes");
        let _ = write!(
            out,
            "{{\"ok\":{},\"timeout\":{},\"too_large\":{},\"unsupported\":{},\"error\":{}}}",
            self.ok, self.timeout, self.too_large, self.unsupported, self.internal
        );
        out.push(',');
        push_key(out, "rows");
        out.push('[');
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"query\":{},\"engine\":\"{}\",\"outcome\":",
                row.query, row.engine
            );
            push_str(out, &row.outcome);
            out.push_str(",\"count\":");
            match row.count {
                Some(n) => {
                    let _ = write!(out, "{n}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"estimate\":");
            match row.estimate {
                Some(n) => {
                    let _ = write!(out, "{n}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push(']');
        out.push('}');
    }
}

fn write_diversity_json(d: &DiversitySummary, out: &mut String) {
    out.push('{');
    push_key(out, "total");
    let _ = write!(out, "{}", d.total);
    out.push(',');
    push_key(out, "recursive");
    let _ = write!(out, "{}", d.recursive);
    out.push(',');
    push_key(out, "by_shape");
    out.push('{');
    for (i, (shape, n)) in d.by_shape.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, &shape.to_string());
        out.push(':');
        let _ = write!(out, "{n}");
    }
    out.push('}');
    out.push(',');
    push_key(out, "by_class");
    out.push('{');
    for (i, (class, n)) in d.by_class.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, &class.to_string());
        out.push(':');
        let _ = write!(out, "{n}");
    }
    out.push('}');
    out.push(',');
    push_key(out, "by_arity");
    out.push('{');
    for (i, (arity, n)) in d.by_arity.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, &arity.to_string());
        out.push(':');
        let _ = write!(out, "{n}");
    }
    out.push('}');
    out.push(',');
    push_key(out, "max_rules");
    let _ = write!(out, "{}", d.max_rules);
    out.push(',');
    push_key(out, "max_conjuncts");
    let _ = write!(out, "{}", d.max_conjuncts);
    out.push(',');
    push_key(out, "max_disjuncts");
    let _ = write!(out, "{}", d.max_disjuncts);
    out.push(',');
    push_key(out, "max_path_length");
    let _ = write!(out, "{}", d.max_path_length);
    out.push('}');
}

/// Appends `"key":` to `out`.
fn push_key(out: &mut String, key: &str) {
    push_str(out, key);
    out.push(':');
}

/// Appends a JSON string literal (RFC 8259 escaping).
fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            config: Some(PathBuf::from("bib.xml")),
            seed: 42,
            threads: 2,
            streamed: false,
            consistency: vec!["something \"quoted\"".to_owned()],
            graph: Some(GraphRunSummary {
                nodes_requested: 100,
                nodes_realized: 120,
                edges_written: 300,
                edges_generated: 310,
                constraints: vec![ConstraintReport {
                    src_slots: 10,
                    trg_slots: 20,
                    edges: 10,
                }],
                seconds: 0.25,
            }),
            store: Some(StoreRunSummary {
                bytes: 65_536,
                page_size: 8192,
                edges: 300,
                seconds: 0.05,
            }),
            workload: Some(WorkloadRunSummary {
                seed: 42,
                produced: 12,
                unsatisfied_selectivity: 0,
                relaxations: 3,
                cypher_star_concat: 1,
                cypher_star_inverse: 2,
                bytes: [10, 20, 30, 40, 50],
                diversity: DiversitySummary::default(),
                seconds: 0.1,
            }),
            eval: Some(EvalRunSummary {
                engines: "PGSD".to_owned(),
                budget_ms: 10_000,
                max_tuples: 1_000_000,
                plan: true,
                cache: Some(gmark_engines::EvalCacheStats {
                    budget_mb: 64,
                    entries: 5,
                    tuples: 1000,
                    bytes: 8000,
                    hits: 9,
                    misses: 3,
                    rejected: 1,
                    fills: 4,
                }),
                queries: 2,
                cells: 8,
                ok: 7,
                timeout: 1,
                too_large: 0,
                unsupported: 0,
                internal: 0,
                rows: vec![
                    EvalCellRow {
                        query: 0,
                        engine: 'P',
                        outcome: "ok".to_owned(),
                        count: Some(12),
                        estimate: Some(10),
                    },
                    EvalCellRow {
                        query: 0,
                        engine: 'G',
                        outcome: "timeout".to_owned(),
                        count: None,
                        estimate: Some(10),
                    },
                ],
                seconds: 0.5,
            }),
        }
    }

    #[test]
    fn report_keeps_the_historical_anchor_lines() {
        let rep = sample().render_report();
        assert!(rep.contains("gMark generation report"), "{rep}");
        assert!(rep.contains("seed: 42"), "{rep}");
        assert!(
            rep.contains("edges: 300 written (310 generated before dedup)"),
            "{rep}"
        );
        assert!(
            rep.contains("cypher degradations: 1 concatenation-under-star"),
            "{rep}"
        );

        let mut skipped = sample();
        skipped.graph = None;
        assert!(
            skipped
                .render_report()
                .contains("graph: skipped (--queries-only)"),
            "queries-only anchor line lost"
        );
    }

    #[test]
    fn json_is_escaped_and_balanced() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"seed\":42"), "{json}");
        assert!(json.contains("\"produced\":12"), "{json}");
        assert!(json.contains("\"plan\":true"), "{json}");
        assert!(json.contains("\"estimate\":10"), "{json}");
        assert!(json.contains("something \\\"quoted\\\""), "{json}");
        // Balanced braces/brackets (cheap structural sanity; full parsing
        // is covered by the CLI integration test via python -m json.tool
        // in CI).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "{json}");
    }

    #[test]
    fn skipped_halves_serialize_as_null() {
        let mut s = sample();
        s.graph = None;
        s.store = None;
        s.workload = None;
        s.eval = None;
        let json = s.to_json();
        assert!(json.contains("\"graph\":null"), "{json}");
        assert!(json.contains("\"store\":null"), "{json}");
        assert!(json.contains("\"workload\":null"), "{json}");
        assert!(json.contains("\"eval\":null"), "{json}");
    }

    #[test]
    fn store_slice_serializes_and_reports() {
        let json = sample().to_json();
        assert!(
            json.contains("\"store\":{\"bytes\":65536,\"page_size\":8192,\"edges\":300"),
            "{json}"
        );
        let rep = sample().render_report();
        assert!(
            rep.contains("store: 300 edges, 65536 bytes (page size 8192)"),
            "{rep}"
        );
        let banner = sample().to_string();
        assert!(banner.contains("graph.gstore"), "{banner}");
    }

    #[test]
    fn cache_stats_serialize_after_plan() {
        let json = sample().to_json();
        assert!(
            json.contains(
                "\"plan\":true,\"cache\":{\"enabled\":true,\"budget_mb\":64,\
                 \"entries\":5,\"tuples\":1000,\"fills\":4,\"hits\":9,\"misses\":3,\
                 \"rejected\":1}"
            ),
            "{json}"
        );
        let mut off = sample();
        off.eval.as_mut().unwrap().cache = None;
        assert!(
            off.to_json().contains("\"cache\":{\"enabled\":false}"),
            "{}",
            off.to_json()
        );
    }

    #[test]
    fn eval_json_is_deterministic_no_seconds() {
        let json = sample().to_json();
        let eval = &json[json.find("\"eval\"").unwrap()..];
        assert!(eval.contains("\"engines\":\"PGSD\""), "{eval}");
        assert!(
            eval.contains("\"outcome\":\"timeout\",\"count\":null"),
            "{eval}"
        );
        assert!(eval.contains("\"count\":12"), "{eval}");
        assert!(
            !eval.contains("seconds"),
            "eval JSON must not carry wall-clock content: {eval}"
        );
        // The report keeps the timing (it is not byte-compared).
        let rep = sample().render_report();
        assert!(rep.contains("evaluation: 2 queries x 4 engines"), "{rep}");
        assert!(rep.contains("1 timeout"), "{rep}");
    }
}
