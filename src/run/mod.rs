//! The unified pipeline API: one typed plan, one entry point, one error
//! type, one summary.
//!
//! The paper's Fig. 1 workflow is a single pipeline — schema → graph
//! instance → query workload → concrete syntaxes — and this module exposes
//! it as one:
//!
//! ```text
//! RunPlan (what)  +  RunOptions (how)  +  Sink (where)
//!          └────────────── run() ──────────────┘
//!                          │
//!                      RunSummary
//! ```
//!
//! * [`RunPlan`] — scenario schema, node count, workload specification,
//!   output selection, and optionally an [`EvalSpec`] that closes the
//!   Section 7 loop: the generated workload is *evaluated* against the
//!   generated graph across the in-repo engines (the CLI's `--eval`);
//! * [`RunOptions`] — seed, threads, streaming (collapsing the three
//!   per-crate option structs); `threads` drives graph constraints,
//!   workload queries, **and** the (engine × query) evaluation matrix;
//! * [`Sink`] — where artifact bytes go: [`DirSink`] (the CLI's file
//!   layout), [`MemorySink`] (tests/embedding), [`NullSink`]
//!   (benchmarks), or your own implementation;
//! * [`GmarkError`] — every failure of the pipeline behind one type;
//! * [`RunSummary`] — what happened, serializable to JSON.
//!
//! [`run`] streams artifacts through a sink without materializing them;
//! [`run_in_memory`] instead returns the built [`Graph`] and [`Workload`]
//! values for direct use (evaluation engines, experiments).
//!
//! # Determinism
//!
//! Every byte produced through this API is a pure function of the plan
//! and the seed: thread count, streaming mode, and sink choice never
//! change workload bytes, and within one graph serialization mode the
//! graph bytes are identical at every thread count — **including one**
//! (this API routes single-threaded default-mode runs through the same
//! ordered-merge path as parallel runs, closing the historical wart where
//! `--threads 1` wrote the same edge set with different bytes). Streamed
//! and non-streamed graph output remain distinct serializations of the
//! same data: generation order with duplicates vs. sorted and
//! deduplicated.
//!
//! The evaluation stage keeps the same contract: cells are reassembled in
//! ascending `(query, engine)` order and neither the `eval.txt` artifact
//! nor the `eval` object of `summary.json` carries wall-clock content, so
//! both are byte-identical at every thread count whenever cell outcomes
//! don't race the per-cell time budget (no limit, a generous one, or an
//! expired one). Stage timing lives in `report.txt` and the CLI banner
//! instead.
//!
//! # Example
//!
//! ```
//! use gmark::run::{run, MemorySink, Artifact, RunOptions, RunPlan};
//! use gmark::prelude::WorkloadConfig;
//!
//! let plan = RunPlan::builder(gmark::core::usecases::bib())
//!     .nodes(500)
//!     .workload(WorkloadConfig::new(3))
//!     .build()?;
//! let mut sink = MemorySink::new();
//! let summary = run(&plan, &RunOptions::with_seed(7), &mut sink)?;
//! assert!(summary.graph.as_ref().unwrap().edges_written > 0);
//! assert!(!sink.bytes(Artifact::Sparql).unwrap().is_empty());
//! # Ok::<(), gmark::run::GmarkError>(())
//! ```

mod error;
mod options;
mod plan;
mod sink;
mod summary;

pub use error::GmarkError;
pub use options::RunOptions;
pub use plan::{EvalSpec, OutputSelection, RunPlan, RunPlanBuilder};
pub use sink::{Artifact, DirSink, MemorySink, NullSink, Sink};
pub use summary::{
    EvalCellRow, EvalRunSummary, GraphRunSummary, RunSummary, StoreRunSummary, WorkloadRunSummary,
};

use gmark_core::gen::{generate_graph, generate_streamed, generate_streamed_spooled};
use gmark_core::workload::{generate_workload_with_threads, Workload, WorkloadConfig};
use gmark_engines::{
    evaluate_matrix_with_schema, CellOutcome, EvalContext, EvalReport, MatrixOptions,
};
use gmark_store::{
    build_store_from_spool, EdgeSink as _, EdgeSpool, Graph, GraphView, NTriplesWriter, StoreError,
    StoreMeta, StoreReader, StoreWriter, TypePartition, DEFAULT_PAGE_SIZE,
};
use gmark_translate::{stream_workload, write_workload, WorkloadOutputs};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Executes a plan, streaming every artifact through the sink.
///
/// The graph is written as N-Triples (memory-bounded when
/// [`RunOptions::stream`] is set, materialized-then-serialized otherwise);
/// the workload streams through the parallel per-query shard pipeline.
/// Returns the [`RunSummary`] after [`Sink::finish`] has run.
pub fn run<S: Sink + ?Sized>(
    plan: &RunPlan,
    opts: &RunOptions,
    sink: &mut S,
) -> Result<RunSummary, GmarkError> {
    plan.validate()?;
    if plan.eval.is_some() && opts.stream && !plan.outputs.store && plan.from_store.is_none() {
        return Err(GmarkError::Plan(
            "evaluation of a streamed run needs the on-disk store: add --store to \
             evaluate through the paged store, or drop --stream for the in-memory \
             engines"
                .to_owned(),
        ));
    }
    let consistency = consistency_findings(plan);
    let gen_opts = opts.generator_options();
    let threads = gen_opts.effective_threads();
    let scratch = scratch_dir(opts, sink);

    let mut graph_summary = None;
    let mut store_summary = None;
    // The materialized graph, kept past serialization when an evaluation
    // stage will need it.
    let mut kept_graph: Option<Graph> = None;
    // Where this run's store file lives, and whether it is a scratch
    // temporary (sinks without real files get the bytes copied in after
    // the evaluation stage is done paging through the scratch copy).
    let mut store_file: Option<(PathBuf, bool)> = None;
    if plan.outputs.graph || plan.outputs.store {
        let mut out: Box<dyn std::io::Write + Send> = if plan.outputs.graph {
            sink.open(Artifact::Graph)
                .map_err(|e| GmarkError::io("opening graph.nt", e))?
        } else {
            // A store-only run executes the same generator — the store is
            // just another serialization of the same edge stream — but
            // renders no N-Triples artifact.
            Box::new(std::io::sink())
        };
        let start = Instant::now();
        let (report, written) = if opts.stream {
            let stream_opts = opts.stream_options(scratch.clone());
            if plan.outputs.store {
                // The beyond-RAM path: tee every generated edge into
                // per-constraint spool files while streaming N-Triples,
                // then assemble the paged store from the spools. The CSR
                // canonicalization (sort + dedup per predicate) makes the
                // store bytes identical to a materialized build at every
                // thread count.
                let spool = EdgeSpool::create(&scratch, plan.graph.schema.constraints().len())
                    .map_err(|e| GmarkError::io("creating store spool", e))?;
                let generated = generate_streamed_spooled(
                    &plan.graph,
                    &gen_opts,
                    &stream_opts,
                    &mut out,
                    &spool,
                )
                .map_err(|e| GmarkError::io("streaming graph.nt", e))?;
                let store_start = Instant::now();
                let target = store_target(sink, &scratch);
                let preds: Vec<usize> = plan
                    .graph
                    .schema
                    .constraints()
                    .iter()
                    .map(|c| c.predicate.0)
                    .collect();
                let info =
                    build_store_from_spool(&target.0, &store_meta(plan, opts), &spool, &preds)?;
                store_summary = Some(StoreRunSummary {
                    bytes: info.bytes,
                    page_size: info.page_size,
                    edges: info.edges,
                    seconds: store_start.elapsed().as_secs_f64(),
                });
                store_file = Some(target);
                generated
            } else {
                generate_streamed(&plan.graph, &gen_opts, &stream_opts, &mut out)
                    .map_err(|e| GmarkError::io("streaming graph.nt", e))?
            }
        } else {
            // The ordered-merge path at *every* thread count: materialize
            // (deterministic constraint-order shard merge), then serialize
            // the built graph — sorted, deduplicated, byte-identical for
            // T = 1, 2, 8, ….
            let (graph, report) = generate_graph(&plan.graph, &gen_opts);
            let written = if plan.outputs.graph {
                let mut writer = NTriplesWriter::with_base(
                    &mut out,
                    plan.graph.schema.predicate_names(),
                    &opts.base_iri,
                );
                for pred in 0..graph.predicate_count() {
                    for (src, trg) in graph.edges(pred) {
                        writer.edge(src, pred, trg);
                    }
                }
                writer
                    .finish()
                    .map_err(|e| GmarkError::io("writing graph.nt", e))?
            } else {
                0
            };
            if plan.outputs.store {
                let store_start = Instant::now();
                let target = store_target(sink, &scratch);
                let info = StoreWriter::write_graph(&target.0, &store_meta(plan, opts), &graph)?;
                store_summary = Some(StoreRunSummary {
                    bytes: info.bytes,
                    page_size: info.page_size,
                    edges: info.edges,
                    seconds: store_start.elapsed().as_secs_f64(),
                });
                store_file = Some(target);
            }
            if plan.eval.is_some() {
                kept_graph = Some(graph);
            }
            (report, written)
        };
        out.flush()
            .map_err(|e| GmarkError::io("flushing graph.nt", e))?;
        graph_summary = Some(GraphRunSummary {
            nodes_requested: plan.graph.n,
            nodes_realized: plan.graph.realized_nodes(),
            edges_written: written,
            edges_generated: report.total_edges,
            constraints: report.constraints,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let mut workload_summary = None;
    // The materialized workload, kept for the evaluation stage.
    let mut kept_workload: Option<Workload> = None;
    if plan.outputs.workload {
        let wcfg = effective_workload_config(plan, opts);
        let mut open = |artifact| {
            sink.open(artifact)
                .map_err(|e| GmarkError::io(format!("opening {artifact}"), e))
        };
        let mut outs = WorkloadOutputs {
            rules: open(Artifact::Rules)?,
            sparql: open(Artifact::Sparql)?,
            cypher: open(Artifact::Cypher)?,
            sql: open(Artifact::Sql)?,
            datalog: open(Artifact::Datalog)?,
        };
        let start = Instant::now();
        let (report, bytes, diversity) = if plan.eval.is_some() {
            // Evaluation needs the materialized queries anyway: generate
            // once (parallel), render the documents from the materialized
            // workload — byte-identical to the streamed path, which
            // funnels through the same per-query renderer.
            let (w, report) =
                generate_workload_with_threads(&plan.graph.schema, &wcfg, opts.threads)?;
            let bytes = write_workload(&plan.graph.schema, &w.queries, &mut outs)?;
            let diversity = w.diversity();
            kept_workload = Some(w);
            (report, bytes, diversity)
        } else {
            let stream_opts = opts.workload_stream_options(scratch);
            let s = stream_workload(&plan.graph.schema, &wcfg, &stream_opts, &mut outs)?;
            (s.report, s.bytes, s.diversity)
        };
        workload_summary = Some(WorkloadRunSummary {
            seed: wcfg.seed,
            produced: report.produced,
            unsatisfied_selectivity: report.unsatisfied_selectivity,
            relaxations: report.relaxations,
            cypher_star_concat: report.cypher.star_concat,
            cypher_star_inverse: report.cypher.star_inverse,
            bytes,
            diversity,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let mut eval_summary = None;
    if let Some(spec) = &plan.eval {
        let workload = kept_workload
            .take()
            .expect("validated: eval runs imply a workload");
        // The engines page through a store whenever no materialized graph
        // exists: either the one this run just built (streamed --store)
        // or the one the plan points at (--from-store).
        let reader = match (&kept_graph, &plan.from_store, &store_file) {
            (Some(_), _, _) => None,
            (None, Some(path), _) => Some(open_checked_store(path, plan)?),
            (None, None, Some((path, _))) => Some(StoreReader::open(path)?),
            (None, None, None) => unreachable!("validated: eval implies a graph source"),
        };
        let view = match (&kept_graph, &reader) {
            (Some(g), _) => GraphView::from(g),
            (None, Some(r)) => GraphView::from(r),
            (None, None) => unreachable!(),
        };
        let start = Instant::now();
        let report = evaluate_stage(spec, &plan.graph.schema, view, &workload, opts.threads);
        let rendered = render_eval_report(plan, spec, view, &workload, &report);
        let mut out = sink
            .open(Artifact::EvalReport)
            .map_err(|e| GmarkError::io("opening eval.txt", e))?;
        out.write_all(rendered.as_bytes())
            .map_err(|e| GmarkError::io("writing eval.txt", e))?;
        out.flush()
            .map_err(|e| GmarkError::io("flushing eval.txt", e))?;
        eval_summary = Some(eval_run_summary(
            spec,
            &report,
            start.elapsed().as_secs_f64(),
        ));
    }

    // Sinks without real files receive the finished store bytes now that
    // the evaluation stage is done paging through the scratch copy.
    if let Some((path, true)) = &store_file {
        let mut out = sink
            .open(Artifact::Store)
            .map_err(|e| GmarkError::io("opening graph.gstore", e))?;
        let mut file =
            File::open(path).map_err(|e| GmarkError::io("reading the scratch store", e))?;
        std::io::copy(&mut file, &mut out)
            .map_err(|e| GmarkError::io("writing graph.gstore", e))?;
        out.flush()
            .map_err(|e| GmarkError::io("flushing graph.gstore", e))?;
        let _ = std::fs::remove_file(path);
    }

    let summary = RunSummary {
        config: plan.source.clone(),
        seed: opts.graph_seed(),
        threads,
        streamed: opts.stream && (plan.outputs.graph || plan.outputs.store),
        consistency,
        graph: graph_summary,
        store: store_summary,
        workload: workload_summary,
        eval: eval_summary,
    };
    sink.finish(&summary)
        .map_err(|e| GmarkError::io("finishing outputs", e))?;
    Ok(summary)
}

/// The materialized artifacts of [`run_in_memory`].
#[derive(Debug)]
pub struct RunArtifacts {
    /// The built graph instance, when the plan produced one.
    pub graph: Option<Graph>,
    /// The generated workload, when the plan produced one.
    pub workload: Option<Workload>,
    /// The full evaluation matrix (cells with measured wall times), when
    /// the plan had an [`EvalSpec`]. The deterministic digest also lands
    /// in [`RunSummary::eval`].
    pub eval: Option<EvalReport>,
    /// The run summary (per-constraint reports, workload counters,
    /// diversity; document byte counts are zero — nothing was rendered).
    pub summary: RunSummary,
}

/// Executes a plan in memory, returning the built [`Graph`] and
/// [`Workload`] values instead of serialized artifacts.
///
/// This is the embedding entry point: evaluation engines, experiments,
/// and tests want the graph itself, not its N-Triples. Generation is
/// bit-identical to [`run`]'s — same seeds, same RNG streams, any thread
/// count — only the serialization step is skipped.
pub fn run_in_memory(plan: &RunPlan, opts: &RunOptions) -> Result<RunArtifacts, GmarkError> {
    plan.validate()?;
    if plan.outputs.store || plan.from_store.is_some() {
        return Err(GmarkError::Plan(
            "the in-memory API does not handle on-disk stores (store output / \
             from_store): use run() with a sink"
                .to_owned(),
        ));
    }
    let consistency = consistency_findings(plan);
    let gen_opts = opts.generator_options();
    let threads = gen_opts.effective_threads();

    let mut graph = None;
    let mut graph_summary = None;
    if plan.outputs.graph {
        let start = Instant::now();
        let (g, report) = generate_graph(&plan.graph, &gen_opts);
        graph_summary = Some(GraphRunSummary {
            nodes_requested: plan.graph.n,
            nodes_realized: plan.graph.realized_nodes(),
            edges_written: g.edge_count() as u64,
            edges_generated: report.total_edges,
            constraints: report.constraints,
            seconds: start.elapsed().as_secs_f64(),
        });
        graph = Some(g);
    }

    let mut workload = None;
    let mut workload_summary = None;
    if plan.outputs.workload {
        let wcfg = effective_workload_config(plan, opts);
        let start = Instant::now();
        let (w, report) = generate_workload_with_threads(&plan.graph.schema, &wcfg, opts.threads)?;
        workload_summary = Some(WorkloadRunSummary {
            seed: wcfg.seed,
            produced: report.produced,
            unsatisfied_selectivity: report.unsatisfied_selectivity,
            relaxations: report.relaxations,
            cypher_star_concat: report.cypher.star_concat,
            cypher_star_inverse: report.cypher.star_inverse,
            bytes: [0; 5],
            diversity: w.diversity(),
            seconds: start.elapsed().as_secs_f64(),
        });
        workload = Some(w);
    }

    let mut eval = None;
    let mut eval_summary = None;
    if let Some(spec) = &plan.eval {
        let g = graph
            .as_ref()
            .expect("validated: eval runs imply a materialized graph");
        let w = workload
            .as_ref()
            .expect("validated: eval runs imply a workload");
        let start = Instant::now();
        let report = evaluate_stage(
            spec,
            &plan.graph.schema,
            GraphView::from(g),
            w,
            opts.threads,
        );
        eval_summary = Some(eval_run_summary(
            spec,
            &report,
            start.elapsed().as_secs_f64(),
        ));
        eval = Some(report);
    }

    Ok(RunArtifacts {
        graph,
        workload,
        eval,
        summary: RunSummary {
            config: plan.source.clone(),
            seed: opts.graph_seed(),
            threads,
            streamed: false,
            consistency,
            graph: graph_summary,
            store: None,
            workload: workload_summary,
            eval: eval_summary,
        },
    })
}

/// The workload configuration after applying the run options' seed
/// override — shared by the document-streaming, in-memory, and evaluation
/// stages so they always describe the same queries.
fn effective_workload_config(plan: &RunPlan, opts: &RunOptions) -> WorkloadConfig {
    let mut wcfg = plan.workload.clone().expect("validated: workload present");
    if let Some(seed) = opts.seed {
        wcfg.seed = seed;
    }
    wcfg
}

/// The store header metadata for one plan + option set: everything a
/// [`StoreReader`] needs to validate and serve the file without the
/// generating configuration. A pure function of `(config, seed)` — the
/// reason store bytes are reproducible across pipelines and thread
/// counts.
fn store_meta(plan: &RunPlan, opts: &RunOptions) -> StoreMeta {
    StoreMeta {
        seed: opts.graph_seed(),
        schema_hash: plan.graph.schema.schema_hash(),
        page_size: DEFAULT_PAGE_SIZE,
        predicate_names: plan.graph.schema.predicate_names(),
        partition: TypePartition::from_counts(&plan.graph.node_counts()),
    }
}

/// Resolves where this run's store file is written: the sink's real path
/// when it offers one ([`Sink::local_path`]), else a uniquely named
/// scratch temporary whose bytes are copied into the sink once the run no
/// longer needs the file. The flag is "temporary".
fn store_target<S: Sink + ?Sized>(sink: &S, scratch: &Path) -> (PathBuf, bool) {
    match sink.local_path(Artifact::Store) {
        Some(path) => (path, false),
        None => {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            (
                scratch.join(format!(".gmark-store-{}-{n}.tmp", std::process::id())),
                true,
            )
        }
    }
}

/// Opens an existing store for `from_store`, refusing one generated from
/// a different schema before any engine touches it.
fn open_checked_store(path: &Path, plan: &RunPlan) -> Result<StoreReader, GmarkError> {
    let reader = StoreReader::open(path)?;
    let expected = plan.graph.schema.schema_hash();
    if reader.schema_hash() != expected {
        return Err(StoreError::SchemaMismatch {
            path: path.to_path_buf(),
            expected,
            found: reader.schema_hash(),
        }
        .into());
    }
    Ok(reader)
}

/// Runs the evaluation matrix for a plan's [`EvalSpec`]: one shared
/// [`EvalContext`] over the graph view — in-memory CSR or paged store,
/// the engines cannot tell — every (query × engine) cell through the
/// parallel harness. Rendering is separate ([`render_eval_report`]) so
/// the in-memory path pays nothing for text it would discard.
fn evaluate_stage(
    spec: &EvalSpec,
    schema: &gmark_core::schema::Schema,
    view: GraphView<'_>,
    workload: &Workload,
    threads: usize,
) -> EvalReport {
    let ctx = EvalContext::new(view);
    let queries: Vec<&gmark_core::query::Query> =
        workload.queries.iter().map(|gq| &gq.query).collect();
    evaluate_matrix_with_schema(
        &ctx,
        Some(schema),
        &queries,
        &spec.engines,
        &spec.cell_budget(),
        &MatrixOptions {
            threads,
            warm_runs: 0,
            plan: spec.plan,
            cache_mb: if spec.cache { spec.cache_mb } else { 0 },
        },
    )
}

/// Renders the deterministic `eval.txt` artifact: a header (config,
/// graph shape, engines, budget), the (query × engine) outcome matrix
/// with per-query workload metadata, and the outcome totals. Every byte
/// is a pure function of the plan and seed — thread count never changes
/// it.
fn render_eval_report(
    plan: &RunPlan,
    spec: &EvalSpec,
    view: GraphView<'_>,
    workload: &Workload,
    report: &EvalReport,
) -> String {
    let mut rendered = String::new();
    let _ = writeln!(rendered, "gMark evaluation report");
    match &plan.source {
        Some(path) => {
            let _ = writeln!(rendered, "config: {}", path.display());
        }
        None => {
            let _ = writeln!(rendered, "config: (programmatic plan)");
        }
    }
    let _ = writeln!(
        rendered,
        "graph: {} nodes, {} edges",
        view.node_count(),
        view.edge_count()
    );
    let engine_names: Vec<&str> = spec.engines.iter().map(|k| k.name()).collect();
    let _ = writeln!(rendered, "engines: {}", engine_names.join(" "));
    let _ = writeln!(
        rendered,
        "budget: {} per cell, max {} tuples",
        if spec.budget_ms == 0 {
            "unlimited time".to_owned()
        } else {
            format!("{} ms", spec.budget_ms)
        },
        spec.max_tuples
    );
    let _ = writeln!(
        rendered,
        "planner: {}",
        if spec.plan { "on" } else { "off" }
    );
    match &report.cache {
        Some(stats) => {
            let _ = writeln!(
                rendered,
                "cache: on ({} MiB budget, {} entries, {} tuples, \
                 {} fills, {} hits / {} misses, {} rejected)",
                stats.budget_mb,
                stats.entries,
                stats.tuples,
                stats.fills,
                stats.hits,
                stats.misses,
                stats.rejected
            );
        }
        None => {
            let _ = writeln!(rendered, "cache: off");
        }
    }
    let labels: Vec<String> = workload.queries.iter().map(|gq| gq.eval_label()).collect();
    rendered.push_str(&report.render_with_labels(&labels));
    rendered
}

/// Digests an [`EvalReport`] into the summary's deterministic rows plus
/// the stage wall time (report/banner only).
fn eval_run_summary(spec: &EvalSpec, report: &EvalReport, seconds: f64) -> EvalRunSummary {
    let totals = report.totals();
    let rows = report
        .cells
        .iter()
        .map(|cell| EvalCellRow {
            query: cell.query,
            engine: cell.engine.letter(),
            outcome: match &cell.outcome {
                CellOutcome::Answers { .. } => "ok".to_owned(),
                CellOutcome::Failed(e) => match e {
                    gmark_engines::EvalError::Timeout => "timeout".to_owned(),
                    gmark_engines::EvalError::TooLarge(_) => "too-large".to_owned(),
                    gmark_engines::EvalError::Unsupported(_) => "unsupported".to_owned(),
                    gmark_engines::EvalError::Internal(_) => "error".to_owned(),
                },
            },
            count: match &cell.outcome {
                CellOutcome::Answers { count, .. } => Some(*count),
                CellOutcome::Failed(_) => None,
            },
            estimate: cell.estimate,
        })
        .collect();
    EvalRunSummary {
        engines: spec.letters(),
        budget_ms: spec.budget_ms,
        max_tuples: spec.max_tuples,
        plan: spec.plan,
        cache: report.cache,
        queries: report.queries,
        cells: report.cells.len(),
        ok: totals.ok,
        timeout: totals.timeout,
        too_large: totals.too_large,
        unsupported: totals.unsupported,
        internal: totals.internal,
        rows,
        seconds,
    }
}

/// The Section 4 consistency check, rendered for the report (never fatal).
fn consistency_findings(plan: &RunPlan) -> Vec<String> {
    plan.graph
        .validate()
        .iter()
        .map(|issue| format!("{issue:?}"))
        .collect()
}

/// Scratch-directory resolution: explicit override, else the sink's
/// preference, else the system temp dir.
fn scratch_dir<S: Sink + ?Sized>(opts: &RunOptions, sink: &S) -> PathBuf {
    opts.scratch_dir
        .clone()
        .or_else(|| sink.scratch_dir())
        .unwrap_or_else(std::env::temp_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::usecases;
    use gmark_core::workload::WorkloadConfig;

    fn plan() -> RunPlan {
        RunPlan::builder(usecases::bib())
            .nodes(600)
            .workload(WorkloadConfig::new(5))
            .build()
            .unwrap()
    }

    #[test]
    fn default_mode_graph_bytes_are_identical_at_every_thread_count_including_one() {
        let plan = plan();
        let baseline = {
            let mut sink = MemorySink::new();
            run(&plan, &RunOptions::with_seed(11).threads(1), &mut sink).unwrap();
            sink.bytes(Artifact::Graph).unwrap()
        };
        assert!(!baseline.is_empty());
        for threads in [2usize, 8] {
            let mut sink = MemorySink::new();
            run(
                &plan,
                &RunOptions::with_seed(11).threads(threads),
                &mut sink,
            )
            .unwrap();
            assert_eq!(
                sink.bytes(Artifact::Graph).unwrap(),
                baseline,
                "graph bytes differ between 1 and {threads} threads"
            );
        }
    }

    #[test]
    fn run_reports_match_what_the_sink_received() {
        let mut sink = MemorySink::new();
        let summary = run(&plan(), &RunOptions::with_seed(3), &mut sink).unwrap();
        let g = summary.graph.as_ref().unwrap();
        let graph_lines = sink.bytes(Artifact::Graph).unwrap();
        assert_eq!(
            g.edges_written,
            graph_lines.iter().filter(|&&b| b == b'\n').count() as u64
        );
        let w = summary.workload.as_ref().unwrap();
        assert_eq!(w.produced, 5);
        for (artifact, &bytes) in Artifact::WORKLOAD.iter().zip(&w.bytes) {
            assert_eq!(
                sink.bytes(*artifact).unwrap().len() as u64,
                bytes,
                "{artifact} byte count"
            );
        }
        assert!(sink.summary().is_some(), "finish must store the summary");
        assert!(!sink.bytes(Artifact::Report).unwrap().is_empty());
    }

    #[test]
    fn in_memory_run_matches_streamed_edge_counts() {
        let plan = plan();
        let opts = RunOptions::with_seed(5).threads(2);
        let mem = run_in_memory(&plan, &opts).unwrap();
        let mut sink = MemorySink::new();
        let streamed = run(&plan, &opts, &mut sink).unwrap();
        assert_eq!(
            mem.summary.graph.as_ref().unwrap().edges_generated,
            streamed.graph.as_ref().unwrap().edges_generated
        );
        assert_eq!(
            mem.summary.workload.as_ref().unwrap().produced,
            streamed.workload.as_ref().unwrap().produced
        );
        assert!(mem.graph.unwrap().edge_count() > 0);
        assert_eq!(mem.workload.unwrap().queries.len(), 5);
    }

    #[test]
    fn eval_stage_writes_report_and_summary_rows() {
        let plan = RunPlan::builder(usecases::bib())
            .nodes(300)
            .workload(WorkloadConfig::new(3))
            .eval(EvalSpec {
                budget_ms: 0, // deterministic regime
                max_tuples: 200_000,
                ..EvalSpec::default()
            })
            .build()
            .unwrap();
        let mut sink = MemorySink::new();
        let summary = run(&plan, &RunOptions::with_seed(7), &mut sink).unwrap();
        let eval = summary.eval.as_ref().expect("eval stage ran");
        assert_eq!(eval.queries, 3);
        assert_eq!(eval.cells, 12);
        assert_eq!(eval.rows.len(), 12);
        assert_eq!(
            eval.ok + eval.timeout + eval.too_large + eval.unsupported + eval.internal,
            12
        );
        let text = String::from_utf8(sink.bytes(Artifact::EvalReport).unwrap()).unwrap();
        assert!(text.starts_with("gMark evaluation report"), "{text}");
        assert!(text.contains("engines: P/relational"), "{text}");
        assert!(text.contains("class="), "per-query metadata: {text}");
        // In-memory runs produce the same deterministic digest.
        let arts = run_in_memory(&plan, &RunOptions::with_seed(7)).unwrap();
        let mem_eval = arts.summary.eval.as_ref().unwrap();
        assert_eq!(mem_eval.rows, eval.rows);
        assert_eq!(arts.eval.as_ref().unwrap().cells.len(), 12);
    }

    #[test]
    fn eval_rejects_the_streamed_pipeline_without_a_store() {
        let plan = RunPlan::builder(usecases::bib())
            .nodes(200)
            .workload(WorkloadConfig::new(2))
            .eval(EvalSpec::default())
            .build()
            .unwrap();
        let err = run(
            &plan,
            &RunOptions::with_seed(1).stream(true),
            &mut MemorySink::new(),
        )
        .unwrap_err();
        match err {
            GmarkError::Plan(msg) => {
                assert!(
                    msg.contains("--store"),
                    "should point at the store path: {msg}"
                )
            }
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn store_bytes_are_identical_across_thread_counts_and_pipelines() {
        let plan = RunPlan::builder(usecases::bib())
            .nodes(400)
            .store()
            .build()
            .unwrap();
        // Materialized T=1 is the baseline…
        let baseline = {
            let mut sink = MemorySink::new();
            let summary = run(&plan, &RunOptions::with_seed(11).threads(1), &mut sink).unwrap();
            let s = summary.store.as_ref().expect("store summary present");
            let bytes = sink.bytes(Artifact::Store).unwrap();
            assert_eq!(bytes.len() as u64, s.bytes);
            assert!(s.edges > 0);
            bytes
        };
        // …and the streamed (spooled) pipeline must reproduce it byte for
        // byte at every thread count, as must a parallel materialized run.
        for threads in [1usize, 2, 8] {
            let mut sink = MemorySink::new();
            run(
                &plan,
                &RunOptions::with_seed(11).threads(threads).stream(true),
                &mut sink,
            )
            .unwrap();
            assert_eq!(
                sink.bytes(Artifact::Store).unwrap(),
                baseline,
                "streamed store bytes differ at {threads} threads"
            );
        }
        let mut sink = MemorySink::new();
        run(&plan, &RunOptions::with_seed(11).threads(4), &mut sink).unwrap();
        assert_eq!(sink.bytes(Artifact::Store).unwrap(), baseline);
    }

    /// The `"eval":…` suffix of `summary.json` — the byte-compared object
    /// (it is the last key, so the suffix is well-defined).
    fn eval_json(sink: &MemorySink) -> String {
        let json = String::from_utf8(sink.bytes(Artifact::Summary).unwrap()).unwrap();
        let start = json.find("\"eval\":").unwrap();
        json[start..].to_owned()
    }

    #[test]
    fn paged_evaluation_is_byte_identical_to_in_memory() {
        let spec = EvalSpec {
            budget_ms: 0, // deterministic regime
            max_tuples: 200_000,
            ..EvalSpec::default()
        };
        let in_memory_plan = RunPlan::builder(usecases::bib())
            .nodes(300)
            .workload(WorkloadConfig::new(3))
            .eval(spec.clone())
            .build()
            .unwrap();
        let (baseline_eval, baseline_json) = {
            let mut sink = MemorySink::new();
            run(&in_memory_plan, &RunOptions::with_seed(7), &mut sink).unwrap();
            (sink.bytes(Artifact::EvalReport).unwrap(), eval_json(&sink))
        };
        // Streamed + store: the engines page through the store file and
        // must produce the same eval.txt and `eval` summary object.
        let paged_plan = RunPlan::builder(usecases::bib())
            .nodes(300)
            .workload(WorkloadConfig::new(3))
            .store()
            .eval(spec)
            .build()
            .unwrap();
        for threads in [1usize, 2, 8] {
            let mut sink = MemorySink::new();
            let summary = run(
                &paged_plan,
                &RunOptions::with_seed(7).threads(threads).stream(true),
                &mut sink,
            )
            .unwrap();
            assert!(summary.store.is_some());
            assert_eq!(
                sink.bytes(Artifact::EvalReport).unwrap(),
                baseline_eval,
                "paged eval.txt differs at {threads} threads"
            );
            assert_eq!(
                eval_json(&sink),
                baseline_json,
                "paged eval summary differs at {threads} threads"
            );
        }
    }

    #[test]
    fn from_store_reproduces_the_in_memory_eval_report() {
        let spec = EvalSpec {
            budget_ms: 0,
            max_tuples: 200_000,
            ..EvalSpec::default()
        };
        // Build a store on disk with a DirSink (the in-place write path).
        let dir =
            std::env::temp_dir().join(format!("gmark-from-store-test-{}", std::process::id()));
        let store_plan = RunPlan::builder(usecases::bib())
            .nodes(300)
            .store()
            .build()
            .unwrap();
        let mut dir_sink = DirSink::new(&dir).unwrap();
        run(&store_plan, &RunOptions::with_seed(7), &mut dir_sink).unwrap();
        let store_path = dir.join("graph.gstore");
        assert!(store_path.exists(), "DirSink writes the store in place");

        let baseline = {
            let plan = RunPlan::builder(usecases::bib())
                .nodes(300)
                .workload(WorkloadConfig::new(3))
                .eval(spec.clone())
                .build()
                .unwrap();
            let mut sink = MemorySink::new();
            run(&plan, &RunOptions::with_seed(7), &mut sink).unwrap();
            sink.bytes(Artifact::EvalReport).unwrap()
        };
        let plan = RunPlan::builder(usecases::bib())
            .nodes(300)
            .workload(WorkloadConfig::new(3))
            .eval(spec.clone())
            .from_store(&store_path)
            .build()
            .unwrap();
        let mut sink = MemorySink::new();
        let summary = run(&plan, &RunOptions::with_seed(7), &mut sink).unwrap();
        assert!(summary.graph.is_none(), "no graph was generated");
        assert!(summary.store.is_none(), "no store was written");
        assert_eq!(sink.bytes(Artifact::EvalReport).unwrap(), baseline);

        // A store from a different schema is refused before any engine
        // runs.
        let mismatched = RunPlan::builder(usecases::lsn())
            .nodes(300)
            .workload(WorkloadConfig::new(3))
            .eval(spec)
            .from_store(&store_path)
            .build()
            .unwrap();
        let err = run(
            &mismatched,
            &RunOptions::with_seed(7),
            &mut MemorySink::new(),
        )
        .unwrap_err();
        assert!(matches!(err, GmarkError::Store(_)), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_and_default_modes_write_the_same_edge_multiset_size() {
        let plan = RunPlan::builder(usecases::bib())
            .nodes(400)
            .build()
            .unwrap();
        let mut a = MemorySink::new();
        let sa = run(&plan, &RunOptions::with_seed(9), &mut a).unwrap();
        let mut b = MemorySink::new();
        let sb = run(&plan, &RunOptions::with_seed(9).stream(true), &mut b).unwrap();
        assert_eq!(
            sa.graph.as_ref().unwrap().edges_generated,
            sb.graph.as_ref().unwrap().edges_generated
        );
        assert!(sb.streamed && !sa.streamed);
        // Streamed keeps duplicates, default dedups: written counts may
        // differ, but never exceed generated.
        assert!(
            sa.graph.as_ref().unwrap().edges_written <= sb.graph.as_ref().unwrap().edges_written
        );
    }
}
