//! The unified pipeline API: one typed plan, one entry point, one error
//! type, one summary.
//!
//! The paper's Fig. 1 workflow is a single pipeline — schema → graph
//! instance → query workload → concrete syntaxes — and this module exposes
//! it as one:
//!
//! ```text
//! RunPlan (what)  +  RunOptions (how)  +  Sink (where)
//!          └────────────── run() ──────────────┘
//!                          │
//!                      RunSummary
//! ```
//!
//! * [`RunPlan`] — scenario schema, node count, workload specification,
//!   output selection; built [from XML](RunPlan::from_config_file) or
//!   [programmatically](RunPlan::builder);
//! * [`RunOptions`] — seed, threads, streaming (collapsing the three
//!   per-crate option structs);
//! * [`Sink`] — where artifact bytes go: [`DirSink`] (the CLI's file
//!   layout), [`MemorySink`] (tests/embedding), [`NullSink`]
//!   (benchmarks), or your own implementation;
//! * [`GmarkError`] — every failure of the pipeline behind one type;
//! * [`RunSummary`] — what happened, serializable to JSON.
//!
//! [`run`] streams artifacts through a sink without materializing them;
//! [`run_in_memory`] instead returns the built [`Graph`] and [`Workload`]
//! values for direct use (evaluation engines, experiments).
//!
//! # Determinism
//!
//! Every byte produced through this API is a pure function of the plan
//! and the seed: thread count, streaming mode, and sink choice never
//! change workload bytes, and within one graph serialization mode the
//! graph bytes are identical at every thread count — **including one**
//! (this API routes single-threaded default-mode runs through the same
//! ordered-merge path as parallel runs, closing the historical wart where
//! `--threads 1` wrote the same edge set with different bytes). Streamed
//! and non-streamed graph output remain distinct serializations of the
//! same data: generation order with duplicates vs. sorted and
//! deduplicated.
//!
//! # Example
//!
//! ```
//! use gmark::run::{run, MemorySink, Artifact, RunOptions, RunPlan};
//! use gmark::prelude::WorkloadConfig;
//!
//! let plan = RunPlan::builder(gmark::core::usecases::bib())
//!     .nodes(500)
//!     .workload(WorkloadConfig::new(3))
//!     .build()?;
//! let mut sink = MemorySink::new();
//! let summary = run(&plan, &RunOptions::with_seed(7), &mut sink)?;
//! assert!(summary.graph.as_ref().unwrap().edges_written > 0);
//! assert!(!sink.bytes(Artifact::Sparql).unwrap().is_empty());
//! # Ok::<(), gmark::run::GmarkError>(())
//! ```

mod error;
mod options;
mod plan;
mod sink;
mod summary;

pub use error::GmarkError;
pub use options::RunOptions;
pub use plan::{OutputSelection, RunPlan, RunPlanBuilder};
pub use sink::{Artifact, DirSink, MemorySink, NullSink, Sink};
pub use summary::{GraphRunSummary, RunSummary, WorkloadRunSummary};

use gmark_core::gen::{generate_graph, generate_streamed};
use gmark_core::workload::{generate_workload_with_threads, Workload};
use gmark_store::{EdgeSink as _, Graph, NTriplesWriter};
use gmark_translate::{stream_workload, WorkloadOutputs};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Executes a plan, streaming every artifact through the sink.
///
/// The graph is written as N-Triples (memory-bounded when
/// [`RunOptions::stream`] is set, materialized-then-serialized otherwise);
/// the workload streams through the parallel per-query shard pipeline.
/// Returns the [`RunSummary`] after [`Sink::finish`] has run.
pub fn run<S: Sink + ?Sized>(
    plan: &RunPlan,
    opts: &RunOptions,
    sink: &mut S,
) -> Result<RunSummary, GmarkError> {
    plan.validate()?;
    let consistency = consistency_findings(plan);
    let gen_opts = opts.generator_options();
    let threads = gen_opts.effective_threads();
    let scratch = scratch_dir(opts, sink);

    let mut graph_summary = None;
    if plan.outputs.graph {
        let mut out = sink
            .open(Artifact::Graph)
            .map_err(|e| GmarkError::io("opening graph.nt", e))?;
        let start = Instant::now();
        let (report, written) = if opts.stream {
            let stream_opts = opts.stream_options(scratch.clone());
            generate_streamed(&plan.graph, &gen_opts, &stream_opts, &mut out)
                .map_err(|e| GmarkError::io("streaming graph.nt", e))?
        } else {
            // The ordered-merge path at *every* thread count: materialize
            // (deterministic constraint-order shard merge), then serialize
            // the built graph — sorted, deduplicated, byte-identical for
            // T = 1, 2, 8, ….
            let (graph, report) = generate_graph(&plan.graph, &gen_opts);
            let mut writer = NTriplesWriter::with_base(
                &mut out,
                plan.graph.schema.predicate_names(),
                &opts.base_iri,
            );
            for pred in 0..graph.predicate_count() {
                for (src, trg) in graph.edges(pred) {
                    writer.edge(src, pred, trg);
                }
            }
            let written = writer
                .finish()
                .map_err(|e| GmarkError::io("writing graph.nt", e))?;
            (report, written)
        };
        out.flush()
            .map_err(|e| GmarkError::io("flushing graph.nt", e))?;
        graph_summary = Some(GraphRunSummary {
            nodes_requested: plan.graph.n,
            nodes_realized: plan.graph.realized_nodes(),
            edges_written: written,
            edges_generated: report.total_edges,
            constraints: report.constraints,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let mut workload_summary = None;
    if plan.outputs.workload {
        let mut wcfg = plan.workload.clone().expect("validated: workload present");
        if let Some(seed) = opts.seed {
            wcfg.seed = seed;
        }
        let mut open = |artifact| {
            sink.open(artifact)
                .map_err(|e| GmarkError::io(format!("opening {artifact}"), e))
        };
        let mut outs = WorkloadOutputs {
            rules: open(Artifact::Rules)?,
            sparql: open(Artifact::Sparql)?,
            cypher: open(Artifact::Cypher)?,
            sql: open(Artifact::Sql)?,
            datalog: open(Artifact::Datalog)?,
        };
        let stream_opts = opts.workload_stream_options(scratch);
        let start = Instant::now();
        let s = stream_workload(&plan.graph.schema, &wcfg, &stream_opts, &mut outs)?;
        workload_summary = Some(WorkloadRunSummary {
            seed: wcfg.seed,
            produced: s.report.produced,
            unsatisfied_selectivity: s.report.unsatisfied_selectivity,
            relaxations: s.report.relaxations,
            cypher_star_concat: s.report.cypher.star_concat,
            cypher_star_inverse: s.report.cypher.star_inverse,
            bytes: s.bytes,
            diversity: s.diversity,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let summary = RunSummary {
        config: plan.source.clone(),
        seed: opts.graph_seed(),
        threads,
        streamed: opts.stream && plan.outputs.graph,
        consistency,
        graph: graph_summary,
        workload: workload_summary,
    };
    sink.finish(&summary)
        .map_err(|e| GmarkError::io("finishing outputs", e))?;
    Ok(summary)
}

/// The materialized artifacts of [`run_in_memory`].
#[derive(Debug)]
pub struct RunArtifacts {
    /// The built graph instance, when the plan produced one.
    pub graph: Option<Graph>,
    /// The generated workload, when the plan produced one.
    pub workload: Option<Workload>,
    /// The run summary (per-constraint reports, workload counters,
    /// diversity; document byte counts are zero — nothing was rendered).
    pub summary: RunSummary,
}

/// Executes a plan in memory, returning the built [`Graph`] and
/// [`Workload`] values instead of serialized artifacts.
///
/// This is the embedding entry point: evaluation engines, experiments,
/// and tests want the graph itself, not its N-Triples. Generation is
/// bit-identical to [`run`]'s — same seeds, same RNG streams, any thread
/// count — only the serialization step is skipped.
pub fn run_in_memory(plan: &RunPlan, opts: &RunOptions) -> Result<RunArtifacts, GmarkError> {
    plan.validate()?;
    let consistency = consistency_findings(plan);
    let gen_opts = opts.generator_options();
    let threads = gen_opts.effective_threads();

    let mut graph = None;
    let mut graph_summary = None;
    if plan.outputs.graph {
        let start = Instant::now();
        let (g, report) = generate_graph(&plan.graph, &gen_opts);
        graph_summary = Some(GraphRunSummary {
            nodes_requested: plan.graph.n,
            nodes_realized: plan.graph.realized_nodes(),
            edges_written: g.edge_count() as u64,
            edges_generated: report.total_edges,
            constraints: report.constraints,
            seconds: start.elapsed().as_secs_f64(),
        });
        graph = Some(g);
    }

    let mut workload = None;
    let mut workload_summary = None;
    if plan.outputs.workload {
        let mut wcfg = plan.workload.clone().expect("validated: workload present");
        if let Some(seed) = opts.seed {
            wcfg.seed = seed;
        }
        let start = Instant::now();
        let (w, report) = generate_workload_with_threads(&plan.graph.schema, &wcfg, opts.threads)?;
        workload_summary = Some(WorkloadRunSummary {
            seed: wcfg.seed,
            produced: report.produced,
            unsatisfied_selectivity: report.unsatisfied_selectivity,
            relaxations: report.relaxations,
            cypher_star_concat: report.cypher.star_concat,
            cypher_star_inverse: report.cypher.star_inverse,
            bytes: [0; 5],
            diversity: w.diversity(),
            seconds: start.elapsed().as_secs_f64(),
        });
        workload = Some(w);
    }

    Ok(RunArtifacts {
        graph,
        workload,
        summary: RunSummary {
            config: plan.source.clone(),
            seed: opts.graph_seed(),
            threads,
            streamed: false,
            consistency,
            graph: graph_summary,
            workload: workload_summary,
        },
    })
}

/// The Section 4 consistency check, rendered for the report (never fatal).
fn consistency_findings(plan: &RunPlan) -> Vec<String> {
    plan.graph
        .validate()
        .iter()
        .map(|issue| format!("{issue:?}"))
        .collect()
}

/// Scratch-directory resolution: explicit override, else the sink's
/// preference, else the system temp dir.
fn scratch_dir<S: Sink + ?Sized>(opts: &RunOptions, sink: &S) -> PathBuf {
    opts.scratch_dir
        .clone()
        .or_else(|| sink.scratch_dir())
        .unwrap_or_else(std::env::temp_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::usecases;
    use gmark_core::workload::WorkloadConfig;

    fn plan() -> RunPlan {
        RunPlan::builder(usecases::bib())
            .nodes(600)
            .workload(WorkloadConfig::new(5))
            .build()
            .unwrap()
    }

    #[test]
    fn default_mode_graph_bytes_are_identical_at_every_thread_count_including_one() {
        let plan = plan();
        let baseline = {
            let mut sink = MemorySink::new();
            run(&plan, &RunOptions::with_seed(11).threads(1), &mut sink).unwrap();
            sink.bytes(Artifact::Graph).unwrap()
        };
        assert!(!baseline.is_empty());
        for threads in [2usize, 8] {
            let mut sink = MemorySink::new();
            run(
                &plan,
                &RunOptions::with_seed(11).threads(threads),
                &mut sink,
            )
            .unwrap();
            assert_eq!(
                sink.bytes(Artifact::Graph).unwrap(),
                baseline,
                "graph bytes differ between 1 and {threads} threads"
            );
        }
    }

    #[test]
    fn run_reports_match_what_the_sink_received() {
        let mut sink = MemorySink::new();
        let summary = run(&plan(), &RunOptions::with_seed(3), &mut sink).unwrap();
        let g = summary.graph.as_ref().unwrap();
        let graph_lines = sink.bytes(Artifact::Graph).unwrap();
        assert_eq!(
            g.edges_written,
            graph_lines.iter().filter(|&&b| b == b'\n').count() as u64
        );
        let w = summary.workload.as_ref().unwrap();
        assert_eq!(w.produced, 5);
        for (artifact, &bytes) in Artifact::WORKLOAD.iter().zip(&w.bytes) {
            assert_eq!(
                sink.bytes(*artifact).unwrap().len() as u64,
                bytes,
                "{artifact} byte count"
            );
        }
        assert!(sink.summary().is_some(), "finish must store the summary");
        assert!(!sink.bytes(Artifact::Report).unwrap().is_empty());
    }

    #[test]
    fn in_memory_run_matches_streamed_edge_counts() {
        let plan = plan();
        let opts = RunOptions::with_seed(5).threads(2);
        let mem = run_in_memory(&plan, &opts).unwrap();
        let mut sink = MemorySink::new();
        let streamed = run(&plan, &opts, &mut sink).unwrap();
        assert_eq!(
            mem.summary.graph.as_ref().unwrap().edges_generated,
            streamed.graph.as_ref().unwrap().edges_generated
        );
        assert_eq!(
            mem.summary.workload.as_ref().unwrap().produced,
            streamed.workload.as_ref().unwrap().produced
        );
        assert!(mem.graph.unwrap().edge_count() > 0);
        assert_eq!(mem.workload.unwrap().queries.len(), 5);
    }

    #[test]
    fn streamed_and_default_modes_write_the_same_edge_multiset_size() {
        let plan = RunPlan::builder(usecases::bib())
            .nodes(400)
            .build()
            .unwrap();
        let mut a = MemorySink::new();
        let sa = run(&plan, &RunOptions::with_seed(9), &mut a).unwrap();
        let mut b = MemorySink::new();
        let sb = run(&plan, &RunOptions::with_seed(9).stream(true), &mut b).unwrap();
        assert_eq!(
            sa.graph.as_ref().unwrap().edges_generated,
            sb.graph.as_ref().unwrap().edges_generated
        );
        assert!(sb.streamed && !sa.streamed);
        // Streamed keeps duplicates, default dedups: written counts may
        // differ, but never exceed generated.
        assert!(
            sa.graph.as_ref().unwrap().edges_written <= sb.graph.as_ref().unwrap().edges_written
        );
    }
}
