//! The one error type of the unified pipeline.
//!
//! PRs 1–3 left the workspace with four unrelated error enums
//! ([`ConfigError`], [`WorkloadError`], [`TranslateError`], [`EvalError`])
//! plus raw [`std::io::Error`]s, and every caller — the CLI first among
//! them — stitched them together with ad-hoc `format!` strings.
//! [`GmarkError`] wraps them all behind one `Display`/`Error` surface with
//! enough context (paths, query indices, what was being written) that the
//! CLI can print any failure verbatim.

use gmark_config::ConfigError;
use gmark_core::workload::WorkloadError;
use gmark_engines::EvalError;
use gmark_store::StoreError;
use gmark_translate::{TranslateError, WorkloadStreamError};
use std::io;
use std::path::PathBuf;

/// Any failure of the gMark pipeline — configuration, planning, query
/// generation, translation, evaluation, or I/O.
///
/// Hand-rolled in the `thiserror` style (no derive macros are available
/// offline): every variant implements `Display` with its context and
/// exposes the wrapped error through [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum GmarkError {
    /// Reading or interpreting a configuration document failed.
    Config {
        /// The file the document came from, when it came from one.
        path: Option<PathBuf>,
        /// The underlying configuration error.
        source: ConfigError,
    },
    /// The [`RunPlan`](crate::run::RunPlan) is internally inconsistent
    /// (e.g. workload output requested without a workload configuration).
    Plan(String),
    /// Generating a workload query failed (carries the failing index).
    Workload(WorkloadError),
    /// Translating query `index` into a concrete syntax failed.
    Translate {
        /// The failing query's index.
        index: usize,
        /// The underlying translation error.
        source: TranslateError,
    },
    /// Evaluating a query on an engine failed or exceeded its budget.
    Eval(EvalError),
    /// Writing, opening, or verifying an on-disk paged graph store failed
    /// (see [`gmark_store::StoreError`] — corruption names the bad page).
    Store(StoreError),
    /// An I/O operation failed.
    Io {
        /// What was being read or written (a path or an artifact name).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl GmarkError {
    /// Wraps an I/O error with a description of what was being accessed.
    pub fn io(context: impl Into<String>, source: io::Error) -> GmarkError {
        GmarkError::Io {
            context: context.into(),
            source,
        }
    }

    /// Wraps a configuration error with the file it came from.
    pub fn config_in(path: impl Into<PathBuf>, source: ConfigError) -> GmarkError {
        GmarkError::Config {
            path: Some(path.into()),
            source,
        }
    }
}

impl std::fmt::Display for GmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GmarkError::Config {
                path: Some(p),
                source,
            } => {
                write!(f, "configuration {}: {source}", p.display())
            }
            GmarkError::Config { path: None, source } => {
                write!(f, "configuration: {source}")
            }
            GmarkError::Plan(what) => write!(f, "invalid plan: {what}"),
            GmarkError::Workload(e) => write!(f, "workload: {e}"),
            GmarkError::Translate { index, source } => {
                write!(f, "translating query {index}: {source}")
            }
            GmarkError::Eval(e) => write!(f, "evaluation: {e}"),
            GmarkError::Store(e) => write!(f, "store: {e}"),
            GmarkError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for GmarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GmarkError::Config { source, .. } => Some(source),
            GmarkError::Plan(_) => None,
            GmarkError::Workload(e) => Some(e),
            GmarkError::Translate { source, .. } => Some(source),
            GmarkError::Eval(e) => Some(e),
            GmarkError::Store(e) => Some(e),
            GmarkError::Io { source, .. } => Some(source),
        }
    }
}

impl From<ConfigError> for GmarkError {
    fn from(source: ConfigError) -> Self {
        GmarkError::Config { path: None, source }
    }
}

impl From<WorkloadError> for GmarkError {
    fn from(e: WorkloadError) -> Self {
        GmarkError::Workload(e)
    }
}

impl From<EvalError> for GmarkError {
    fn from(e: EvalError) -> Self {
        GmarkError::Eval(e)
    }
}

impl From<StoreError> for GmarkError {
    fn from(e: StoreError) -> Self {
        GmarkError::Store(e)
    }
}

impl From<io::Error> for GmarkError {
    fn from(source: io::Error) -> Self {
        GmarkError::Io {
            context: "I/O".to_owned(),
            source,
        }
    }
}

impl From<WorkloadStreamError> for GmarkError {
    fn from(e: WorkloadStreamError) -> Self {
        match e {
            WorkloadStreamError::Generate(w) => GmarkError::Workload(w),
            WorkloadStreamError::Translate { index, source } => {
                GmarkError::Translate { index, source }
            }
            WorkloadStreamError::Io(source) => GmarkError::Io {
                context: "writing workload".to_owned(),
                source,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_carries_context() {
        let e = GmarkError::io("writing graph.nt", io::Error::other("disk full"));
        assert_eq!(e.to_string(), "writing graph.nt: disk full");
        let e = GmarkError::Plan("workload output requested without a workload".into());
        assert!(e.to_string().starts_with("invalid plan:"));
    }

    #[test]
    fn sources_are_exposed() {
        let e: GmarkError = io::Error::other("nope").into();
        assert!(e.source().is_some());
        let e = GmarkError::Plan("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn stream_errors_map_variant_for_variant() {
        let e: GmarkError = WorkloadStreamError::Io(io::Error::other("x")).into();
        assert!(matches!(e, GmarkError::Io { .. }));
        let e: GmarkError = WorkloadStreamError::Translate {
            index: 7,
            source: TranslateError::UnboundHeadVar { var: 1 },
        }
        .into();
        match e {
            GmarkError::Translate { index, .. } => assert_eq!(index, 7),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
