//! Output destinations for a pipeline run.
//!
//! Everything a run produces — the graph's N-Triples, the five workload
//! documents, the human-readable report, the machine-readable summary — is
//! an [`Artifact`]. A [`Sink`] decides where artifact bytes go:
//!
//! * [`DirSink`] — the gMark CLI's on-disk layout (`graph.nt`,
//!   `workload.txt`, `workload.sparql` …, `report.txt`, and optionally
//!   `summary.json`);
//! * [`MemorySink`] — in-memory buffers, for tests and embedding;
//! * [`NullSink`] — discards everything (benchmarks that measure
//!   generation, not the output device);
//! * anything else — implement [`Sink`] over your own writers (a socket, a
//!   compressor, an object store).

use super::summary::RunSummary;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One output of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Artifact {
    /// The graph instance as N-Triples (`graph.nt`).
    Graph,
    /// The graph instance as an on-disk paged store (`graph.gstore`):
    /// the binary CSR format the evaluation engines can page through
    /// without materializing the graph (see [`gmark_store::StoreReader`]).
    Store,
    /// The workload in the paper's rule notation (`workload.txt`).
    Rules,
    /// The workload as SPARQL 1.1 (`workload.sparql`).
    Sparql,
    /// The workload as openCypher (`workload.cypher`).
    Cypher,
    /// The workload as SQL:1999 (`workload.sql`).
    Sql,
    /// The workload as Datalog (`workload.datalog`).
    Datalog,
    /// The deterministic evaluation report of the `--eval` stage
    /// (`eval.txt`): the (query × engine) outcome matrix with answer-set
    /// cardinalities — byte-identical at every thread count.
    EvalReport,
    /// The human-readable generation report (`report.txt`).
    Report,
    /// The machine-readable run summary (`summary.json`).
    Summary,
}

impl Artifact {
    /// The five workload documents, in document order (rule notation first,
    /// then the four concrete syntaxes in the paper's Fig. 1 order).
    pub const WORKLOAD: [Artifact; 5] = [
        Artifact::Rules,
        Artifact::Sparql,
        Artifact::Cypher,
        Artifact::Sql,
        Artifact::Datalog,
    ];

    /// Every artifact, in [`DirSink`] layout order.
    pub const ALL: [Artifact; 10] = [
        Artifact::Graph,
        Artifact::Store,
        Artifact::Rules,
        Artifact::Sparql,
        Artifact::Cypher,
        Artifact::Sql,
        Artifact::Datalog,
        Artifact::EvalReport,
        Artifact::Report,
        Artifact::Summary,
    ];

    /// The conventional file name of this artifact (what [`DirSink`] and
    /// the CLI write).
    pub fn file_name(self) -> &'static str {
        match self {
            Artifact::Graph => "graph.nt",
            Artifact::Store => "graph.gstore",
            Artifact::Rules => "workload.txt",
            Artifact::Sparql => "workload.sparql",
            Artifact::Cypher => "workload.cypher",
            Artifact::Sql => "workload.sql",
            Artifact::Datalog => "workload.datalog",
            Artifact::EvalReport => "eval.txt",
            Artifact::Report => "report.txt",
            Artifact::Summary => "summary.json",
        }
    }

    /// The inverse of [`Artifact::file_name`]: resolves a conventional
    /// file name (`"graph.nt"`, `"eval.txt"`, …) back to its artifact.
    /// This is how `gmark serve` maps a client's `?artifact=` selector
    /// onto the CLI's on-disk vocabulary.
    pub fn from_file_name(name: &str) -> Option<Artifact> {
        Artifact::ALL.into_iter().find(|a| a.file_name() == name)
    }
}

impl std::fmt::Display for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.file_name())
    }
}

/// Where a pipeline run's artifacts go.
///
/// [`run`](crate::run::run) opens each artifact it produces exactly once,
/// writes it to completion, and finally calls [`Sink::finish`] with the
/// [`RunSummary`] — which is where [`DirSink`] renders `report.txt` and
/// `summary.json`. Writers are owned (`Box<dyn Write + Send>`), so a sink
/// backed by shared buffers hands out handles into them (see
/// [`MemorySink`]).
pub trait Sink {
    /// Opens the writer for one artifact. Called at most once per artifact
    /// per run; [`Artifact::Report`] and [`Artifact::Summary`] are never
    /// opened by the pipeline itself — they are rendered in
    /// [`Sink::finish`] by sinks that want them.
    fn open(&mut self, artifact: Artifact) -> io::Result<Box<dyn Write + Send>>;

    /// A directory on the same filesystem as the final outputs, for the
    /// pipeline's temporary shard files. `None` (the default) falls back
    /// to [`std::env::temp_dir`].
    fn scratch_dir(&self) -> Option<PathBuf> {
        None
    }

    /// A stable on-disk path for one artifact, when the sink can offer
    /// one. The paged store ([`Artifact::Store`]) is written with
    /// positioned file I/O and read back by the evaluation stage, so the
    /// pipeline writes it directly to this path when available; sinks
    /// without real files (memory, null) return `None` (the default) and
    /// receive the finished bytes through [`Sink::open`] instead.
    fn local_path(&self, artifact: Artifact) -> Option<PathBuf> {
        let _ = artifact;
        None
    }

    /// Called once, after every artifact is written, with the run summary.
    /// The default does nothing.
    fn finish(&mut self, summary: &RunSummary) -> io::Result<()> {
        let _ = summary;
        Ok(())
    }
}

/// The gMark CLI's on-disk layout: one file per artifact inside a
/// directory (created if missing). [`Sink::finish`] writes `report.txt`
/// always and `summary.json` when [`DirSink::with_summary_json`] enabled
/// it.
#[derive(Debug)]
pub struct DirSink {
    dir: PathBuf,
    summary_json: bool,
}

impl DirSink {
    /// Creates the sink, creating `dir` (and parents) if missing.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<DirSink> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| annotate(e, "creating output directory", &dir))?;
        Ok(DirSink {
            dir,
            summary_json: false,
        })
    }

    /// Also write the machine-readable `summary.json` on
    /// [`Sink::finish`] (what the CLI's `--format json` enables).
    pub fn with_summary_json(mut self, yes: bool) -> DirSink {
        self.summary_json = yes;
        self
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn create(&self, artifact: Artifact) -> io::Result<BufWriter<File>> {
        let path = self.dir.join(artifact.file_name());
        let file = File::create(&path).map_err(|e| annotate(e, "creating", &path))?;
        Ok(BufWriter::new(file))
    }
}

impl Sink for DirSink {
    fn open(&mut self, artifact: Artifact) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.create(artifact)?))
    }

    /// The output directory itself: shard files land on the same
    /// filesystem, so the final concatenation is a sequential same-device
    /// copy.
    fn scratch_dir(&self) -> Option<PathBuf> {
        Some(self.dir.clone())
    }

    /// Every artifact has a real file here — the store is written in
    /// place, never staged through scratch.
    fn local_path(&self, artifact: Artifact) -> Option<PathBuf> {
        Some(self.dir.join(artifact.file_name()))
    }

    fn finish(&mut self, summary: &RunSummary) -> io::Result<()> {
        let mut report = self.create(Artifact::Report)?;
        report.write_all(summary.render_report().as_bytes())?;
        report.flush()?;
        if self.summary_json {
            let mut json = self.create(Artifact::Summary)?;
            json.write_all(summary.to_json().as_bytes())?;
            json.write_all(b"\n")?;
            json.flush()?;
        }
        Ok(())
    }
}

fn annotate(e: io::Error, what: &str, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{what} {}: {e}", path.display()))
}

/// An in-memory sink: every artifact accumulates in its own buffer,
/// retrievable afterwards with [`MemorySink::bytes`]. The workhorse of the
/// plan-equivalence and determinism tests, and the natural sink when
/// embedding gMark in another program.
///
/// [`Sink::finish`] renders `report.txt` and `summary.json` into their
/// buffers too, and keeps the [`RunSummary`] itself
/// ([`MemorySink::summary`]).
#[derive(Debug, Default)]
pub struct MemorySink {
    bufs: BTreeMap<Artifact, Arc<Mutex<Vec<u8>>>>,
    summary: Option<RunSummary>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The bytes written for one artifact, or `None` if the run never
    /// opened it.
    pub fn bytes(&self, artifact: Artifact) -> Option<Vec<u8>> {
        self.bufs.get(&artifact).map(|b| {
            b.lock()
                .expect("no panics while holding buffer lock")
                .clone()
        })
    }

    /// The summary of the finished run, if [`Sink::finish`] has been
    /// called.
    pub fn summary(&self) -> Option<&RunSummary> {
        self.summary.as_ref()
    }

    /// Every artifact the run wrote, with its bytes, in [`Artifact`]
    /// order. This is how `gmark serve` lifts one finished run into an
    /// immutable cacheable snapshot.
    pub fn into_artifacts(self) -> Vec<(Artifact, Vec<u8>)> {
        self.bufs
            .into_iter()
            .map(|(artifact, buf)| {
                let bytes = match Arc::try_unwrap(buf) {
                    Ok(m) => m.into_inner().expect("no panics while holding buffer lock"),
                    Err(shared) => shared
                        .lock()
                        .expect("no panics while holding buffer lock")
                        .clone(),
                };
                (artifact, bytes)
            })
            .collect()
    }

    fn buffer(&mut self, artifact: Artifact) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(self.bufs.entry(artifact).or_default())
    }
}

impl Sink for MemorySink {
    fn open(&mut self, artifact: Artifact) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(SharedBuf(self.buffer(artifact))))
    }

    fn finish(&mut self, summary: &RunSummary) -> io::Result<()> {
        self.buffer(Artifact::Report)
            .lock()
            .expect("no panics while holding buffer lock")
            .extend_from_slice(summary.render_report().as_bytes());
        let mut json = summary.to_json();
        json.push('\n');
        self.buffer(Artifact::Summary)
            .lock()
            .expect("no panics while holding buffer lock")
            .extend_from_slice(json.as_bytes());
        self.summary = Some(summary.clone());
        Ok(())
    }
}

/// A write handle appending into one of [`MemorySink`]'s shared buffers.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("no panics while holding buffer lock")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every artifact. For benchmarks that measure the pipeline, not
/// the output device.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn open(&mut self, _artifact: Artifact) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(io::sink()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_file_names_cover_the_cli_layout() {
        assert_eq!(Artifact::Graph.file_name(), "graph.nt");
        assert_eq!(Artifact::Store.file_name(), "graph.gstore");
        assert_eq!(Artifact::WORKLOAD.len(), 5);
        assert_eq!(Artifact::WORKLOAD[0].file_name(), "workload.txt");
        assert_eq!(Artifact::WORKLOAD[4].file_name(), "workload.datalog");
        assert_eq!(Artifact::EvalReport.file_name(), "eval.txt");
    }

    #[test]
    fn file_name_round_trips_through_from_file_name() {
        for artifact in Artifact::ALL {
            assert_eq!(
                Artifact::from_file_name(artifact.file_name()),
                Some(artifact)
            );
        }
        assert_eq!(Artifact::from_file_name("graph.ttl"), None);
        assert_eq!(Artifact::from_file_name(""), None);
    }

    #[test]
    fn memory_sink_accumulates_per_artifact() {
        let mut sink = MemorySink::new();
        {
            let mut w = sink.open(Artifact::Graph).unwrap();
            w.write_all(b"abc").unwrap();
        }
        {
            let mut w = sink.open(Artifact::Rules).unwrap();
            w.write_all(b"xyz").unwrap();
        }
        assert_eq!(sink.bytes(Artifact::Graph).unwrap(), b"abc");
        assert_eq!(sink.bytes(Artifact::Rules).unwrap(), b"xyz");
        assert_eq!(sink.bytes(Artifact::Sparql), None);
    }

    #[test]
    fn null_sink_swallows_everything() {
        let mut sink = NullSink;
        let mut w = sink.open(Artifact::Graph).unwrap();
        w.write_all(b"whatever").unwrap();
        w.flush().unwrap();
    }
}
