//! The typed plan: *what* one gMark run generates.
//!
//! A [`RunPlan`] is the Fig. 1 workflow as a value — scenario schema and
//! node count ([`GraphConfig`]), optional query-workload specification
//! ([`WorkloadConfig`]), and which outputs to produce. It is buildable two
//! equivalent ways:
//!
//! * **from XML** — [`RunPlan::from_xml`] / [`RunPlan::from_config_file`]
//!   parse the gMark configuration format;
//! * **programmatically** — [`RunPlan::builder`] with a fluent
//!   [`RunPlanBuilder`].
//!
//! Both roads produce bit-identical output through
//! [`run`](crate::run::run) when they describe the same scenario — pinned
//! by `tests/plan_equivalence.rs`.

use super::error::GmarkError;
use gmark_config::parse_config;
use gmark_core::schema::{GraphConfig, Schema};
use gmark_core::workload::WorkloadConfig;
use gmark_engines::{CellBudget, EngineKind};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Which artifacts a run produces. The report and summary are governed by
/// the [`Sink`](crate::run::Sink), not here — they always describe
/// whatever was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputSelection {
    /// Generate the graph instance ([`Artifact::Graph`](crate::run::Artifact)).
    pub graph: bool,
    /// Generate the query workload (the five
    /// [`Artifact::WORKLOAD`](crate::run::Artifact::WORKLOAD) documents).
    /// Requires the plan to carry a workload configuration.
    pub workload: bool,
    /// Also write the graph as an on-disk paged store
    /// ([`Artifact::Store`](crate::run::Artifact), the CLI's `--store`).
    /// Store bytes are a pure function of the configuration and seed —
    /// identical at every thread count and in both the materialized and
    /// streamed pipelines. Combined with streaming, this is the
    /// beyond-RAM path: the evaluation stage pages through the store
    /// instead of an in-memory graph.
    pub store: bool,
}

impl Default for OutputSelection {
    /// Everything a plan produces by default — the store is opt-in.
    fn default() -> Self {
        OutputSelection {
            graph: true,
            workload: true,
            store: false,
        }
    }
}

/// The Section 7 evaluation stage of a plan: which engines run the
/// generated workload against the generated graph, under what per-cell
/// resource budget. Present on a plan (via [`RunPlanBuilder::eval`] or the
/// CLI's `--eval`), it turns one run into the full
/// generate → translate → **evaluate** loop, producing
/// [`Artifact::EvalReport`](crate::run::Artifact) and the `eval` rows of
/// the [`RunSummary`](crate::run::RunSummary).
#[derive(Debug, Clone)]
pub struct EvalSpec {
    /// Engine columns, in report order (the CLI's `--engines P,G,S,D`).
    pub engines: Vec<EngineKind>,
    /// Wall-clock budget per (engine × query) cell in milliseconds; `0`
    /// disables the time limit entirely — the fully deterministic regime
    /// (cell outcomes then cannot depend on machine speed).
    pub budget_ms: u64,
    /// Maximum tuples any intermediate or final result may hold per cell.
    pub max_tuples: usize,
    /// Whether the schema-statistics planner orders every engine's joins
    /// (the default). The CLI's `--no-plan` clears it; answers never
    /// depend on this flag, only evaluation cost and the est~actual
    /// annotations in the report.
    pub plan: bool,
    /// Whether the cross-cell sub-expression result cache is filled
    /// during warm-up and consumed by the engines (the default). The
    /// CLI's `--no-eval-cache` clears it; cache contents are a pure
    /// function of graph and query set, so answers never depend on this
    /// flag.
    pub cache: bool,
    /// Admission byte budget of the sub-expression cache in MiB (the
    /// CLI's `--eval-cache-mb`). Must be positive; use
    /// [`EvalSpec::cache`] to disable caching.
    pub cache_mb: usize,
}

impl Default for EvalSpec {
    /// All four engines, a 10-second per-cell budget, the default
    /// laptop-scale tuple cap, and the planner enabled.
    fn default() -> Self {
        EvalSpec {
            engines: EngineKind::ALL.to_vec(),
            budget_ms: 10_000,
            max_tuples: 20_000_000,
            plan: true,
            cache: true,
            cache_mb: gmark_engines::MatrixOptions::DEFAULT_CACHE_MB,
        }
    }
}

impl EvalSpec {
    /// The engine letters in column order, e.g. `"PGSD"`.
    pub fn letters(&self) -> String {
        self.engines.iter().map(|k| k.letter()).collect()
    }

    /// The per-cell budget recipe the matrix harness starts each cell
    /// from.
    pub(crate) fn cell_budget(&self) -> CellBudget {
        CellBudget {
            timeout: (self.budget_ms > 0).then(|| Duration::from_millis(self.budget_ms)),
            max_tuples: self.max_tuples,
        }
    }
}

/// What to generate: scenario schema, node count, workload specification,
/// and output selection. Execution knobs (seed, threads, streaming) live
/// in [`RunOptions`](crate::run::RunOptions); destinations live in the
/// [`Sink`](crate::run::Sink).
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// The graph configuration `G = (n, S)`.
    pub graph: GraphConfig,
    /// The workload configuration `Q`, when queries are wanted.
    pub workload: Option<WorkloadConfig>,
    /// Which artifacts to produce.
    pub outputs: OutputSelection,
    /// The evaluation stage, when the workload should also be *run*
    /// against the graph (requires the workload output plus a graph
    /// source: the materialized graph, a store output, or
    /// [`RunPlan::from_store`]).
    pub eval: Option<EvalSpec>,
    /// Evaluate against an existing on-disk store (the CLI's
    /// `--from-store`) instead of generating a graph: the evaluation
    /// stage pages through this file via
    /// [`StoreReader`](gmark_store::StoreReader). Requires an [`EvalSpec`]
    /// and replaces graph generation (graph and store outputs must be
    /// off). The store's recorded schema hash must match the plan's
    /// schema.
    pub from_store: Option<PathBuf>,
    /// The configuration file this plan came from, when it came from one
    /// (recorded in the report).
    pub source: Option<PathBuf>,
}

impl RunPlan {
    /// A plan from an XML configuration document (see [`gmark_config`]).
    ///
    /// A document without a `<workload>` section yields a graph-only plan
    /// (no workload output requested), mirroring [`RunPlanBuilder::build`].
    pub fn from_xml(xml: &str) -> Result<RunPlan, GmarkError> {
        let parsed = parse_config(xml)?;
        Ok(RunPlan {
            outputs: OutputSelection {
                graph: true,
                workload: parsed.workload.is_some(),
                store: false,
            },
            graph: parsed.graph,
            workload: parsed.workload,
            eval: None,
            from_store: None,
            source: None,
        })
    }

    /// A plan from an XML configuration file.
    pub fn from_config_file(path: impl AsRef<Path>) -> Result<RunPlan, GmarkError> {
        let path = path.as_ref();
        let xml = std::fs::read_to_string(path)
            .map_err(|e| GmarkError::io(format!("reading {}", path.display()), e))?;
        let parsed = parse_config(&xml).map_err(|e| GmarkError::config_in(path, e))?;
        Ok(RunPlan {
            outputs: OutputSelection {
                graph: true,
                workload: parsed.workload.is_some(),
                store: false,
            },
            graph: parsed.graph,
            workload: parsed.workload,
            eval: None,
            from_store: None,
            source: Some(path.to_path_buf()),
        })
    }

    /// Starts a fluent builder over a scenario schema.
    pub fn builder(schema: Schema) -> RunPlanBuilder {
        RunPlanBuilder {
            nodes: 10_000,
            schema,
            workload: None,
            outputs: OutputSelection::default(),
            eval: None,
            from_store: None,
        }
    }

    /// Overrides the requested node count (the CLI's `--nodes`).
    pub fn with_nodes(mut self, n: u64) -> RunPlan {
        self.graph.n = n;
        self
    }

    /// Checks the plan for internal consistency; called by
    /// [`run`](crate::run::run) before any output is opened.
    pub fn validate(&self) -> Result<(), GmarkError> {
        if self.outputs.workload && self.workload.is_none() {
            return Err(GmarkError::Plan(
                "workload output requested but the plan has no workload \
                 configuration (no <workload> section)"
                    .to_owned(),
            ));
        }
        if self.from_store.is_some() {
            if self.outputs.graph || self.outputs.store {
                return Err(GmarkError::Plan(
                    "from_store replaces graph generation: disable the graph and \
                     store outputs when evaluating an existing store"
                        .to_owned(),
                ));
            }
            if self.eval.is_none() {
                return Err(GmarkError::Plan(
                    "from_store is only consumed by the evaluation stage (add --eval)".to_owned(),
                ));
            }
        }
        if !self.outputs.graph
            && !self.outputs.workload
            && !self.outputs.store
            && self.from_store.is_none()
        {
            return Err(GmarkError::Plan(
                "nothing to generate: graph, store, and workload outputs are all disabled"
                    .to_owned(),
            ));
        }
        if let Some(spec) = &self.eval {
            let has_graph_source =
                self.outputs.graph || self.outputs.store || self.from_store.is_some();
            if !has_graph_source || !self.outputs.workload {
                return Err(GmarkError::Plan(
                    "evaluation requires the workload plus a graph source: the \
                     materialized graph, an on-disk store output (--store), or an \
                     existing store (--from-store)"
                        .to_owned(),
                ));
            }
            if spec.engines.is_empty() {
                return Err(GmarkError::Plan(
                    "evaluation requested with an empty engine selection".to_owned(),
                ));
            }
            if spec.max_tuples == 0 {
                return Err(GmarkError::Plan(
                    "evaluation max_tuples must be positive (a zero cap fails every \
                     non-empty cell)"
                        .to_owned(),
                ));
            }
            if spec.cache_mb == 0 {
                return Err(GmarkError::Plan(
                    "eval cache_mb must be positive; disable the cache with \
                     cache = false (--no-eval-cache) instead"
                        .to_owned(),
                ));
            }
        }
        Ok(())
    }
}

/// Fluent construction of a [`RunPlan`] — the programmatic counterpart of
/// the XML configuration.
///
/// ```
/// use gmark::run::{RunPlan, RunOptions, MemorySink, run};
/// use gmark::prelude::WorkloadConfig;
///
/// let plan = RunPlan::builder(gmark::core::usecases::bib())
///     .nodes(1_000)
///     .workload(WorkloadConfig::new(4))
///     .build()
///     .unwrap();
/// let mut sink = MemorySink::new();
/// let summary = run(&plan, &RunOptions::with_seed(42), &mut sink).unwrap();
/// assert_eq!(summary.workload.as_ref().unwrap().produced, 4);
/// ```
#[derive(Debug, Clone)]
pub struct RunPlanBuilder {
    nodes: u64,
    schema: Schema,
    workload: Option<WorkloadConfig>,
    outputs: OutputSelection,
    eval: Option<EvalSpec>,
    from_store: Option<PathBuf>,
}

impl RunPlanBuilder {
    /// Sets the requested node count `n` (default 10 000).
    pub fn nodes(mut self, n: u64) -> RunPlanBuilder {
        self.nodes = n;
        self
    }

    /// Adds a query-workload specification.
    pub fn workload(mut self, config: WorkloadConfig) -> RunPlanBuilder {
        self.workload = Some(config);
        self
    }

    /// Adds the evaluation stage (the CLI's `--eval`): after generation,
    /// run every workload query through the selected engines against the
    /// generated graph. Requires a workload specification and graph
    /// output.
    pub fn eval(mut self, spec: EvalSpec) -> RunPlanBuilder {
        self.eval = Some(spec);
        self
    }

    /// Also write the graph as an on-disk paged store (the CLI's
    /// `--store`). See [`OutputSelection::store`].
    pub fn store(mut self) -> RunPlanBuilder {
        self.outputs.store = true;
        self
    }

    /// Evaluate against an existing on-disk store instead of generating a
    /// graph (the CLI's `--from-store`): disables the graph output and
    /// records the store path. Requires [`RunPlanBuilder::eval`].
    pub fn from_store(mut self, path: impl Into<PathBuf>) -> RunPlanBuilder {
        self.outputs.graph = false;
        self.from_store = Some(path.into());
        self
    }

    /// Generate only the query workload — no graph instance (the CLI's
    /// `--queries-only`).
    pub fn queries_only(mut self) -> RunPlanBuilder {
        self.outputs.graph = false;
        self.outputs.workload = true;
        self
    }

    /// Generate only the graph instance, even if a workload specification
    /// is present.
    pub fn graph_only(mut self) -> RunPlanBuilder {
        self.outputs.graph = true;
        self.outputs.workload = false;
        self
    }

    /// Finishes the plan, validating it.
    pub fn build(self) -> Result<RunPlan, GmarkError> {
        let has_workload = self.workload.is_some();
        let plan = RunPlan {
            graph: GraphConfig::new(self.nodes, self.schema),
            workload: self.workload,
            outputs: OutputSelection {
                graph: self.outputs.graph,
                // A plan without a workload section simply produces no
                // workload documents — mirroring the CLI, where a config
                // without <workload> still runs.
                workload: self.outputs.workload && has_workload,
                store: self.outputs.store,
            },
            eval: self.eval,
            from_store: self.from_store,
            source: None,
        };
        // queries_only without a workload is the one combination that
        // cannot be softened into "produce less".
        if !plan.outputs.graph && !plan.outputs.store && plan.from_store.is_none() && !has_workload
        {
            return Err(GmarkError::Plan(
                "queries_only requires a workload configuration".to_owned(),
            ));
        }
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::usecases;

    #[test]
    fn builder_defaults_produce_a_graph_only_plan() {
        let plan = RunPlan::builder(usecases::bib())
            .nodes(500)
            .build()
            .unwrap();
        assert_eq!(plan.graph.n, 500);
        assert!(plan.outputs.graph);
        assert!(
            !plan.outputs.workload,
            "no workload config, no workload output"
        );
    }

    #[test]
    fn queries_only_without_workload_is_rejected() {
        let err = RunPlan::builder(usecases::bib())
            .queries_only()
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");
    }

    #[test]
    fn xml_and_builder_agree_on_the_shape_of_the_plan() {
        let xml = r#"
            <generator>
              <graph>
                <nodes>800</nodes>
                <types>
                  <type name="a" proportion="0.5"/>
                  <type name="b" proportion="0.5"/>
                </types>
                <predicates><predicate name="p"/></predicates>
                <constraints>
                  <constraint source="a" predicate="p" target="b">
                    <outdistribution type="uniform" min="1" max="2"/>
                  </constraint>
                </constraints>
              </graph>
              <workload size="3" seed="9"/>
            </generator>"#;
        let plan = RunPlan::from_xml(xml).unwrap();
        assert_eq!(plan.graph.n, 800);
        assert_eq!(plan.workload.as_ref().unwrap().size, 3);
        assert_eq!(plan.workload.as_ref().unwrap().seed, 9);
        assert!(plan.outputs.graph && plan.outputs.workload);
        plan.validate().unwrap();
    }

    #[test]
    fn graph_only_xml_yields_a_runnable_graph_only_plan() {
        let xml = r#"
            <generator>
              <graph>
                <nodes>100</nodes>
                <types><type name="a" proportion="1.0"/></types>
                <predicates><predicate name="p" proportion="0.5"/></predicates>
                <constraints>
                  <constraint source="a" predicate="p" target="a">
                    <outdistribution type="uniform" min="1" max="1"/>
                  </constraint>
                </constraints>
              </graph>
            </generator>"#;
        let plan = RunPlan::from_xml(xml).unwrap();
        assert!(plan.outputs.graph);
        assert!(
            !plan.outputs.workload,
            "no <workload> section must not request workload output"
        );
        plan.validate().unwrap();
    }

    #[test]
    fn eval_requires_graph_and_workload() {
        // Eval without a workload: rejected.
        let err = RunPlan::builder(usecases::bib())
            .eval(EvalSpec::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // Eval on a queries-only plan: rejected (no graph to evaluate on).
        let err = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .queries_only()
            .eval(EvalSpec::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // Eval with an empty engine selection: rejected.
        let err = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec {
                engines: Vec::new(),
                ..EvalSpec::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // A zero tuple cap: rejected (it would fail every non-empty cell).
        let err = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec {
                max_tuples: 0,
                ..EvalSpec::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // A zero cache budget: rejected (disable with `cache` instead).
        let err = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec {
                cache_mb: 0,
                ..EvalSpec::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // ...but a disabled cache with the (unused) default budget is fine.
        let plan = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec {
                cache: false,
                ..EvalSpec::default()
            })
            .build()
            .unwrap();
        assert!(!plan.eval.as_ref().unwrap().cache);

        // The well-formed combination builds.
        let plan = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec::default())
            .build()
            .unwrap();
        assert_eq!(plan.eval.as_ref().unwrap().letters(), "PGSD");
        assert!(plan.eval.as_ref().unwrap().cache);
    }

    #[test]
    fn store_output_and_from_store_validate() {
        // --store rides along with any generating plan.
        let plan = RunPlan::builder(usecases::bib()).store().build().unwrap();
        assert!(plan.outputs.store && plan.outputs.graph);

        // A store can even be the only output.
        let mut plan = RunPlan::builder(usecases::bib()).store().build().unwrap();
        plan.outputs.graph = false;
        plan.validate().unwrap();

        // from_store without an eval stage: rejected (nothing would read it).
        let err = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .from_store("g.gstore")
            .build()
            .unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // from_store combined with generation outputs: rejected.
        let mut plan = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec::default())
            .build()
            .unwrap();
        plan.from_store = Some("g.gstore".into());
        let err = plan.validate().unwrap_err();
        assert!(matches!(err, GmarkError::Plan(_)), "{err}");

        // The well-formed from_store evaluation plan builds.
        let plan = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .eval(EvalSpec::default())
            .from_store("g.gstore")
            .build()
            .unwrap();
        assert!(!plan.outputs.graph);
        assert_eq!(
            plan.from_store.as_deref(),
            Some(std::path::Path::new("g.gstore"))
        );

        // Store output + eval (the beyond-RAM combination) builds too.
        let plan = RunPlan::builder(usecases::bib())
            .workload(gmark_core::workload::WorkloadConfig::new(2))
            .store()
            .eval(EvalSpec::default())
            .build()
            .unwrap();
        assert!(plan.outputs.store);
    }

    #[test]
    fn missing_config_file_is_an_io_error_with_the_path() {
        let err = RunPlan::from_config_file("/nonexistent/gmark.xml").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/gmark.xml"), "{err}");
    }
}
