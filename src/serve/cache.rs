//! The keyed snapshot cache: one finished run's artifact bytes, shared
//! across every request that asks for the same plan.
//!
//! A snapshot is immutable — the full [`MemorySink`](crate::run::MemorySink)
//! artifact set of one `run()` plus its summary — so concurrent readers
//! share it through an `Arc` with no copying. The cache keys snapshots
//! by a hash over the plan bytes and every *byte-affecting* option
//! (seed, size, caps; **not** thread count, **not** which artifact the
//! client wants, **not** the deadline), holds them in an LRU bounded by
//! a byte budget, and coordinates builds so N concurrent requests for
//! the same key pay for exactly one run: the first becomes the builder,
//! the rest block on its slot and wake to the shared `Arc`.

use crate::run::Artifact;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One immutable finished run: every artifact the plan produced, in
/// [`Artifact`] order, ready to stream to any number of clients.
#[derive(Debug)]
pub struct Snapshot {
    artifacts: Vec<(Artifact, Vec<u8>)>,
    bytes: usize,
}

impl Snapshot {
    /// Wraps a finished run's artifact buffers (the payload cost is the
    /// sum of buffer lengths, which is what the cache budget meters).
    pub fn new(artifacts: Vec<(Artifact, Vec<u8>)>) -> Snapshot {
        let bytes = artifacts.iter().map(|(_, buf)| buf.len()).sum();
        Snapshot { artifacts, bytes }
    }

    /// The bytes of one artifact, if the plan produced it.
    pub fn artifact(&self, artifact: Artifact) -> Option<&[u8]> {
        self.artifacts
            .iter()
            .find(|(a, _)| *a == artifact)
            .map(|(_, buf)| buf.as_slice())
    }

    /// Every artifact the plan produced, in [`Artifact`] order.
    pub fn artifacts(&self) -> impl Iterator<Item = Artifact> + '_ {
        self.artifacts.iter().map(|(a, _)| *a)
    }

    /// Total payload bytes across all artifacts.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// The outcome a build slot hands to its waiters.
type BuildResult = Result<Arc<Snapshot>, String>;

/// The rendezvous between one builder and its waiters.
struct BuildSlot {
    state: Mutex<Option<BuildResult>>,
    done: Condvar,
}

enum CacheEntry {
    /// A build is in flight; waiters block on the slot.
    Building(Arc<BuildSlot>),
    /// A finished snapshot, stamped with its last-use tick for LRU.
    Ready(Arc<Snapshot>, u64),
}

/// A point-in-time view of the cache counters, for `GET /v1/stats`.
#[derive(Debug, Clone, Copy)]
pub struct CacheStats {
    /// Requests served from an existing snapshot (including those that
    /// blocked on an in-flight build and woke to its result).
    pub hits: u64,
    /// Snapshot builds actually run (the cache's "misses").
    pub builds: u64,
    /// Ready snapshots evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Ready snapshots currently held.
    pub entries: usize,
    /// Payload bytes currently held.
    pub bytes: usize,
    /// The configured budget in bytes.
    pub budget_bytes: usize,
}

/// The keyed snapshot LRU. All methods are `&self`; one instance is
/// shared across every worker thread.
pub struct SnapshotCache {
    entries: Mutex<HashMap<u64, CacheEntry>>,
    budget_bytes: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
}

impl SnapshotCache {
    /// A cache bounded to `budget_mb` MiB of artifact payload. A budget
    /// of zero disables retention: builds still coalesce while in
    /// flight, but nothing stays resident.
    pub fn new(budget_mb: usize) -> SnapshotCache {
        SnapshotCache {
            entries: Mutex::new(HashMap::new()),
            budget_bytes: budget_mb * 1024 * 1024,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the snapshot for `key`, building it with `build` if no
    /// one has yet. Exactly one caller per key runs `build` at a time;
    /// concurrent callers block and share the builder's result. The
    /// `bool` is true when this call was served without running a build
    /// (a cache hit, for the response's `X-Gmark-Cache` header).
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> BuildResult,
    ) -> (BuildResult, bool) {
        // Fast path / enrolment: under the map lock, either take a
        // ready snapshot, join an in-flight build, or claim the slot.
        let slot = {
            let mut entries = self.entries.lock().unwrap();
            match entries.get_mut(&key) {
                Some(CacheEntry::Ready(snapshot, last_used)) => {
                    *last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(Arc::clone(snapshot)), true);
                }
                Some(CacheEntry::Building(slot)) => {
                    let slot = Arc::clone(slot);
                    drop(entries);
                    let mut state = slot.state.lock().unwrap();
                    while state.is_none() {
                        state = slot.done.wait(state).unwrap();
                    }
                    let result = state.as_ref().unwrap().clone();
                    let hit = result.is_ok();
                    if hit {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return (result, hit);
                }
                None => {
                    let slot = Arc::new(BuildSlot {
                        state: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    entries.insert(key, CacheEntry::Building(Arc::clone(&slot)));
                    slot
                }
            }
        };

        // We own the build. Run it outside the map lock so other keys
        // proceed, and catch panics so waiters never hang.
        self.builds.fetch_add(1, Ordering::Relaxed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build))
            .unwrap_or_else(|_| Err("snapshot build panicked".to_owned()));

        {
            let mut entries = self.entries.lock().unwrap();
            match &result {
                Ok(snapshot) => {
                    let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                    entries.insert(key, CacheEntry::Ready(Arc::clone(snapshot), now));
                    self.evict_over_budget(&mut entries, key);
                }
                Err(_) => {
                    // Failed plans don't get negative-cached: the next
                    // request retries (and reports its own error).
                    entries.remove(&key);
                }
            }
        }
        let mut state = slot.state.lock().unwrap();
        *state = Some(result.clone());
        slot.done.notify_all();
        drop(state);
        (result, false)
    }

    /// Evicts least-recently-used ready snapshots until the payload fits
    /// the budget. The just-inserted key goes last: even a snapshot
    /// larger than the whole budget is kept until something else needs
    /// the room, so the request that built it (and any already-waiting
    /// peers) always stream from memory.
    fn evict_over_budget(&self, entries: &mut HashMap<u64, CacheEntry>, just_inserted: u64) {
        loop {
            let total: usize = entries
                .values()
                .map(|e| match e {
                    CacheEntry::Ready(s, _) => s.bytes(),
                    CacheEntry::Building(_) => 0,
                })
                .sum();
            if total <= self.budget_bytes {
                return;
            }
            let victim = entries
                .iter()
                .filter_map(|(k, e)| match e {
                    CacheEntry::Ready(_, last_used) if *k != just_inserted => {
                        Some((*last_used, *k))
                    }
                    _ => None,
                })
                .min()
                .map(|(_, k)| k)
                .or(if self.budget_bytes == 0 {
                    // Zero budget: nothing is retained, not even the
                    // fresh snapshot (waiters already hold the Arc).
                    Some(just_inserted)
                } else {
                    None
                });
            match victim {
                Some(k) => {
                    entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.entries.lock().unwrap();
        let (count, bytes) = entries
            .values()
            .fold((0usize, 0usize), |(n, b), e| match e {
                CacheEntry::Ready(s, _) => (n + 1, b + s.bytes()),
                CacheEntry::Building(_) => (n, b),
            });
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: count,
            bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

/// FNV-1a, the workspace's standing choice for cheap stable hashing.
/// Snapshot keys fold the plan bytes and the canonical option string
/// through this, so equal requests collide on purpose.
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The FNV-1a offset basis, the conventional starting seed.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn snap(bytes: usize) -> BuildResult {
        Ok(Arc::new(Snapshot::new(vec![(
            Artifact::Graph,
            vec![0u8; bytes],
        )])))
    }

    #[test]
    fn builds_each_key_once_and_serves_hits() {
        let cache = SnapshotCache::new(64);
        let built = AtomicUsize::new(0);
        for round in 0..3 {
            let (result, hit) = cache.get_or_build(7, || {
                built.fetch_add(1, Ordering::Relaxed);
                snap(10)
            });
            assert!(result.is_ok());
            assert_eq!(hit, round > 0, "round {round}");
        }
        assert_eq!(built.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.builds, stats.hits, stats.entries), (1, 2, 1));
    }

    #[test]
    fn concurrent_requests_for_one_key_share_a_single_build() {
        let cache = Arc::new(SnapshotCache::new(64));
        let built = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let built = Arc::clone(&built);
            handles.push(std::thread::spawn(move || {
                let (result, _) = cache.get_or_build(42, || {
                    built.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    snap(10)
                });
                result.unwrap().bytes()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 10);
        }
        assert_eq!(built.load(Ordering::Relaxed), 1, "one build for 8 callers");
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // 1 MiB budget; three ~0.4 MiB snapshots can't all stay.
        let cache = SnapshotCache::new(1);
        let kb400 = 400 * 1024;
        cache.get_or_build(1, || snap(kb400)).0.unwrap();
        cache.get_or_build(2, || snap(kb400)).0.unwrap();
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get_or_build(1, || snap(kb400)).1);
        cache.get_or_build(3, || snap(kb400)).0.unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // Key 2 was evicted: asking again rebuilds.
        let (_, hit) = cache.get_or_build(2, || snap(kb400));
        assert!(!hit, "evicted key must rebuild");
        // Keys 1 and 3 survived in some order with key 2 back: budget
        // still holds.
        assert!(cache.stats().bytes <= 1024 * 1024);
    }

    #[test]
    fn failed_builds_propagate_and_are_not_cached() {
        let cache = SnapshotCache::new(64);
        let (result, hit) = cache.get_or_build(9, || Err("boom".to_owned()));
        assert_eq!(result.unwrap_err(), "boom");
        assert!(!hit);
        // The key is free again: the next caller builds successfully.
        let (result, hit) = cache.get_or_build(9, || snap(5));
        assert!(result.is_ok() && !hit);
    }

    #[test]
    fn zero_budget_coalesces_but_retains_nothing() {
        let cache = SnapshotCache::new(0);
        let (result, _) = cache.get_or_build(1, || snap(10));
        assert!(result.is_ok());
        assert_eq!(cache.stats().entries, 0);
        let (_, hit) = cache.get_or_build(1, || snap(10));
        assert!(!hit, "zero budget: every request rebuilds");
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        let a = fnv1a(b"plan-a", FNV_OFFSET);
        assert_eq!(a, fnv1a(b"plan-a", FNV_OFFSET), "deterministic");
        assert_ne!(a, fnv1a(b"plan-b", FNV_OFFSET));
        assert_ne!(a, fnv1a(b"plan-a", a), "seed chains");
    }
}
