//! A minimal JSON reader for the `POST /v1/run` body dialect.
//!
//! The server accepts either a raw schema XML body or a small JSON
//! object (`{"schema_xml": "...", "nodes": 100, ...}`) mirroring the
//! fields a `RunSummary` reports. Parsing that object needs a JSON
//! *reader*, and the workspace has none (every producer hand-formats
//! its JSON), so this is the smallest recursive-descent parser that
//! covers the dialect: all JSON value shapes, UTF-16 escapes included,
//! with a depth cap instead of arbitrary-recursion trust.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (the dialect's numbers are small
    /// counts and seeds, well inside `f64`'s exact-integer range).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in arrival order (the dialect has no duplicate keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on other shapes.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with an exact `u64` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Nesting depth cap: the dialect is flat, so anything deeper than this
/// is garbage (or an attack), not a plan.
const MAX_DEPTH: usize = 32;

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_owned())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("bad escape \\{}", other as char));
                        }
                    }
                }
                _ => {
                    // Re-sync to a char boundary: strings are UTF-8, so
                    // step back and take the whole scalar at once.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "string is not UTF-8".to_owned())?;
                    let ch = rest.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(format!("raw control char {:#x} in string", ch as u32));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        // Surrogate pairs arrive as two consecutive \uXXXX escapes.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| "bad surrogate pair".to_owned());
                }
            }
            return Err("lone high surrogate".into());
        }
        char::from_u32(first).ok_or_else(|| "bad \\u escape".to_owned())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_owned())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_owned())?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_run_body_dialect() {
        let doc = parse(r#"{"schema_xml": "<generator/>", "nodes": 100, "seed": 7}"#).unwrap();
        assert_eq!(
            doc.get("schema_xml").and_then(Json::as_str),
            Some("<generator/>")
        );
        assert_eq!(doc.get("nodes").and_then(Json::as_u64), Some(100));
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(7));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values_escapes_and_literals() {
        let doc = parse(r#"{"a": [1, -2.5, true, false, null], "s": "q\"\\\né😀"}"#).unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
            ]))
        );
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\né😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "\"unterminated",
            "01x",
            "{\"a\": 1} trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // The depth cap rejects pathological nesting.
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-3.0).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Str("42".into()).as_u64(), None);
    }
}
