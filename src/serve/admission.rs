//! Admission control: the bounded queue between the acceptor thread and
//! the worker pool.
//!
//! The acceptor never blocks on a slow worker — it either enqueues the
//! fresh connection or, when the queue is at capacity, turns it away
//! immediately (the caller writes `429 Too Many Requests` with
//! `Retry-After`). Workers block on the queue's condvar; shutdown flips
//! a flag and wakes everyone, after which [`Admission::dequeue`] drains
//! the remaining jobs before returning `None` — that drain is the
//! "graceful" in graceful shutdown: everything admitted gets answered.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One admitted connection, stamped with its admission time so the
/// per-request deadline measures queue wait plus handling.
pub struct Job {
    /// The accepted client connection.
    pub stream: TcpStream,
    /// When the acceptor admitted it.
    pub enqueued: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A point-in-time view of the admission counters, for `GET /v1/stats`.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionStats {
    /// Connections admitted to the queue.
    pub admitted: u64,
    /// Connections turned away with 429 because the queue was full.
    pub rejected: u64,
    /// Admitted requests that expired in the queue (answered 503).
    pub expired: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// The queue's capacity.
    pub queue_capacity: usize,
}

/// The shared accept queue. One instance, `&self` methods everywhere.
pub struct Admission {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
}

impl Admission {
    /// A queue admitting at most `capacity` waiting connections
    /// (minimum 1 — a zero-capacity queue would reject everything).
    pub fn new(capacity: usize) -> Admission {
        Admission {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Admits the connection, or hands it back when the queue is full
    /// or the server is shutting down (the caller answers 429).
    pub fn try_enqueue(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().unwrap();
        if state.shutdown || state.jobs.len() >= self.capacity {
            drop(state);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(stream);
        }
        state.jobs.push_back(Job {
            stream,
            enqueued: Instant::now(),
        });
        drop(state);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available. Returns `None` only once the
    /// queue is shut down *and* drained — pending jobs still come out
    /// after shutdown so admitted clients get answers.
    pub fn dequeue(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Stops admission and wakes every worker to drain and exit.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.ready.notify_all();
    }

    /// Records one admitted request that expired before handling (the
    /// caller answers 503).
    pub fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one follow-up request arriving on a kept-alive
    /// connection. The connection was admitted once through the queue;
    /// every further request it carries is admitted here, so the
    /// `admitted` counter stays a true per-request count and admission
    /// stats remain comparable between keep-alive and close regimes.
    pub fn note_keep_alive_request(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs currently waiting in the queue. The keep-alive loop checks
    /// this between requests: when other connections are queued, the
    /// worker closes its current connection and returns to the pool
    /// instead of letting one client starve the queue.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            queue_depth: self.state.lock().unwrap().jobs.len(),
            queue_capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    /// A connected socket pair to stand in for client connections.
    fn sock() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        client
    }

    #[test]
    fn saturation_rejects_and_drain_returns_jobs_in_order() {
        let q = Admission::new(2);
        assert!(q.try_enqueue(sock()).is_ok());
        assert!(q.try_enqueue(sock()).is_ok());
        assert!(q.try_enqueue(sock()).is_err(), "third must bounce");
        let stats = q.stats();
        assert_eq!(
            (stats.admitted, stats.rejected, stats.queue_depth),
            (2, 1, 2)
        );

        q.shutdown();
        assert!(q.dequeue().is_some(), "pending jobs drain after shutdown");
        assert!(q.dequeue().is_some());
        assert!(q.dequeue().is_none(), "then the queue reports closed");
        assert!(
            q.try_enqueue(sock()).is_err(),
            "no admission after shutdown"
        );
    }

    #[test]
    fn shutdown_wakes_blocked_workers() {
        let q = Arc::new(Admission::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.dequeue().is_none())
        };
        // Give the worker time to block, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.shutdown();
        assert!(worker.join().unwrap(), "worker wakes with None");
    }
}
