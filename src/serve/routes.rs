//! Request dispatch: the per-connection request loop and the routes it
//! feeds.
//!
//! One admitted connection is served in a loop (HTTP/1.1 keep-alive):
//! read a request, answer it, and — unless the client asked to close,
//! the idle window or per-connection cap ran out, shutdown began, or
//! other connections are waiting in the queue — wait for the next one on
//! the same socket. Every follow-up request is admission-accounted
//! individually, so `/v1/stats` counts requests, not connections.
//!
//! `POST /v1/run` is the CLI's `gmark --config … --output …` re-expressed
//! over HTTP: the body carries the plan (raw schema XML, or the JSON
//! dialect `{"schema_xml": …}`), the query string carries the flags, and
//! the selected artifact streams back chunked. The handler mirrors the
//! CLI's flag-coupling rules exactly, so a plan the CLI rejects gets the
//! same complaint as a 400 here. Two deliberate differences: the server
//! never takes a filesystem path from a client (`--from-store` has no
//! HTTP spelling; `config=` is recorded as a label, never opened), and
//! `threads`/`deadline_ms` are execution knobs that stay **out** of the
//! snapshot key — they never change artifact bytes, so requests
//! differing only there share one snapshot.

use super::admission::Job;
use super::cache::{fnv1a, Snapshot, FNV_OFFSET};
use super::http::{self, Request};
use super::json::{self, Json};
use super::{ServerShared, SUMMARY_LOG_CAP};
use crate::run::{run, Artifact, EvalSpec, MemorySink, RunOptions, RunPlan};
use gmark_engines::EngineKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A handler-level failure: the status and message of the error response.
type Reject = (u16, String);

fn bad(msg: impl Into<String>) -> Reject {
    (400, msg.into())
}

/// Serves requests off one admitted connection until it should close:
/// the keep-alive request loop.
pub(crate) fn handle(shared: &ServerShared, job: Job) {
    let Job {
        mut stream,
        enqueued,
    } = job;
    let idle = Duration::from_millis(shared.config.keep_alive_ms);
    let cap = shared.config.max_requests_per_conn.max(1);
    // The first request rode through the admission queue; follow-ups are
    // stamped on arrival (their queue wait is the worker's read, ~0).
    let mut enqueued = Some(enqueued);
    let mut served = 0usize;

    loop {
        let enqueued_at = match enqueued.take() {
            Some(t) => t,
            None => match await_next_request(shared, &mut stream, idle) {
                Some(arrived) => {
                    shared.admission.note_keep_alive_request();
                    arrived
                }
                None => return,
            },
        };
        let request = match http::read_request(&mut stream) {
            Ok(request) => request,
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    let _ = http::write_error(&mut stream, status, &e.to_string(), false);
                }
                return;
            }
        };
        served += 1;
        // Keep the connection unless: the client said close, keep-alive
        // is disabled, the cap is reached, shutdown began (finish this
        // request, then close — the drain contract), or other
        // connections are waiting in the queue (yield the worker rather
        // than let one client starve the line).
        let keep_alive = request.keep_alive
            && shared.config.keep_alive_ms > 0
            && served < cap
            && !shared.stopping()
            && shared.admission.queue_depth() == 0;

        let result = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/run") => {
                run_route(shared, enqueued_at, &request, &mut stream, keep_alive)
            }
            ("GET", "/healthz") => {
                respond(
                    &mut stream,
                    200,
                    "text/plain; charset=utf-8",
                    b"ok\n",
                    keep_alive,
                );
                Ok(())
            }
            ("GET", "/v1/stats") => {
                let body = stats_json(shared);
                respond(
                    &mut stream,
                    200,
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                );
                Ok(())
            }
            ("GET", path) => {
                if let Some(id) = path
                    .strip_prefix("/v1/run/")
                    .and_then(|rest| rest.strip_suffix("/summary"))
                {
                    summary_route(shared, id, &mut stream, keep_alive)
                } else {
                    Err((404, format!("no such resource: {path}")))
                }
            }
            ("POST" | "PUT" | "DELETE", path) => {
                Err((405, format!("method not allowed on {path}")))
            }
            (method, _) => Err((405, format!("method {method} not supported"))),
        };

        if let Err((status, message)) = result {
            let _ = http::write_error(&mut stream, status, &message, keep_alive);
        }
        if !keep_alive {
            return;
        }
    }
}

/// Waits for the first byte of the next request on a kept-alive
/// connection: short timeout slices so shutdown is noticed within
/// ~100 ms, bounded by the idle window. Returns the arrival instant, or
/// `None` when the client closed, the window expired, the socket
/// failed, or the server is stopping.
fn await_next_request(
    shared: &ServerShared,
    stream: &mut std::net::TcpStream,
    idle: Duration,
) -> Option<std::time::Instant> {
    const SLICE: Duration = Duration::from_millis(100);
    let started = std::time::Instant::now();
    let mut probe = [0u8; 1];
    loop {
        if shared.stopping() || started.elapsed() >= idle {
            return None;
        }
        let _ = stream.set_read_timeout(Some(SLICE.min(idle)));
        match stream.peek(&mut probe) {
            Ok(0) => return None, // clean client close
            Ok(_) => {
                // Restore the acceptor's working timeout for the head
                // read — a client that sends one byte and stalls costs
                // at most that, as before.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                return Some(std::time::Instant::now());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return None,
        }
    }
}

fn respond(
    stream: &mut std::net::TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    let _ = http::write_response(
        stream,
        status,
        &[("Content-Type", content_type)],
        body,
        keep_alive,
    );
}

/// `GET /v1/run/<id>/summary` — the stored summary of a finished run.
fn summary_route(
    shared: &ServerShared,
    id: &str,
    stream: &mut std::net::TcpStream,
    keep_alive: bool,
) -> Result<(), Reject> {
    let snapshot = {
        let log = shared.summaries.lock().unwrap();
        log.iter()
            .find(|(run_id, _)| run_id == id)
            .map(|(_, s)| Arc::clone(s))
    };
    let snapshot = snapshot.ok_or_else(|| {
        (
            404,
            format!("unknown run id {id:?} (the server remembers the last {SUMMARY_LOG_CAP} runs)"),
        )
    })?;
    // MemorySink::finish always renders the summary, so every snapshot
    // has this artifact.
    let body = snapshot
        .artifact(Artifact::Summary)
        .expect("every snapshot carries summary.json");
    respond(stream, 200, "application/json", body, keep_alive);
    Ok(())
}

/// `POST /v1/run` — validate, get-or-build the snapshot, stream the
/// artifact.
fn run_route(
    shared: &ServerShared,
    enqueued: std::time::Instant,
    request: &Request,
    stream: &mut std::net::TcpStream,
    keep_alive: bool,
) -> Result<(), Reject> {
    shared.latency.queue_wait.record(enqueued.elapsed());
    // Deadline first: a request that waited out its budget in the queue
    // is answered 503 without burning a build on it. The deadline is
    // admission bookkeeping only — it never reaches the plan, so it can
    // never change artifact bytes.
    let deadline_ms = match request.query_param("deadline_ms") {
        Some(v) => parse_num::<u64>(v, "deadline_ms")?,
        None => shared.config.deadline_ms,
    };
    if deadline_ms > 0 && enqueued.elapsed() > Duration::from_millis(deadline_ms) {
        shared.admission.note_expired();
        return Err((
            503,
            format!("deadline of {deadline_ms} ms expired in the queue"),
        ));
    }

    let parsed = parse_run_request(request)?;
    let key = parsed.snapshot_key(&request.body);

    let plan = parsed.plan;
    let opts = parsed.opts;
    let build_started = std::time::Instant::now();
    let (result, hit) = shared.cache.get_or_build(key, move || {
        let mut sink = MemorySink::new();
        match run(&plan, &opts, &mut sink) {
            Ok(_) => Ok(Arc::new(Snapshot::new(sink.into_artifacts()))),
            Err(e) => Err(e.to_string()),
        }
    });
    if !hit {
        shared.latency.build.record(build_started.elapsed());
    }
    let snapshot = result.map_err(|e| (500, format!("run failed: {e}")))?;

    // Register the run id before streaming, so a client can fetch the
    // summary the moment the response head arrives.
    let seq = shared.run_seq.fetch_add(1, Ordering::Relaxed);
    let run_id = format!("{key:016x}-{seq}");
    {
        let mut log = shared.summaries.lock().unwrap();
        log.push_back((run_id.clone(), Arc::clone(&snapshot)));
        while log.len() > SUMMARY_LOG_CAP {
            log.pop_front();
        }
    }

    let artifact = select_artifact(request, &snapshot)?;
    let body = snapshot
        .artifact(artifact)
        .expect("select_artifact verified presence");
    let key_hex = format!("{key:016x}");
    let headers = [
        ("Content-Type", content_type(artifact)),
        ("X-Gmark-Run-Id", run_id.as_str()),
        ("X-Gmark-Cache", if hit { "hit" } else { "build" }),
        ("X-Gmark-Snapshot-Key", key_hex.as_str()),
        ("X-Gmark-Artifact", artifact.file_name()),
    ];
    let stream_started = std::time::Instant::now();
    let _ = http::write_chunked(stream, 200, &headers, body, keep_alive);
    shared.latency.stream.record(stream_started.elapsed());
    Ok(())
}

/// Everything parsed out of one `POST /v1/run` request: the plan, the
/// execution options, and the canonical byte-affecting key material.
struct ParsedRun {
    plan: RunPlan,
    opts: RunOptions,
    /// The canonical spelling of every byte-affecting input besides the
    /// body itself; hashed (never compared) so its exact format is free
    /// to evolve.
    key_material: String,
}

impl ParsedRun {
    fn snapshot_key(&self, body: &[u8]) -> u64 {
        fnv1a(self.key_material.as_bytes(), fnv1a(body, FNV_OFFSET))
    }
}

fn parse_run_request(request: &Request) -> Result<ParsedRun, Reject> {
    // Reject unknown parameters outright: a typoed `sede=7` silently
    // producing default-seed bytes would be a determinism trap.
    const KNOWN: &[&str] = &[
        "seed",
        "nodes",
        "threads",
        "stream",
        "store",
        "queries_only",
        "eval",
        "engines",
        "budget_ms",
        "max_tuples",
        "no_plan",
        "no_eval_cache",
        "eval_cache_mb",
        "artifact",
        "deadline_ms",
        "config",
    ];
    for (k, _) in &request.query {
        if !KNOWN.contains(&k.as_str()) {
            if k == "from_store" {
                return Err(bad(
                    "from_store is not available over HTTP: the server does not read \
                     client-named filesystem paths",
                ));
            }
            return Err(bad(format!("unknown query parameter {k:?}")));
        }
    }

    let mut plan = plan_from_body(&request.body)?;

    // `config=` labels the summary's `config` field with the path the
    // client read its schema from, closing the served-vs-CLI summary
    // divergence. It is a *label*: the server never opens it (the schema
    // always comes from the body), but it changes summary.json and
    // report.txt bytes, so it joins the snapshot key below.
    let config = request.query_param("config");
    if let Some(label) = config {
        if label.is_empty() {
            return Err(bad("config: expected a non-empty path label"));
        }
        plan.source = Some(std::path::PathBuf::from(label));
    }

    let nodes = opt_num::<u64>(request, "nodes")?;
    let seed = opt_num::<u64>(request, "seed")?;
    let threads = opt_num::<usize>(request, "threads")?.unwrap_or(0);
    let stream = flag(request, "stream")?;
    let store = flag(request, "store")?;
    let queries_only = flag(request, "queries_only")?;
    let eval = flag(request, "eval")?;
    let no_plan = flag(request, "no_plan")?;
    let no_eval_cache = flag(request, "no_eval_cache")?;
    let engines = match request.query_param("engines") {
        Some(list) => Some(EngineKind::parse_list(list).map_err(bad)?),
        None => None,
    };
    let budget_ms = opt_num::<u64>(request, "budget_ms")?;
    let max_tuples = opt_num::<usize>(request, "max_tuples")?;
    let eval_cache_mb = opt_num::<usize>(request, "eval_cache_mb")?;

    // The CLI's flag-coupling rules, verbatim (same messages, minus the
    // leading dashes of the flag spellings).
    let eval_only = engines.is_some()
        || budget_ms.is_some()
        || max_tuples.is_some()
        || no_plan
        || no_eval_cache
        || eval_cache_mb.is_some();
    if eval_only && !eval {
        return Err(bad(
            "engines/budget_ms/max_tuples/no_plan/no_eval_cache/eval_cache_mb require eval",
        ));
    }
    if no_eval_cache && eval_cache_mb.is_some() {
        return Err(bad(
            "no_eval_cache disables the cache eval_cache_mb would size; pick one",
        ));
    }
    if eval && queries_only {
        return Err(bad("eval needs the graph instance; drop queries_only"));
    }
    if store && queries_only {
        return Err(bad("queries_only generates no graph to store; drop store"));
    }
    if eval && stream && !store {
        return Err(bad(
            "eval with stream needs the on-disk store: add store (the engines then \
             page through graph.gstore) or drop stream",
        ));
    }

    if let Some(n) = nodes {
        plan = plan.with_nodes(n);
    }
    if queries_only {
        if plan.workload.is_none() {
            return Err(bad("queries_only: the schema has no <workload> section"));
        }
        plan.outputs.graph = false;
    }
    if eval {
        if plan.workload.is_none() {
            return Err(bad(
                "eval: the schema has no <workload> section to evaluate",
            ));
        }
        let mut spec = EvalSpec::default();
        if let Some(engines) = &engines {
            spec.engines = engines.clone();
        }
        if let Some(ms) = budget_ms {
            spec.budget_ms = ms;
        }
        if let Some(cap) = max_tuples {
            spec.max_tuples = cap;
        }
        spec.plan = !no_plan;
        spec.cache = !no_eval_cache;
        if let Some(mb) = eval_cache_mb {
            spec.cache_mb = mb;
        }
        plan.eval = Some(spec);
    }
    if store {
        plan.outputs.store = true;
    }
    plan.validate().map_err(|e| bad(e.to_string()))?;

    let opts = RunOptions {
        seed,
        threads,
        stream,
        ..RunOptions::default()
    };

    // Canonical key material: every byte-affecting input, in one fixed
    // spelling. `threads` is deliberately absent (outputs are
    // byte-identical at every thread count — the pipeline's contract),
    // as are `artifact` (a view selector) and `deadline_ms` (admission
    // bookkeeping).
    let eval_key = plan
        .eval
        .as_ref()
        .map(|s| {
            format!(
                "{}:{}:{}:{}:{}:{}",
                s.letters(),
                s.budget_ms,
                s.max_tuples,
                s.plan,
                s.cache,
                s.cache_mb
            )
        })
        .unwrap_or_else(|| "off".to_owned());
    let key_material = format!(
        "seed={seed:?};nodes={nodes:?};stream={stream};store={store};\
         queries_only={queries_only};eval={eval_key};config={config:?}",
    );

    Ok(ParsedRun {
        plan,
        opts,
        key_material,
    })
}

/// The plan from the request body: raw schema XML, or the JSON dialect.
fn plan_from_body(body: &[u8]) -> Result<RunPlan, Reject> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let trimmed = text.trim_start();
    if trimmed.is_empty() {
        return Err(bad(
            "empty body: POST the schema XML, or {\"schema_xml\": \"...\"}",
        ));
    }
    if trimmed.starts_with('<') {
        return RunPlan::from_xml(text).map_err(|e| bad(e.to_string()));
    }
    let doc = json::parse(text).map_err(|e| bad(format!("body JSON: {e}")))?;
    let xml = doc
        .get("schema_xml")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("body JSON must carry a \"schema_xml\" string"))?;
    let mut plan = RunPlan::from_xml(xml).map_err(|e| bad(e.to_string()))?;
    if let Some(value) = doc.get("nodes") {
        let n = value
            .as_u64()
            .ok_or_else(|| bad("body JSON \"nodes\" must be a non-negative integer"))?;
        plan = plan.with_nodes(n);
    }
    // The JSON spelling of the `config=` label (the query parameter wins
    // when both are present). Part of the body, so already in the key.
    if let Some(value) = doc.get("config") {
        let label = value
            .as_str()
            .ok_or_else(|| bad("body JSON \"config\" must be a string"))?;
        plan.source = Some(std::path::PathBuf::from(label));
    }
    Ok(plan)
}

/// The artifact the client asked for, defaulting to the "main" artifact
/// of the plan shape: the graph when generated, else the workload, else
/// the summary.
fn select_artifact(request: &Request, snapshot: &Snapshot) -> Result<Artifact, Reject> {
    let artifact = match request.query_param("artifact") {
        Some(name) => Artifact::from_file_name(name).ok_or_else(|| {
            bad(format!(
                "unknown artifact {name:?} (one of: {})",
                Artifact::ALL.map(|a| a.file_name()).join(", ")
            ))
        })?,
        None => [Artifact::Graph, Artifact::Rules, Artifact::Summary]
            .into_iter()
            .find(|a| snapshot.artifact(*a).is_some())
            .unwrap_or(Artifact::Summary),
    };
    if snapshot.artifact(artifact).is_none() {
        let available: Vec<&str> = snapshot.artifacts().map(|a| a.file_name()).collect();
        return Err((
            404,
            format!(
                "this plan did not produce {}; it produced: {}",
                artifact.file_name(),
                available.join(", ")
            ),
        ));
    }
    Ok(artifact)
}

fn content_type(artifact: Artifact) -> &'static str {
    match artifact {
        Artifact::Summary => "application/json",
        Artifact::Store => "application/octet-stream",
        _ => "text/plain; charset=utf-8",
    }
}

/// `GET /v1/stats` — cache, admission, latency, and pool counters.
fn stats_json(shared: &ServerShared) -> String {
    let cache = shared.cache.stats();
    let admission = shared.admission.stats();
    format!(
        "{{\"cache\":{{\"hits\":{},\"builds\":{},\"evictions\":{},\"entries\":{},\
         \"bytes\":{},\"budget_bytes\":{}}},\"admission\":{{\"admitted\":{},\
         \"rejected\":{},\"expired\":{},\"queue_depth\":{},\"queue_capacity\":{}}},\
         \"latency\":{{\"queue_wait\":{},\"build\":{},\"stream\":{}}},\
         \"workers\":{}}}\n",
        cache.hits,
        cache.builds,
        cache.evictions,
        cache.entries,
        cache.bytes,
        cache.budget_bytes,
        admission.admitted,
        admission.rejected,
        admission.expired,
        admission.queue_depth,
        admission.queue_capacity,
        shared.latency.queue_wait.snapshot().to_json(),
        shared.latency.build.snapshot().to_json(),
        shared.latency.stream.snapshot().to_json(),
        shared.config.workers,
    )
}

fn flag(request: &Request, name: &str) -> Result<bool, Reject> {
    match request.query_param(name) {
        None => Ok(false),
        Some("" | "1" | "true") => Ok(true),
        Some("0" | "false") => Ok(false),
        Some(other) => Err(bad(format!("{name}: expected a boolean, got {other:?}"))),
    }
}

fn opt_num<T: std::str::FromStr>(request: &Request, name: &str) -> Result<Option<T>, Reject> {
    request
        .query_param(name)
        .map(|v| parse_num(v, name))
        .transpose()
}

fn parse_num<T: std::str::FromStr>(value: &str, name: &str) -> Result<T, Reject> {
    value
        .parse()
        .map_err(|_| bad(format!("{name}: invalid value {value:?}")))
}
