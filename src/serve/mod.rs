//! `gmark serve` — the benchmark-as-a-service daemon.
//!
//! One process turns the batch pipeline into a long-running service:
//! clients `POST /v1/run` a plan (schema XML or the JSON dialect) plus
//! CLI-shaped query parameters, and the selected artifact streams back
//! with chunked transfer encoding. The server rests on three guarantees:
//!
//! * **Byte determinism.** A response's payload is a pure function of
//!   the plan and its byte-affecting options — never of worker count,
//!   cache state, or who asked first. This falls straight out of the
//!   pipeline's own contract and is pinned by `tests/serve.rs`.
//! * **Pay-once snapshots.** Runs are cached per snapshot key
//!   ([`cache::SnapshotCache`]); N concurrent requests for one key cost
//!   one run, and the LRU holds finished runs inside `--cache-mb`.
//! * **Bounded admission.** A fixed worker pool drains a bounded accept
//!   queue ([`admission::Admission`]); past capacity the server answers
//!   `429` with `Retry-After` instead of queueing without limit, and
//!   per-request deadlines turn stale queue entries into `503`s.
//!
//! Connections are persistent (HTTP/1.1 keep-alive): a worker serves
//! requests off one connection in a loop — each one individually
//! admission-accounted — until the client closes, the idle window
//! (`--keep-alive-ms`) or per-connection request cap
//! (`--max-requests-per-conn`) runs out, another connection is waiting
//! in the queue, or shutdown begins. Per-request queue-wait / build /
//! stream latency histograms are surfaced through `GET /v1/stats`.
//!
//! Shutdown is graceful: [`Server::shutdown`] (the CLI wires it to
//! SIGTERM) stops accepting, drains every admitted request — a
//! kept-alive connection finishes its in-flight request and then closes
//! — joins the pool, and only then returns.

pub mod admission;
pub mod cache;
pub mod http;
pub mod json;
mod routes;

use admission::Admission;
use cache::{Snapshot, SnapshotCache};
use gmark_stats::LatencyHistogram;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How many finished run ids `GET /v1/run/<id>/summary` can still
/// resolve; older ids age out of the bounded log.
pub const SUMMARY_LOG_CAP: usize = 1024;

/// How the daemon listens and how much it holds: the `gmark serve`
/// flag set.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`--addr`), e.g. `127.0.0.1:7878`; port `0` picks
    /// a free port (the tests' route to collision-free servers).
    pub addr: String,
    /// Worker threads draining the accept queue (`--workers`).
    pub workers: usize,
    /// Snapshot cache byte budget in MiB (`--cache-mb`); `0` disables
    /// retention (builds still coalesce while in flight).
    pub cache_mb: usize,
    /// Accept-queue capacity (`--queue-depth`): connections beyond this
    /// many waiting are answered `429`.
    pub queue_depth: usize,
    /// Default per-request deadline in ms (`--deadline-ms`); a request
    /// still queued past it is answered `503`. `0` disables; clients
    /// override per request with `?deadline_ms=`.
    pub deadline_ms: u64,
    /// Keep-alive idle window in ms (`--keep-alive-ms`): how long a
    /// worker waits for the *next* request on a kept-alive connection
    /// before closing it. `0` disables keep-alive entirely (every
    /// response closes, the pre-PR-10 behavior).
    pub keep_alive_ms: u64,
    /// Cap on requests served per connection (`--max-requests-per-conn`):
    /// after this many the response says `Connection: close` and the
    /// worker returns to the queue, bounding how long one client can
    /// monopolize a worker. Treated as at least 1.
    pub max_requests_per_conn: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 4,
            cache_mb: 256,
            queue_depth: 64,
            deadline_ms: 0,
            keep_alive_ms: 5_000,
            max_requests_per_conn: 1_000,
        }
    }
}

/// Per-request latency histograms fed by the run route and surfaced in
/// `GET /v1/stats` — the serve side of the drive scoreboard, in the same
/// log-bucketed [`LatencyHistogram`] the traffic driver uses.
#[derive(Default)]
pub(crate) struct ServeLatency {
    /// Admission (or keep-alive arrival) to handler start.
    pub(crate) queue_wait: LatencyHistogram,
    /// Snapshot build time, recorded on cache misses only.
    pub(crate) build: LatencyHistogram,
    /// Artifact response write (framing + socket).
    pub(crate) stream: LatencyHistogram,
}

/// Everything the acceptor, the workers, and the routes share.
pub(crate) struct ServerShared {
    pub(crate) config: ServeConfig,
    pub(crate) cache: SnapshotCache,
    pub(crate) admission: Admission,
    /// run-id → snapshot, newest last, bounded to [`SUMMARY_LOG_CAP`].
    pub(crate) summaries: Mutex<std::collections::VecDeque<(String, Arc<Snapshot>)>>,
    pub(crate) run_seq: AtomicU64,
    pub(crate) latency: ServeLatency,
    stop: AtomicBool,
}

impl ServerShared {
    /// Whether shutdown has been requested — kept-alive connections
    /// check this to finish their in-flight request and then close.
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running daemon: the listener, its acceptor thread, and the worker
/// pool. Dropping without [`Server::shutdown`] leaks the threads — the
/// CLI and the tests both shut down explicitly.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the address and starts the acceptor and worker threads.
    /// Returns as soon as the socket is listening — `/healthz` answers
    /// from that moment.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        let workers = config.workers.max(1);
        let shared = Arc::new(ServerShared {
            cache: SnapshotCache::new(config.cache_mb),
            admission: Admission::new(config.queue_depth),
            summaries: Mutex::new(std::collections::VecDeque::new()),
            run_seq: AtomicU64::new(0),
            latency: ServeLatency::default(),
            stop: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gmark-accept".to_owned())
                .spawn(move || accept_loop(&shared, listener))?
        };
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("gmark-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.admission.dequeue() {
                            routes::handle(&shared, job);
                        }
                    })?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            acceptor,
            workers: pool,
        })
    }

    /// The bound address — the way tests learn which free port `:0`
    /// resolved to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, drain every admitted request,
    /// join all threads. Blocks until in-flight work has been answered.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(2) — the cheap way to zero idle
        // cost and zero accept latency — so waking it takes a throwaway
        // connection to our own port.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = std::net::TcpStream::connect_timeout(&wake_addr, Duration::from_millis(500));
        self.shared.admission.shutdown();
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// The acceptor: block in accept(2) until told to stop, answering `429`
/// inline when the queue is full (workers never see rejected
/// connections). [`Server::shutdown`] wakes the block with a throwaway
/// connection after flipping the stop flag.
fn accept_loop(shared: &ServerShared, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    // The shutdown wake-up call (or a client racing it);
                    // either way, admission is closed.
                    return;
                }
                // Socket timeouts: a stalled client costs one worker at
                // most the timeout, not forever. TCP_NODELAY because the
                // response writer emits small frames (chunk headers,
                // response heads) back to back — without it, follow-up
                // requests on kept-alive connections stall ~40 ms in
                // Nagle + delayed-ACK handshakes.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(120)));
                let _ = stream.set_nodelay(true);
                if let Err(rejected) = shared.admission.try_enqueue(stream) {
                    reject_connection(rejected);
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answers a connection the queue would not take: `429` with
/// `Retry-After`, written without ever reading the request.
///
/// The close is choreographed: shutting down only the write side first
/// and then draining whatever the client already sent keeps the kernel
/// from turning unread request bytes into a TCP RST that would destroy
/// the 429 before the client reads it. The drain is bounded by a short
/// read timeout, so a stalled client cannot pin the acceptor.
fn reject_connection(mut stream: std::net::TcpStream) {
    let body = b"gmark: saturated, retry later\n";
    let _ = stream.write_all(
        format!(
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\
             Content-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    let _ = stream.write_all(body);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    while let Ok(n) = std::io::Read::read(&mut stream, &mut sink) {
        if n == 0 {
            break;
        }
    }
}

/// The process-wide termination flag behind [`request_shutdown_on_signals`].
static SHUTDOWN_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn mark_shutdown(_signum: i32) {
    // Only async-signal-safe work here: flip the flag, nothing else.
    SHUTDOWN_FLAG.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that flip a flag, and returns that
/// flag for the caller's polling loop — how the CLI daemon notices
/// `kill <pid>` and begins its graceful drain. Uses libc's `signal(2)`
/// directly (no dependency); on non-Unix targets it is a no-op and the
/// flag simply never flips.
pub fn request_shutdown_on_signals() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = mark_shutdown as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
    &SHUTDOWN_FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Artifact;

    const BIB_XML: &str = include_str!("../../examples/configs/bib.xml");

    fn post_run(addr: SocketAddr, query: &str) -> http::ClientResponse {
        http::fetch(addr, "POST", &format!("/v1/run{query}"), BIB_XML.as_bytes())
            .expect("request round-trips")
    }

    #[test]
    fn serves_health_stats_and_a_run_end_to_end() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            cache_mb: 64,
            ..ServeConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();

        let health = http::fetch(addr, "GET", "/healthz", b"").unwrap();
        assert_eq!((health.status, health.body.as_slice()), (200, &b"ok\n"[..]));

        let run = post_run(addr, "?nodes=50&seed=7");
        assert_eq!(run.status, 200, "{:?}", String::from_utf8_lossy(&run.body));
        assert_eq!(run.header("x-gmark-cache"), Some("build"));
        assert_eq!(run.header("x-gmark-artifact"), Some("graph.nt"));
        assert!(run.body.ends_with(b".\n"), "N-Triples payload");

        // Same plan again: a hit, and byte-identical.
        let again = post_run(addr, "?nodes=50&seed=7");
        assert_eq!(again.header("x-gmark-cache"), Some("hit"));
        assert_eq!(again.body, run.body);

        // The summary is retrievable by run id and is valid JSON-ish.
        let id = run.header("x-gmark-run-id").unwrap().to_owned();
        let summary = http::fetch(addr, "GET", &format!("/v1/run/{id}/summary"), b"").unwrap();
        assert_eq!(summary.status, 200);
        assert!(summary.body.starts_with(b"{"));

        let stats = http::fetch(addr, "GET", "/v1/stats", b"").unwrap();
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"builds\":1"), "{text}");
        assert!(text.contains("\"hits\":1"), "{text}");

        server.shutdown();
    }

    #[test]
    fn rejects_bad_plans_params_and_routes() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();

        let cases: &[(&str, &str, &[u8], u16)] = &[
            ("POST", "/v1/run", b"not xml or json", 400),
            ("POST", "/v1/run", b"", 400),
            ("POST", "/v1/run?typo=1", BIB_XML.as_bytes(), 400),
            ("POST", "/v1/run?from_store=x", BIB_XML.as_bytes(), 400),
            (
                "POST",
                "/v1/run?eval=1&queries_only=1",
                BIB_XML.as_bytes(),
                400,
            ),
            ("POST", "/v1/run?budget_ms=5", BIB_XML.as_bytes(), 400),
            ("POST", "/v1/run?artifact=nope.bin", BIB_XML.as_bytes(), 400),
            ("GET", "/v1/run/unknown/summary", b"", 404),
            ("GET", "/nope", b"", 404),
            ("POST", "/healthz", b"x", 405),
        ];
        for (method, path, body, expected) in cases {
            let resp = http::fetch(addr, method, path, body).unwrap();
            assert_eq!(resp.status, *expected, "{method} {path}");
        }

        // JSON dialect body with a node override works.
        let resp = http::fetch(
            addr,
            "POST",
            "/v1/run?seed=3&artifact=summary.json",
            format!(
                "{{\"schema_xml\": {}, \"nodes\": 40}}",
                json_string(BIB_XML)
            )
            .as_bytes(),
        )
        .unwrap();
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(resp.body.starts_with(b"{"));

        server.shutdown();
    }

    #[test]
    fn artifact_selector_reaches_every_produced_artifact() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();

        for artifact in ["workload.txt", "workload.sparql", "report.txt"] {
            let resp = post_run(addr, &format!("?nodes=40&seed=5&artifact={artifact}"));
            assert_eq!(resp.status, 200, "{artifact}");
            assert_eq!(resp.header("x-gmark-artifact"), Some(artifact));
            assert!(!resp.body.is_empty(), "{artifact}");
        }
        // One plan, many artifact views: still a single build.
        let stats = http::fetch(addr, "GET", "/v1/stats", b"").unwrap();
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"builds\":1"), "{text}");

        // An artifact the plan didn't produce is a 404 naming what is.
        let resp = post_run(addr, "?nodes=40&seed=5&artifact=eval.txt");
        assert_eq!(resp.status, 404);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains(Artifact::Rules.file_name()), "{text}");

        server.shutdown();
    }

    /// Minimal JSON string quoting for the test body.
    fn json_string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}
