//! Hand-rolled HTTP/1.1 framing for `gmark serve` — no dependencies,
//! matching the workspace's offline rule.
//!
//! The dialect is deliberately small: `Content-Length` request bodies
//! only (no chunked *uploads*), capped head and body sizes, and two
//! response shapes — fixed `Content-Length` or `Transfer-Encoding:
//! chunked` (how artifact bytes stream back without knowing their size
//! up front, and without buffering the socket write). Connections are
//! persistent by default (HTTP/1.1 keep-alive semantics: reuse unless
//! the client sends `Connection: close`, honor `keep-alive` from
//! HTTP/1.0 clients); the per-connection request loop lives in the
//! routes layer, which decides per response whether the connection
//! stays open and tells [`write_response`]/[`write_chunked`] what
//! `Connection:` header to emit. Two clients live at the bottom:
//! one-shot [`fetch`] (`Connection: close`, reads to EOF — tolerant of
//! early error responses) and the reusable [`Client`], which frames
//! responses exactly so the same TCP connection can carry many requests;
//! the integration tests and bench drivers use both, curl fills the
//! same role in CI.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Chunk size of chunked responses.
const CHUNK_BYTES: usize = 64 * 1024;

/// One parsed request: method, split target, lowercased headers, body.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// The path half of the request target (before `?`), percent-decoded.
    pub path: String,
    /// The query half, percent-decoded into `(key, value)` pairs in
    /// arrival order. Valueless keys get an empty value.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client wants the connection kept open afterwards:
    /// HTTP/1.1 defaults to yes unless `Connection: close`, HTTP/1.0 to
    /// no unless `Connection: keep-alive`. The server may still close
    /// (cap reached, shutdown, idle) — this is the client's side of the
    /// negotiation only.
    pub keep_alive: bool,
}

impl Request {
    /// The first query parameter with this name, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first header with this (case-insensitive) name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. [`HttpError::status`] maps each case
/// to the response the server writes before closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed (client went away, timeout): nothing to answer.
    Io(io::Error),
    /// The client closed the connection cleanly before sending any
    /// byte of a next request — the normal end of a kept-alive
    /// connection, not a fault.
    Closed,
    /// The bytes were not an HTTP/1.x request we understand.
    Malformed(String),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// A body-carrying method arrived without `Content-Length`.
    LengthRequired,
}

impl HttpError {
    /// The response status for this failure (`0` = connection-level,
    /// nothing can be written).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 0,
            HttpError::Closed => 0,
            HttpError::Malformed(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge(_) => 413,
            HttpError::LengthRequired => 411,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Closed => write!(f, "connection closed before a request"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            HttpError::LengthRequired => write!(f, "POST requires Content-Length"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    // Read until the blank line ending the head, never past the cap.
    let mut head = Vec::with_capacity(1024);
    let mut byte = [0u8; 1];
    let head_end = loop {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            // EOF before the first byte is a clean keep-alive close;
            // EOF inside a head is a fault.
            return Err(if head.is_empty() {
                HttpError::Closed
            } else {
                HttpError::Malformed("connection closed mid-head".into())
            });
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break head.len();
        }
    };
    let head_text = std::str::from_utf8(&head[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));

    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("no method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("no request target".into()))?;
    let http10 = match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => v == "HTTP/1.0",
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request".into())),
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = raw_query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive: false,
    };
    request.keep_alive = match request.header("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => !http10,
    };

    let content_length = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        None if request.method == "POST" || request.method == "PUT" => {
            return Err(HttpError::LengthRequired);
        }
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request { body, ..request })
}

/// The standard reason phrase of the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one fixed-length response and flushes. `keep_alive` picks the
/// `Connection:` header — the caller (the per-connection request loop)
/// owns the decision and must actually close the stream when it says
/// `close`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str(connection_header(keep_alive));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    }
}

/// Writes one `Transfer-Encoding: chunked` response and flushes: the
/// artifact-streaming shape of `POST /v1/run`. The payload bytes the
/// client reassembles are exactly `body` — chunking is framing, not
/// content — so artifact responses stay byte-identical to the CLI files.
pub fn write_chunked(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Transfer-Encoding: chunked\r\n");
    head.push_str(connection_header(keep_alive));
    stream.write_all(head.as_bytes())?;
    for chunk in body.chunks(CHUNK_BYTES) {
        write!(stream, "{:x}\r\n", chunk.len())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// A plain-text error response body (`gmark: <message>`), mirroring the
/// CLI's stderr shape.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let body = format!("gmark: {message}\n");
    write_response(
        stream,
        status,
        &[("Content-Type", "text/plain; charset=utf-8")],
        body.as_bytes(),
        keep_alive,
    )
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response read back by [`fetch`].
#[derive(Debug)]
pub struct ClientResponse {
    /// The response status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The reassembled body (chunked responses are de-chunked).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with this (case-insensitive) name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server announced it will close the connection after
    /// this response — a [`Client`] holder must reconnect before the
    /// next request.
    pub fn close_after(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A minimal blocking HTTP/1.1 client for one request: what the
/// integration tests and the `serve_sweep` bench driver speak to the
/// server (curl fills the same role in CI). De-chunks chunked responses;
/// otherwise reads to `Content-Length` (or connection close).
pub fn fetch(
    addr: impl ToSocketAddrs,
    method: &str,
    path_and_query: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let _ = stream.set_nodelay(true);
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: gmark\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    // A server may answer before reading the whole request (a 429 from
    // admission control does exactly that) — a write failure is only
    // fatal if no response can be read afterwards.
    let wrote = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush());

    let mut raw = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let read_outcome = loop {
        match stream.read(&mut buf) {
            Ok(0) => break Ok(()),
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            // A reset after the response bytes arrived still counts —
            // keep what we have if it parses.
            Err(e) => break Err(e),
        }
    };
    if raw.is_empty() {
        wrote?;
        read_outcome?;
    }
    parse_client_response(&raw)
}

/// Parses a response head (status line + headers, without the blank
/// line) into `(status, lowercased headers)`.
fn parse_response_head(head: &[u8]) -> io::Result<(u16, Vec<(String, String)>)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("response: {what}"));
    let head = std::str::from_utf8(head).map_err(|_| bad("head not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("no status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok((status, headers))
}

fn parse_client_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("response: {what}"));
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no head terminator"))?;
    let (status, headers) = parse_response_head(&raw[..head_end])?;
    let payload = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        dechunk(payload).ok_or_else(|| bad("bad chunked framing"))?
    } else {
        payload.to_vec()
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// A reusable HTTP/1.1 client: one TCP connection, many requests.
///
/// Where [`fetch`] sends `Connection: close` and reads to EOF, this
/// client leaves the connection open and frames each response exactly
/// (by `Content-Length`, or chunk by chunk) so the next request can ride
/// the same socket — the client half of the server's keep-alive fast
/// path. The integration tests' keep-alive pins and the `drive` /
/// `serve_sweep` bench drivers use it. After a response announcing
/// `Connection: close` ([`ClientResponse::close_after`]) the holder must
/// reconnect.
pub struct Client {
    stream: TcpStream,
    /// Socket bytes read but not yet consumed by response framing.
    buf: Vec<u8>,
}

impl Client {
    /// Connects, with the same generous timeouts as [`fetch`].
    /// `TCP_NODELAY` is set: a request/response protocol writing small
    /// frames on a reused connection would otherwise trip over Nagle +
    /// delayed-ACK stalls (~40 ms per request).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(120)))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads exactly one framed response, leaving
    /// the connection ready for the next call (unless the response says
    /// otherwise).
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nHost: gmark\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;

        // Head: buffer until the blank line.
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p;
            }
            self.fill()?;
        };
        let head: Vec<u8> = self.buf.drain(..head_end + 4).collect();
        let (status, headers) = parse_response_head(&head[..head_end])?;

        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            let mut out = Vec::new();
            loop {
                let size_line = self.take_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response: bad chunk size {size_line:?}"),
                    )
                })?;
                // Chunk payload plus its trailing CRLF (the zero chunk
                // has an empty payload, so this consumes the final one).
                let mut chunk = self.take(size + 2)?;
                if size == 0 {
                    break;
                }
                chunk.truncate(size);
                out.append(&mut chunk);
            }
            out
        } else {
            let length = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0);
            self.take(length)?
        };
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Reads more socket bytes into the buffer; EOF is an error here
    /// because framing said more bytes must come.
    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Consumes exactly `n` bytes off the front of the stream.
    fn take(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.buf.len() < n {
            self.fill()?;
        }
        Ok(self.buf.drain(..n).collect())
    }

    /// Consumes one CRLF-terminated line (without the terminator).
    fn take_line(&mut self) -> io::Result<String> {
        let end = loop {
            if let Some(p) = self.buf.windows(2).position(|w| w == b"\r\n") {
                break p;
            }
            self.fill()?;
        };
        let line: Vec<u8> = self.buf.drain(..end + 2).collect();
        String::from_utf8(line[..end].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response line not UTF-8"))
    }
}

fn dechunk(mut payload: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line_end = payload.windows(2).position(|w| w == b"\r\n")?;
        let size_text = std::str::from_utf8(&payload[..line_end]).ok()?;
        let size = usize::from_str_radix(size_text.trim(), 16).ok()?;
        payload = &payload[line_end + 2..];
        if size == 0 {
            return Some(out);
        }
        if payload.len() < size + 2 {
            return None;
        }
        out.extend_from_slice(&payload[..size]);
        payload = &payload[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_plus() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("no-escapes"), "no-escapes");
        assert_eq!(percent_decode("dangling%2"), "dangling%2");
        assert_eq!(percent_decode("%3Cxml%3E"), "<xml>");
    }

    #[test]
    fn dechunking_reassembles_the_payload() {
        let framed = b"3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n";
        assert_eq!(dechunk(framed).unwrap(), b"abcdefg");
        assert_eq!(dechunk(b"0\r\n\r\n").unwrap(), b"");
        assert!(dechunk(b"5\r\nab\r\n").is_none(), "truncated chunk");
    }

    #[test]
    fn client_response_parser_reads_status_headers_and_body() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi".to_vec();
        let resp = parse_client_response(&raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(resp.body, b"hi");

        let chunked =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhi\r\n0\r\n\r\n".to_vec();
        assert_eq!(parse_client_response(&chunked).unwrap().body, b"hi");
    }
}
