//! # gMark — schema-driven generation of graphs and queries
//!
//! A Rust implementation of *gMark: Schema-Driven Generation of Graphs and
//! Queries* (Bagan, Bonifati, Ciucanu, Fletcher, Lemay, Advokaat — ICDE
//! 2017 / IEEE TKDE): a domain- and query-language-independent generator of
//! synthetic graph instances and UCRPQ query workloads with
//! **schema-driven selectivity control**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — schemas, the linear-time graph generator, UCRPQ queries,
//!   selectivity estimation, workload generation, the four paper use cases;
//! * [`store`] — CSR graph storage and N-Triples I/O;
//! * [`stats`] — deterministic RNG, degree-distribution samplers,
//!   regression;
//! * [`config`] — XML configuration files;
//! * [`translate`] — SPARQL / openCypher / SQL / Datalog output;
//! * [`engines`] — four UCRPQ evaluation engines (relational, triple-store,
//!   navigational, Datalog) used by the paper-reproduction experiments.
//!
//! ## Quickstart
//!
//! ```
//! use gmark::prelude::*;
//!
//! // The paper's bibliographical scenario (Fig. 2), 1 000 nodes.
//! let schema = gmark::core::usecases::bib();
//! let config = GraphConfig::new(1_000, schema.clone());
//! let (graph, report) = generate_graph(&config, &GeneratorOptions::with_seed(42));
//! assert!(report.total_edges > 0);
//!
//! // A 9-query workload: 3 constant, 3 linear, 3 quadratic chains.
//! // (Pass a thread count to generate_workload_with_threads for the
//! // parallel pipeline — output is bit-identical either way.)
//! let (workload, _) = generate_workload(&schema, &WorkloadConfig::new(9)).unwrap();
//! assert_eq!(workload.queries.len(), 9);
//!
//! // Evaluate one query and translate it to SPARQL.
//! let query = &workload.queries[0].query;
//! let answers = RelationalEngine
//!     .evaluate(&graph, query, &Budget::default())
//!     .unwrap();
//! let _count = answers.count();
//! let _sparql = gmark::translate::sparql::translate(query, &schema);
//! ```

pub use gmark_config as config;
pub use gmark_core as core;
pub use gmark_engines as engines;
pub use gmark_stats as stats;
pub use gmark_store as store;
pub use gmark_translate as translate;

/// The most common imports in one place.
pub mod prelude {
    pub use gmark_core::gen::{generate_graph, generate_into, GeneratorOptions};
    pub use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
    pub use gmark_core::schema::{
        Distribution, GraphConfig, Occurrence, PredicateId, Schema, SchemaBuilder, TypeId,
    };
    pub use gmark_core::selectivity::SelectivityClass;
    pub use gmark_core::workload::{
        generate_workload, generate_workload_with_threads, QuerySize, Shape, Workload,
        WorkloadConfig, WorkloadError,
    };
    pub use gmark_engines::{
        all_engines, Answers, Budget, DatalogEngine, Engine, EvalError, NavigationalEngine,
        RelationalEngine, TripleStoreEngine,
    };
    pub use gmark_store::{EdgeSink, Graph, GraphBuilder, NodeId, TypePartition};
}
