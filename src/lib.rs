//! # gMark — schema-driven generation of graphs and queries
//!
//! A Rust implementation of *gMark: Schema-Driven Generation of Graphs and
//! Queries* (Bagan, Bonifati, Ciucanu, Fletcher, Lemay, Advokaat — ICDE
//! 2017 / IEEE TKDE): a domain- and query-language-independent generator of
//! synthetic graph instances and UCRPQ query workloads with
//! **schema-driven selectivity control**.
//!
//! ## The pipeline API
//!
//! The paper's Fig. 1 workflow — schema → graph instance → query workload
//! → concrete syntaxes — is exposed as one typed pipeline in [`run`]:
//! a [`RunPlan`](run::RunPlan) (*what* to generate, from XML or a fluent
//! builder), [`RunOptions`](run::RunOptions) (*how*: seed, threads,
//! streaming), and a [`Sink`](run::Sink) (*where* the bytes go). Every
//! failure surfaces as one [`GmarkError`](run::GmarkError); every run
//! returns a JSON-serializable [`RunSummary`](run::RunSummary). The
//! `gmark` CLI is a thin client of exactly this surface.
//!
//! ```
//! use gmark::run::{run, Artifact, MemorySink, RunOptions, RunPlan};
//! use gmark::prelude::*;
//!
//! // The paper's bibliographical scenario (Fig. 2), 1 000 nodes, with a
//! // 9-query workload: 3 constant, 3 linear, 3 quadratic chains.
//! let plan = RunPlan::builder(gmark::core::usecases::bib())
//!     .nodes(1_000)
//!     .workload(WorkloadConfig::new(9))
//!     .build()?;
//!
//! let mut sink = MemorySink::new();
//! let summary = run(&plan, &RunOptions::with_seed(42), &mut sink)?;
//! assert!(summary.graph.as_ref().unwrap().edges_written > 0);
//! assert_eq!(summary.workload.as_ref().unwrap().produced, 9);
//! assert!(!sink.bytes(Artifact::Sparql).unwrap().is_empty());
//!
//! // Embedding? Materialize instead of serializing, then evaluate.
//! let arts = gmark::run::run_in_memory(&plan, &RunOptions::with_seed(42))?;
//! let (graph, workload) = (arts.graph.unwrap(), arts.workload.unwrap());
//! let answers = RelationalEngine
//!     .evaluate(&graph, &workload.queries[0].query, &Budget::default())
//!     .unwrap();
//! let _count = answers.count();
//! # Ok::<(), gmark::run::GmarkError>(())
//! ```
//!
//! Everything generated is a pure function of the plan and the seed:
//! thread count, streaming mode, and sink choice never change a byte (see
//! the [`run`] module docs for the exact guarantee).
//!
//! ## Migrating from the pre-`run` free functions
//!
//! The per-crate entry points remain available as documented
//! pass-throughs, but new code should compose plans:
//!
//! | old free-function surface | new pipeline surface |
//! |---|---|
//! | `parse_config(&xml)` + hand-rolled orchestration | [`run::RunPlan::from_xml`] / [`run::RunPlan::from_config_file`] + [`run::run`] |
//! | `generate_graph(&config, &GeneratorOptions { .. })` | [`run::run_in_memory`] (graph in [`run::RunArtifacts::graph`]) |
//! | `generate_into(&config, &opts, &mut writer)` | [`run::run`] with a custom [`run::Sink`] |
//! | `generate_streamed(&config, &opts, &stream_opts, &mut out)` | [`run::run`] with [`run::RunOptions::stream`] |
//! | `generate_workload[_with_threads](&schema, &cfg, ..)` | [`run::run_in_memory`] (workload in [`run::RunArtifacts::workload`]) |
//! | `stream_workload(&schema, &cfg, &opts, &mut outs)` | [`run::run`] (the five workload artifacts) |
//! | `ConfigError` / `WorkloadError` / `TranslateError` / `EvalError` / `io::Error` juggling | [`run::GmarkError`] |
//! | scraping `report.txt` | [`run::RunSummary::to_json`] (`--format json`) |
//! | `EvalContext::new(&graph)` over a `&Graph` only | `EvalContext::new(view)` over a [`store::GraphView`] — `&Graph` still converts via `Into`, and [`store::StoreReader`] plugs in the on-disk paged store |
//!
//! Evaluation no longer requires a materialized [`store::Graph`]: every
//! engine reads through [`store::GraphView`], so a paged
//! [`store::StoreReader`] (`--store` / `--from-store` on the CLI,
//! [`run::RunPlan`]'s `store` output + `from_store` input in the API)
//! evaluates beyond-RAM instances through the identical code path.
//!
//! ## Workspace layout
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — schemas, the linear-time graph generator, UCRPQ queries,
//!   selectivity estimation, workload generation, the four paper use cases;
//! * [`store`] — CSR graph storage, the on-disk paged store
//!   ([`store::StoreWriter`] / [`store::StoreReader`]), the
//!   [`store::GraphView`] read abstraction, and N-Triples I/O;
//! * [`stats`] — deterministic RNG, degree-distribution samplers,
//!   regression;
//! * [`config`] — XML configuration files;
//! * [`translate`] — SPARQL / openCypher / SQL / Datalog output;
//! * [`engines`] — four UCRPQ evaluation engines (relational, triple-store,
//!   navigational, Datalog) used by the paper-reproduction experiments;
//! * [`run`] — the unified pipeline API tying them together;
//! * [`serve`] — the benchmark-as-a-service HTTP daemon behind
//!   `gmark serve`.

#![deny(missing_docs)]

pub use gmark_config as config;
pub use gmark_core as core;
pub use gmark_engines as engines;
pub use gmark_stats as stats;
pub use gmark_store as store;
pub use gmark_translate as translate;

pub mod run;
pub mod serve;

/// The most common imports in one place.
///
/// The first block is the unified pipeline surface ([`run`]); the rest are
/// the underlying building blocks — still fully supported, and the right
/// tools when you need a single layer (a schema, one engine, one
/// translator) rather than the whole pipeline.
pub mod prelude {
    pub use crate::run::{
        run, run_in_memory, Artifact, DirSink, EvalRunSummary, EvalSpec, GmarkError, MemorySink,
        NullSink, OutputSelection, RunArtifacts, RunOptions, RunPlan, RunPlanBuilder, RunSummary,
        Sink,
    };

    pub use gmark_core::gen::{generate_graph, generate_into, GeneratorOptions};
    pub use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
    pub use gmark_core::schema::{
        Distribution, GraphConfig, Occurrence, PredicateId, Schema, SchemaBuilder, TypeId,
    };
    pub use gmark_core::selectivity::SelectivityClass;
    pub use gmark_core::workload::{
        generate_workload, generate_workload_with_threads, QuerySize, Shape, Workload,
        WorkloadConfig, WorkloadError,
    };
    pub use gmark_engines::{
        all_engines, evaluate_matrix, evaluate_matrix_with_schema, plan_query, Answers, Budget,
        CellBudget, CellOutcome, DatalogEngine, Engine, EngineKind, EvalContext, EvalError,
        EvalReport, MatrixOptions, NavigationalEngine, PlanQuality, QueryPlan, RelationalEngine,
        TripleStoreEngine,
    };
    pub use gmark_store::{EdgeSink, Graph, GraphBuilder, NodeId, TypePartition};
}
