//! The gMark command-line tool: a thin client of [`gmark::run`].
//!
//! Parses arguments into a [`RunPlan`] + [`RunOptions`], executes them
//! through a [`DirSink`], and prints the [`RunSummary`] — human-readable
//! by default, machine-readable JSON with `--format json`. All
//! orchestration (which pipeline runs, in which mode, where shard scratch
//! lives, what the report contains) is owned by the library.
//!
//! Outputs, inside `--output <dir>`:
//!
//! * `graph.nt` — the instance as N-Triples,
//! * `graph.gstore` — the instance as an on-disk paged store (with
//!   `--store`); combined with `--stream`, evaluation pages through this
//!   file instead of an in-memory graph,
//! * `workload.txt` — the queries in the paper's rule notation,
//! * `workload.sparql` / `.cypher` / `.sql` / `.datalog` — the four
//!   concrete syntaxes,
//! * `eval.txt` — the (query × engine) evaluation matrix (with `--eval`),
//! * `report.txt` — generation statistics and consistency-check findings,
//! * `summary.json` — the run summary (with `--format json`).
//!
//! ```sh
//! gmark --config config.xml --output out/ [--seed N] [--nodes N] \
//!       [--threads T] [--stream] [--store] [--queries-only] \
//!       [--format text|json] [--eval] [--engines P,G,S,D] \
//!       [--budget-ms N] [--max-tuples N] [--from-store FILE]
//! gmark --verify-store out/graph.gstore
//! ```
//!
//! `--threads` governs every pipeline stage — graph constraints, workload
//! queries, and the `--eval` matrix fan out over the same number of
//! workers — and every output file is byte-identical at every thread
//! count, including 1.

use gmark::engines::EngineKind;
use gmark::run::{run, DirSink, EvalSpec, GmarkError, RunOptions, RunPlan};
use gmark::serve::{ServeConfig, Server};
use gmark::store::StoreReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Which rendering of the run summary goes to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// The human-readable banner (default).
    Text,
    /// The `RunSummary` as one JSON object (also written to
    /// `summary.json`), so harnesses stop scraping `report.txt`.
    Json,
}

#[derive(Debug)]
struct Args {
    config: PathBuf,
    output: PathBuf,
    seed: Option<u64>,
    nodes: Option<u64>,
    /// Worker threads; 0 = auto-detect (`available_parallelism`).
    threads: usize,
    stream: bool,
    /// Also write the graph as an on-disk paged store (graph.gstore).
    store: bool,
    /// Evaluate against an existing store file instead of generating a
    /// graph (requires --eval).
    from_store: Option<PathBuf>,
    /// Generate the query workload only; skip the graph instance.
    queries_only: bool,
    /// Run the generated workload through the evaluation engines.
    eval: bool,
    /// Engine selection for `--eval` (report column order).
    engines: Option<Vec<EngineKind>>,
    /// Per-cell wall-clock budget in milliseconds (0 = unlimited).
    budget_ms: Option<u64>,
    /// Per-cell tuple cap.
    max_tuples: Option<usize>,
    /// Disable the schema-statistics query planner for `--eval`.
    no_plan: bool,
    /// Disable the cross-cell sub-expression result cache for `--eval`.
    no_eval_cache: bool,
    /// Byte budget for the sub-expression cache, in MiB.
    eval_cache_mb: Option<usize>,
    format: Format,
}

/// A fully parsed command line: either a run to execute, or an informational
/// early exit (`--help` / `--version`) whose text the caller prints before
/// returning success — parsing never terminates the process itself, so
/// destructors run and `main`'s `ExitCode` stays authoritative.
#[derive(Debug)]
enum Parsed {
    Run(Box<Args>),
    /// `--verify-store <file>`: a standalone mode — open the store, check
    /// structure and checksum, print its shape. No config or output
    /// directory involved.
    VerifyStore(PathBuf),
    /// `serve …`: run the benchmark-as-a-service daemon until SIGTERM.
    Serve(ServeConfig),
    EarlyExit(String),
}

const USAGE: &str = "gmark --config <file.xml> --output <dir> [--seed N] [--nodes N] \
[--threads T] [--stream] [--store] [--queries-only] [--format text|json] \
[--eval] [--engines P,G,S,D] [--budget-ms N] [--max-tuples N] [--no-plan] \
[--no-eval-cache] [--eval-cache-mb N] [--from-store FILE]\n\
gmark --verify-store <file.gstore>\n\
gmark serve [--addr HOST:PORT] [--workers N] [--cache-mb MiB] \
[--queue-depth N] [--deadline-ms N] [--keep-alive-ms N] \
[--max-requests-per-conn N]\n\n\
  --threads T     worker threads for EVERY pipeline stage (graph\n\
                  constraints, workload queries, and the --eval matrix);\n\
                  0 auto-detects the available parallelism. Every output\n\
                  file is byte-identical at every thread count,\n\
                  including 1.\n\
  --stream        memory-bounded graph pipeline: stream N-Triples through\n\
                  per-constraint shard files instead of materializing the\n\
                  graph. Also byte-identical for every thread count. The\n\
                  streamed serialization keeps generation order and\n\
                  duplicate triples; the default serialization is sorted\n\
                  and deduplicated (same edge set either way). Combinable\n\
                  with --eval only alongside --store (the engines then\n\
                  page through the store instead of an in-memory graph).\n\
  --store         also write the graph as an on-disk paged store\n\
                  (graph.gstore): a checksummed binary CSR the evaluation\n\
                  engines can page through without materializing the\n\
                  graph. Store bytes are identical at every thread count\n\
                  and in both pipelines; with --stream the whole\n\
                  generate-and-evaluate loop runs beyond-RAM.\n\
  --from-store F  evaluate against an existing graph.gstore instead of\n\
                  generating a graph (requires --eval; the config must\n\
                  describe the same schema the store was built from).\n\
  --verify-store F  standalone mode: validate an existing store file —\n\
                  structure, offsets, and whole-file checksum — naming\n\
                  the corrupt page on failure, then print its shape.\n\
  --queries-only  generate the query workload from the schema without\n\
                  building the graph at all (no graph.nt); the config must\n\
                  have a <workload> section. Not combinable with --eval.\n\
  --eval          after generating, run every workload query through the\n\
                  evaluation engines against the generated graph (or the\n\
                  paged store, with --stream --store / --from-store) and\n\
                  write the (query x engine) outcome matrix to eval.txt\n\
                  (plus the eval rows of summary.json). The matrix is\n\
                  byte-identical at every thread count whenever cell\n\
                  outcomes cannot race the per-cell deadline — use\n\
                  --budget-ms 0 for the fully deterministic regime.\n\
  --engines LIST  engine columns for --eval, comma-separated paper\n\
                  letters in report order (default P,G,S,D):\n\
                  P relational, G navigational (degraded openCypher\n\
                  semantics), S triple store, D Datalog.\n\
  --budget-ms N   per-cell wall-clock budget for --eval in milliseconds\n\
                  (default 10000); 0 removes the time limit, making cell\n\
                  outcomes machine-independent.\n\
  --max-tuples N  per-cell tuple cap for --eval (default 20000000);\n\
                  exceeding it reports the cell as too-large.\n\
  --no-plan       disable the schema-statistics query planner for --eval:\n\
                  engines fall back to declaration-order / per-engine\n\
                  heuristic joins and eval.txt drops the est~actual\n\
                  annotations. Answers never depend on this flag.\n\
  --no-eval-cache disable the cross-cell sub-expression result cache for\n\
                  --eval: every cell recomputes its sub-expressions from\n\
                  scratch. Cell outcomes and answer cardinalities never\n\
                  depend on this flag; only wall-clock time does.\n\
  --eval-cache-mb N  byte budget for the sub-expression cache in MiB\n\
                  (default 64). Must be positive; use --no-eval-cache to\n\
                  turn the cache off entirely.\n\
  --format F      what to print on stdout: 'text' (default, human-readable\n\
                  banner) or 'json' (the machine-readable RunSummary, also\n\
                  written to summary.json in the output directory).\n\
  --version       print the version and exit.\n\n\
serve mode (benchmark-as-a-service daemon; POST /v1/run a schema XML\n\
or {\"schema_xml\": …} body with CLI-shaped query parameters, stream\n\
the artifact back; GET /v1/run/<id>/summary, /v1/stats, /healthz):\n\
  --addr A        listen address (default 127.0.0.1:7878; port 0 picks\n\
                  a free port and prints it).\n\
  --workers N     worker threads draining the accept queue (default 4).\n\
  --cache-mb M    snapshot cache byte budget in MiB (default 256);\n\
                  identical plans are served from cache, paying the\n\
                  run exactly once. 0 disables retention.\n\
  --queue-depth N accept-queue capacity (default 64); connections past\n\
                  it are answered 429 with Retry-After.\n\
  --deadline-ms N default per-request deadline; requests still queued\n\
                  past it are answered 503 (default 0 = none).\n\
  --keep-alive-ms N  idle window for HTTP/1.1 keep-alive: how long a\n\
                  worker waits for the next request on a persistent\n\
                  connection before closing it (default 5000;\n\
                  0 disables keep-alive, every response closes).\n\
  --max-requests-per-conn N  requests served per connection before the\n\
                  server closes it and returns the worker to the queue\n\
                  (default 1000, minimum 1).\n\
SIGTERM/SIGINT drain admitted requests, then exit 0.";

fn parse_args(argv: &[String]) -> Result<Parsed, String> {
    if argv.first().map(String::as_str) == Some("serve") {
        return parse_serve_args(&argv[1..]);
    }
    let mut config = None;
    let mut output = None;
    let mut seed = None;
    let mut nodes = None;
    let mut threads = 1usize;
    let mut stream = false;
    let mut store = false;
    let mut from_store = None;
    let mut queries_only = false;
    let mut eval = false;
    let mut engines = None;
    let mut budget_ms = None;
    let mut max_tuples = None;
    let mut no_plan = false;
    let mut no_eval_cache = false;
    let mut eval_cache_mb = None;
    let mut format = Format::Text;
    let mut i = 0;
    while i < argv.len() {
        // Takes the value following `argv[i]`, naming the flag (not a
        // positional guess) in the error when the value is missing.
        let take_value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let flag = argv[i].clone();
        match flag.as_str() {
            "--config" | "-c" => config = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--output" | "-o" => output = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--seed" => {
                let v = take_value(&mut i, &flag)?;
                seed = Some(v.parse().map_err(|_| {
                    format!("--seed: expected an unsigned 64-bit integer, got {v:?}")
                })?)
            }
            "--nodes" | "-n" => {
                let v = take_value(&mut i, &flag)?;
                nodes =
                    Some(v.parse().map_err(|_| {
                        format!("{flag}: expected a positive node count, got {v:?}")
                    })?)
            }
            "--threads" => {
                let v = take_value(&mut i, &flag)?;
                threads = v.parse().map_err(|_| {
                    format!(
                        "--threads: expected a non-negative integer (0 = auto-detect), got {v:?}"
                    )
                })?
            }
            "--stream" => stream = true,
            "--store" => store = true,
            "--from-store" => from_store = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--verify-store" => {
                return Ok(Parsed::VerifyStore(PathBuf::from(take_value(
                    &mut i, &flag,
                )?)));
            }
            "--queries-only" => queries_only = true,
            "--eval" => eval = true,
            "--engines" => {
                let v = take_value(&mut i, &flag)?;
                engines = Some(EngineKind::parse_list(&v).map_err(|e| format!("--engines: {e}"))?);
            }
            "--budget-ms" => {
                let v = take_value(&mut i, &flag)?;
                budget_ms = Some(v.parse().map_err(|_| {
                    format!("--budget-ms: expected a millisecond count (0 = unlimited), got {v:?}")
                })?)
            }
            "--max-tuples" => {
                let v = take_value(&mut i, &flag)?;
                let cap: usize = v.parse().map_err(|_| {
                    format!("--max-tuples: expected a positive tuple cap, got {v:?}")
                })?;
                if cap == 0 {
                    // Unlike --budget-ms, 0 does not mean "unlimited" here
                    // — it would deterministically fail every non-empty
                    // cell. Reject it instead of producing useless output.
                    return Err(
                        "--max-tuples: the cap must be positive (every non-empty cell \
                         would report too-large); omit the flag for the default cap"
                            .to_owned(),
                    );
                }
                max_tuples = Some(cap)
            }
            "--no-plan" => no_plan = true,
            "--no-eval-cache" => no_eval_cache = true,
            "--eval-cache-mb" => {
                let v = take_value(&mut i, &flag)?;
                let mb: usize = v.parse().map_err(|_| {
                    format!("--eval-cache-mb: expected a cache budget in MiB, got {v:?}")
                })?;
                if mb == 0 {
                    // A zero byte budget would silently behave like
                    // --no-eval-cache; make the intent explicit instead.
                    return Err(
                        "--eval-cache-mb: the budget must be positive; use --no-eval-cache \
                         to disable the cache"
                            .to_owned(),
                    );
                }
                eval_cache_mb = Some(mb)
            }
            "--format" => {
                format = match take_value(&mut i, &flag)?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format: expected text|json, got {other:?}")),
                }
            }
            "--version" | "-V" => {
                return Ok(Parsed::EarlyExit(format!(
                    "gmark {}",
                    env!("CARGO_PKG_VERSION")
                )));
            }
            "--help" | "-h" => {
                return Ok(Parsed::EarlyExit(USAGE.to_owned()));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if !eval
        && (engines.is_some()
            || budget_ms.is_some()
            || max_tuples.is_some()
            || no_plan
            || no_eval_cache
            || eval_cache_mb.is_some())
    {
        return Err(
            "--engines/--budget-ms/--max-tuples/--no-plan/--no-eval-cache/--eval-cache-mb \
             require --eval"
                .to_owned(),
        );
    }
    if no_eval_cache && eval_cache_mb.is_some() {
        return Err(
            "--no-eval-cache disables the cache --eval-cache-mb would size; pick one".to_owned(),
        );
    }
    if eval && queries_only {
        return Err("--eval needs the graph instance; drop --queries-only".to_owned());
    }
    if from_store.is_some() && !eval {
        return Err("--from-store is only consumed by --eval".to_owned());
    }
    if from_store.is_some() && (store || stream || queries_only) {
        return Err(
            "--from-store replaces graph generation; drop --store/--stream/--queries-only"
                .to_owned(),
        );
    }
    if store && queries_only {
        return Err("--queries-only generates no graph to store; drop --store".to_owned());
    }
    if eval && stream && !store {
        return Err(
            "--eval with --stream needs the on-disk store: add --store (the engines \
             then page through graph.gstore) or drop --stream"
                .to_owned(),
        );
    }
    Ok(Parsed::Run(Box::new(Args {
        config: config.ok_or("--config is required")?,
        output: output.ok_or("--output is required")?,
        seed,
        nodes,
        threads,
        stream,
        store,
        from_store,
        queries_only,
        eval,
        engines,
        budget_ms,
        max_tuples,
        no_plan,
        no_eval_cache,
        eval_cache_mb,
        format,
    })))
}

/// Parses everything after the `serve` subcommand word.
fn parse_serve_args(argv: &[String]) -> Result<Parsed, String> {
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let flag = argv[i].clone();
        match flag.as_str() {
            "--addr" => config.addr = take_value(&mut i, &flag)?,
            "--workers" => {
                let v = take_value(&mut i, &flag)?;
                let n: usize = v.parse().map_err(|_| {
                    format!("--workers: expected a positive thread count, got {v:?}")
                })?;
                if n == 0 {
                    return Err("--workers: the pool needs at least one thread".to_owned());
                }
                config.workers = n;
            }
            "--cache-mb" => {
                let v = take_value(&mut i, &flag)?;
                config.cache_mb = v.parse().map_err(|_| {
                    format!("--cache-mb: expected a budget in MiB (0 = no retention), got {v:?}")
                })?;
            }
            "--queue-depth" => {
                let v = take_value(&mut i, &flag)?;
                let depth: usize = v.parse().map_err(|_| {
                    format!("--queue-depth: expected a positive queue capacity, got {v:?}")
                })?;
                if depth == 0 {
                    return Err(
                        "--queue-depth: a zero-capacity queue would reject every request"
                            .to_owned(),
                    );
                }
                config.queue_depth = depth;
            }
            "--deadline-ms" => {
                let v = take_value(&mut i, &flag)?;
                config.deadline_ms = v.parse().map_err(|_| {
                    format!("--deadline-ms: expected a millisecond count (0 = none), got {v:?}")
                })?;
            }
            "--keep-alive-ms" => {
                let v = take_value(&mut i, &flag)?;
                config.keep_alive_ms = v.parse().map_err(|_| {
                    format!(
                        "--keep-alive-ms: expected a millisecond idle window \
                         (0 = no keep-alive), got {v:?}"
                    )
                })?;
            }
            "--max-requests-per-conn" => {
                let v = take_value(&mut i, &flag)?;
                let n: usize = v.parse().map_err(|_| {
                    format!("--max-requests-per-conn: expected a positive count, got {v:?}")
                })?;
                if n == 0 {
                    return Err(
                        "--max-requests-per-conn: a connection must carry at least one request"
                            .to_owned(),
                    );
                }
                config.max_requests_per_conn = n;
            }
            "--help" | "-h" => return Ok(Parsed::EarlyExit(USAGE.to_owned())),
            other => return Err(format!("serve: unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(Parsed::Serve(config))
}

/// The `serve` mode: run the daemon until SIGTERM/SIGINT, then drain and
/// exit cleanly.
fn serve_daemon(config: ServeConfig) -> Result<(), GmarkError> {
    let stop = gmark::serve::request_shutdown_on_signals();
    let server =
        Server::start(config).map_err(|e| GmarkError::io("binding the serve listener", e))?;
    println!(
        "gmark serve: listening on http://{} (POST /v1/run; SIGTERM drains and exits)",
        server.local_addr()
    );
    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("gmark serve: shutdown requested, draining");
    server.shutdown();
    eprintln!("gmark serve: drained, bye");
    Ok(())
}

fn execute(args: &Args) -> Result<(), GmarkError> {
    // What to generate…
    let mut plan = RunPlan::from_config_file(&args.config)?;
    if let Some(n) = args.nodes {
        plan = plan.with_nodes(n);
    }
    if args.queries_only {
        if plan.workload.is_none() {
            return Err(GmarkError::Plan(format!(
                "--queries-only: {} has no <workload> section",
                args.config.display()
            )));
        }
        plan.outputs.graph = false;
    }
    if args.eval {
        if plan.workload.is_none() {
            return Err(GmarkError::Plan(format!(
                "--eval: {} has no <workload> section to evaluate",
                args.config.display()
            )));
        }
        let mut spec = EvalSpec::default();
        if let Some(engines) = &args.engines {
            spec.engines = engines.clone();
        }
        if let Some(ms) = args.budget_ms {
            spec.budget_ms = ms;
        }
        if let Some(cap) = args.max_tuples {
            spec.max_tuples = cap;
        }
        spec.plan = !args.no_plan;
        spec.cache = !args.no_eval_cache;
        if let Some(mb) = args.eval_cache_mb {
            spec.cache_mb = mb;
        }
        plan.eval = Some(spec);
    }
    if args.store {
        plan.outputs.store = true;
    }
    if let Some(path) = &args.from_store {
        plan.outputs.graph = false;
        plan.from_store = Some(path.clone());
    }

    // …how…
    let opts = RunOptions {
        seed: args.seed,
        threads: args.threads,
        stream: args.stream,
        ..RunOptions::default()
    };

    // …and where. The library does the rest. (DirSink::new already
    // annotates its error with the directory path.)
    let mut sink = DirSink::new(&args.output)?.with_summary_json(args.format == Format::Json);
    let summary = run(&plan, &opts, &mut sink)?;

    match args.format {
        Format::Json => println!("{}", summary.to_json()),
        Format::Text => {
            print!("{summary}");
            println!("report -> {}/report.txt", args.output.display());
        }
    }
    Ok(())
}

/// The `--verify-store` mode: structural validation (offsets, bounds,
/// monotonicity — corruption names the bad page) plus the whole-file
/// checksum, then a one-line shape description.
fn verify_store(path: &Path) -> Result<String, GmarkError> {
    let reader = StoreReader::open(path)?;
    reader.verify()?;
    let info = reader.info();
    Ok(format!(
        "{}: ok ({} nodes, {} predicates, {} edges, {} bytes, page size {})",
        path.display(),
        reader.node_count(),
        reader.predicate_count(),
        info.edges,
        info.bytes,
        info.page_size,
    ))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(Parsed::EarlyExit(text)) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Ok(Parsed::VerifyStore(path)) => match verify_store(&path) {
            Ok(line) => {
                println!("{line}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gmark: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Parsed::Run(args)) => match execute(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gmark: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Parsed::Serve(config)) => match serve_daemon(config) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gmark: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("gmark: {e}");
            eprintln!("usage: {USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn version_and_help_are_early_exits_not_process_exits() {
        for flags in [&["--version"][..], &["-V"], &["--help"], &["-h"]] {
            match parse_args(&argv(flags)).expect("parses") {
                Parsed::EarlyExit(text) => assert!(!text.is_empty()),
                other => panic!("{flags:?} should early-exit, got {other:?}"),
            }
        }
    }

    #[test]
    fn early_exit_wins_even_mid_command_line() {
        let parsed = parse_args(&argv(&["--config", "x.xml", "--version"])).expect("parses");
        assert!(matches!(parsed, Parsed::EarlyExit(_)));
    }

    #[test]
    fn format_flag_parses_and_rejects_garbage() {
        let parsed = parse_args(&argv(&[
            "--config", "c.xml", "--output", "o", "--format", "json",
        ]))
        .expect("parses");
        match parsed {
            Parsed::Run(args) => assert_eq!(args.format, Format::Json),
            other => panic!("expected a run, got {other:?}"),
        }
        assert!(parse_args(&argv(&["--format", "yaml"])).is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse_args(&argv(&["--output", "o"])).is_err());
        assert!(parse_args(&argv(&["--config", "c.xml"])).is_err());
        assert!(parse_args(&argv(&["--bogus"])).is_err());
    }

    #[test]
    fn eval_flags_parse_and_enforce_their_preconditions() {
        let parsed = parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--engines",
            "S,D",
            "--budget-ms",
            "500",
            "--max-tuples",
            "1000",
            "--no-plan",
        ]))
        .expect("parses");
        match parsed {
            Parsed::Run(args) => {
                assert!(args.eval);
                assert_eq!(
                    args.engines.as_deref(),
                    Some(&[EngineKind::TripleStore, EngineKind::Datalog][..])
                );
                assert_eq!(args.budget_ms, Some(500));
                assert_eq!(args.max_tuples, Some(1000));
                assert!(args.no_plan);
            }
            other => panic!("expected a run, got {other:?}"),
        }

        // Eval sub-flags without --eval are rejected.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--engines",
            "P"
        ]))
        .is_err());
        assert!(parse_args(&argv(&["--config", "c.xml", "--output", "o", "--no-plan"])).is_err());
        // Conflicting modes are rejected at parse time.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--queries-only"
        ]))
        .is_err());
        // --eval --stream without a store has no graph for the engines…
        assert!(parse_args(&argv(&[
            "--config", "c.xml", "--output", "o", "--eval", "--stream"
        ]))
        .is_err());
        // …but adding --store makes it the paged beyond-RAM combination.
        match parse_args(&argv(&[
            "--config", "c.xml", "--output", "o", "--eval", "--stream", "--store",
        ]))
        .expect("parses")
        {
            Parsed::Run(args) => assert!(args.eval && args.stream && args.store),
            other => panic!("expected a run, got {other:?}"),
        }
        // A zero tuple cap would fail every non-empty cell: rejected.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--max-tuples",
            "0"
        ]))
        .is_err());
        // Garbage engine letters are rejected.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--engines",
            "P,X"
        ]))
        .is_err());
    }

    #[test]
    fn eval_cache_flags_parse_and_enforce_their_preconditions() {
        match parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--eval-cache-mb",
            "128",
        ]))
        .expect("parses")
        {
            Parsed::Run(args) => {
                assert!(!args.no_eval_cache);
                assert_eq!(args.eval_cache_mb, Some(128));
            }
            other => panic!("expected a run, got {other:?}"),
        }
        match parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--no-eval-cache",
        ]))
        .expect("parses")
        {
            Parsed::Run(args) => {
                assert!(args.no_eval_cache);
                assert_eq!(args.eval_cache_mb, None);
            }
            other => panic!("expected a run, got {other:?}"),
        }
        // Cache flags without --eval are rejected, like the other eval
        // sub-flags.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--no-eval-cache"
        ]))
        .is_err());
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval-cache-mb",
            "64"
        ]))
        .is_err());
        // Sizing a cache that is simultaneously disabled is contradictory.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--no-eval-cache",
            "--eval-cache-mb",
            "64"
        ]))
        .is_err());
        // A zero budget would silently act like --no-eval-cache: rejected.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--eval-cache-mb",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn store_flags_parse_and_enforce_their_preconditions() {
        // --verify-store is a standalone mode.
        match parse_args(&argv(&["--verify-store", "g.gstore"])).expect("parses") {
            Parsed::VerifyStore(path) => assert_eq!(path, PathBuf::from("g.gstore")),
            other => panic!("expected verify mode, got {other:?}"),
        }
        assert!(parse_args(&argv(&["--verify-store"])).is_err());

        // --from-store needs --eval and replaces generation.
        match parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--from-store",
            "g.gstore",
        ]))
        .expect("parses")
        {
            Parsed::Run(args) => {
                assert_eq!(args.from_store, Some(PathBuf::from("g.gstore")));
            }
            other => panic!("expected a run, got {other:?}"),
        }
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--from-store",
            "g.gstore"
        ]))
        .is_err());
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--from-store",
            "g.gstore",
            "--store"
        ]))
        .is_err());
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--eval",
            "--from-store",
            "g.gstore",
            "--stream"
        ]))
        .is_err());
        // --store without a graph to store is rejected.
        assert!(parse_args(&argv(&[
            "--config",
            "c.xml",
            "--output",
            "o",
            "--store",
            "--queries-only"
        ]))
        .is_err());
    }

    #[test]
    fn serve_subcommand_parses_its_flag_set() {
        match parse_args(&argv(&["serve"])).expect("defaults parse") {
            Parsed::Serve(config) => {
                assert_eq!(config.addr, ServeConfig::default().addr);
                assert_eq!(config.workers, ServeConfig::default().workers);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        match parse_args(&argv(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache-mb",
            "32",
            "--queue-depth",
            "5",
            "--deadline-ms",
            "250",
            "--keep-alive-ms",
            "750",
            "--max-requests-per-conn",
            "16",
        ]))
        .expect("full flag set parses")
        {
            Parsed::Serve(config) => {
                assert_eq!(config.addr, "127.0.0.1:0");
                assert_eq!(config.workers, 2);
                assert_eq!(config.cache_mb, 32);
                assert_eq!(config.queue_depth, 5);
                assert_eq!(config.deadline_ms, 250);
                assert_eq!(config.keep_alive_ms, 750);
                assert_eq!(config.max_requests_per_conn, 16);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // 0 is a legal idle window: it turns keep-alive off.
        match parse_args(&argv(&["serve", "--keep-alive-ms", "0"])).expect("parses") {
            Parsed::Serve(config) => assert_eq!(config.keep_alive_ms, 0),
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_degenerate_and_unknown_flags() {
        assert!(parse_args(&argv(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--queue-depth", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--max-requests-per-conn", "0"])).is_err());
        assert!(
            parse_args(&argv(&["serve", "--addr"])).is_err(),
            "missing value"
        );
        assert!(parse_args(&argv(&["serve", "--config", "c.xml"])).is_err());
        // `serve --help` is an early exit like the batch mode's.
        assert!(matches!(
            parse_args(&argv(&["serve", "--help"])),
            Ok(Parsed::EarlyExit(_))
        ));
    }
}
