//! The gMark command-line tool: the Fig. 1 workflow end to end.
//!
//! Reads an XML configuration (graph configuration + optional query
//! workload configuration), generates the graph instance and the query
//! workload, and writes:
//!
//! * `graph.nt` — the instance as N-Triples,
//! * `workload.txt` — the queries in the paper's rule notation,
//! * `workload.sparql` / `.cypher` / `.sql` / `.datalog` — the four
//!   concrete syntaxes,
//! * `report.txt` — generation statistics and consistency-check findings.
//!
//! ```sh
//! gmark --config config.xml --output out/ [--seed N] [--nodes N] \
//!       [--threads T] [--stream]
//! ```

use gmark::config::parse_config;
use gmark::core::gen::StreamOptions;
use gmark::prelude::*;
use gmark::translate::{translate, Syntax};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    config: PathBuf,
    output: PathBuf,
    seed: Option<u64>,
    nodes: Option<u64>,
    /// Worker threads; 0 = auto-detect (`available_parallelism`).
    threads: usize,
    stream: bool,
}

const USAGE: &str = "gmark --config <file.xml> --output <dir> [--seed N] [--nodes N] \
[--threads T] [--stream]\n\n\
  --threads T   worker threads; 0 auto-detects the available parallelism.\n\
                Default mode: byte-identical across all T > 1 (T = 1 streams\n\
                raw triples; same edge set, different bytes).\n\
  --stream      memory-bounded pipeline: stream N-Triples through\n\
                per-constraint shard files instead of materializing the\n\
                graph. Byte-identical for every thread count, including 1.\n\
  --version     print the version and exit.";

fn parse_args() -> Result<Args, String> {
    let mut config = None;
    let mut output = None;
    let mut seed = None;
    let mut nodes = None;
    let mut threads = 1usize;
    let mut stream = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        // Takes the value following `argv[i]`, naming the flag (not a
        // positional guess) in the error when the value is missing.
        let take_value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let flag = argv[i].clone();
        match flag.as_str() {
            "--config" | "-c" => config = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--output" | "-o" => output = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--seed" => {
                let v = take_value(&mut i, &flag)?;
                seed = Some(v.parse().map_err(|_| {
                    format!("--seed: expected an unsigned 64-bit integer, got {v:?}")
                })?)
            }
            "--nodes" | "-n" => {
                let v = take_value(&mut i, &flag)?;
                nodes =
                    Some(v.parse().map_err(|_| {
                        format!("{flag}: expected a positive node count, got {v:?}")
                    })?)
            }
            "--threads" => {
                let v = take_value(&mut i, &flag)?;
                threads = v.parse().map_err(|_| {
                    format!(
                        "--threads: expected a non-negative integer (0 = auto-detect), got {v:?}"
                    )
                })?
            }
            "--stream" => stream = true,
            "--version" | "-V" => {
                println!("gmark {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(Args {
        config: config.ok_or("--config is required")?,
        output: output.ok_or("--output is required")?,
        seed,
        nodes,
        threads,
        stream,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let xml = fs::read_to_string(&args.config)
        .map_err(|e| format!("reading {}: {e}", args.config.display()))?;
    let mut parsed = parse_config(&xml).map_err(|e| format!("parsing config: {e}"))?;
    if let Some(n) = args.nodes {
        parsed.graph.n = n;
    }
    fs::create_dir_all(&args.output)
        .map_err(|e| format!("creating {}: {e}", args.output.display()))?;

    let seed = args.seed.unwrap_or(0x674D_61726B);
    let opts = GeneratorOptions {
        seed,
        threads: args.threads,
        ..Default::default()
    };
    let schema = parsed.graph.schema.clone();

    // Consistency check (Section 4) — reported, never fatal.
    let issues = parsed.graph.validate();

    // Graph → N-Triples, three pipelines:
    //
    // * `--stream` (any thread count): the memory-bounded pipeline —
    //   constraints fan out over workers into per-constraint N-Triples
    //   shard files, concatenated in ascending constraint order. Output is
    //   generation-ordered, keeps duplicate triples, and is byte-identical
    //   for every thread count including 1.
    // * no `--stream`, one thread: stream edges straight to the file
    //   (same bytes as `--stream --threads 1`) without materializing.
    // * no `--stream`, T > 1 threads: the in-memory parallel pipeline
    //   (generation, deterministic shard merge, CSR finalization) then
    //   serializes the built graph — sorted and deduplicated,
    //   byte-identical across all T > 1. Same edge *set* as the streamed
    //   file, different order/duplicates (RDF set semantics make them
    //   equivalent data).
    let threads = opts.effective_threads();
    let nt_path = args.output.join("graph.nt");
    let file = fs::File::create(&nt_path).map_err(|e| format!("{}: {e}", nt_path.display()))?;
    let mut out = std::io::BufWriter::new(file);
    let start = std::time::Instant::now();
    let (report, written) = if args.stream {
        // Shards live next to the output: same filesystem, so the final
        // concatenation is a sequential same-device copy.
        let stream_opts = StreamOptions {
            scratch_dir: args.output.clone(),
            ..StreamOptions::default()
        };
        gmark::core::gen::generate_streamed(&parsed.graph, &opts, &stream_opts, &mut out)
            .map_err(|e| format!("streaming {}: {e}", nt_path.display()))?
    } else {
        let mut writer = gmark::store::NTriplesWriter::new(&mut out, schema.predicate_names());
        let report = if threads > 1 {
            let (graph, report) = generate_graph(&parsed.graph, &opts);
            for pred in 0..graph.predicate_count() {
                for (src, trg) in graph.edges(pred) {
                    writer.edge(src, pred, trg);
                }
            }
            report
        } else {
            gmark::core::generate_into(&parsed.graph, &opts, &mut writer)
        };
        let written = writer
            .finish()
            .map_err(|e| format!("writing {}: {e}", nt_path.display()))?;
        (report, written)
    };
    out.flush()
        .map_err(|e| format!("flushing {}: {e}", nt_path.display()))?;
    let gen_time = start.elapsed();
    println!(
        "graph: {} nodes requested, {} edges -> {} ({:.3}s, {} thread{}{})",
        parsed.graph.n,
        written,
        nt_path.display(),
        gen_time.as_secs_f64(),
        threads,
        if threads > 1 { "s" } else { "" },
        if args.stream { ", streamed" } else { "" }
    );

    // Workload → rule notation + all four syntaxes.
    let mut workload_summary = String::new();
    if let Some(mut wcfg) = parsed.workload.clone() {
        if args.seed.is_some() {
            wcfg.seed = seed;
        }
        let start = std::time::Instant::now();
        let (workload, wreport) = generate_workload(&schema, &wcfg);
        let wl_time = start.elapsed();
        let mut plain = String::new();
        for (i, gq) in workload.queries.iter().enumerate() {
            plain.push_str(&format!(
                "# query {i} target={} shape={} estimated_alpha={:?}\n{}\n\n",
                gq.target.map_or("-".into(), |t| t.to_string()),
                gq.shape,
                gq.estimated_alpha,
                gq.query.display(&schema)
            ));
        }
        fs::write(args.output.join("workload.txt"), plain)
            .map_err(|e| format!("workload.txt: {e}"))?;
        for syntax in Syntax::ALL {
            let mut text = String::new();
            for (i, gq) in workload.queries.iter().enumerate() {
                text.push_str(&format!(
                    "-- query {i}\n{}\n",
                    translate(&gq.query, &schema, syntax)
                ));
            }
            let path = args.output.join(format!("workload.{syntax}"));
            fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        }
        println!(
            "workload: {} queries -> {}/workload.{{txt,sparql,cypher,sql,datalog}} ({:.3}s)",
            workload.queries.len(),
            args.output.display(),
            wl_time.as_secs_f64()
        );
        workload_summary = format!(
            "workload: {} queries, {} relaxation steps, {} unmet selectivity targets\n\
             diversity:\n{}\n",
            workload.queries.len(),
            wreport.relaxations,
            wreport.unsatisfied_selectivity,
            workload.diversity()
        );
    }

    // Report.
    let mut rep =
        fs::File::create(args.output.join("report.txt")).map_err(|e| format!("report.txt: {e}"))?;
    writeln!(rep, "gMark generation report").ok();
    writeln!(rep, "config: {}", args.config.display()).ok();
    writeln!(rep, "seed: {seed}").ok();
    writeln!(rep, "nodes requested: {}", parsed.graph.n).ok();
    writeln!(rep, "nodes realized: {}", parsed.graph.realized_nodes()).ok();
    writeln!(
        rep,
        "edges: {written} written ({} generated before dedup) in {:.3}s",
        report.total_edges,
        gen_time.as_secs_f64()
    )
    .ok();
    for (i, cr) in report.constraints.iter().enumerate() {
        writeln!(
            rep,
            "constraint {i}: src_slots={} trg_slots={} edges={}",
            cr.src_slots, cr.trg_slots, cr.edges
        )
        .ok();
    }
    if issues.is_empty() {
        writeln!(rep, "consistency check: ok").ok();
    }
    for issue in &issues {
        writeln!(rep, "consistency check: {issue:?}").ok();
    }
    rep.write_all(workload_summary.as_bytes()).ok();
    println!("report -> {}/report.txt", args.output.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gmark: {e}");
            ExitCode::FAILURE
        }
    }
}
