//! The gMark command-line tool: the Fig. 1 workflow end to end.
//!
//! Reads an XML configuration (graph configuration + optional query
//! workload configuration), generates the graph instance and the query
//! workload, and writes:
//!
//! * `graph.nt` — the instance as N-Triples,
//! * `workload.txt` — the queries in the paper's rule notation,
//! * `workload.sparql` / `.cypher` / `.sql` / `.datalog` — the four
//!   concrete syntaxes,
//! * `report.txt` — generation statistics and consistency-check findings.
//!
//! ```sh
//! gmark --config config.xml --output out/ [--seed N] [--nodes N] [--threads T]
//! ```

use gmark::config::parse_config;
use gmark::prelude::*;
use gmark::translate::{translate, Syntax};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    config: PathBuf,
    output: PathBuf,
    seed: Option<u64>,
    nodes: Option<u64>,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut config = None;
    let mut output = None;
    let mut seed = None;
    let mut nodes = None;
    let mut threads = 1;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--config" | "-c" => config = Some(PathBuf::from(take_value(&mut i)?)),
            "--output" | "-o" => output = Some(PathBuf::from(take_value(&mut i)?)),
            "--seed" => {
                seed = Some(
                    take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--nodes" | "-n" => {
                nodes = Some(
                    take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--threads" => {
                threads = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "gmark --config <file.xml> --output <dir> [--seed N] [--nodes N] [--threads T]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(Args {
        config: config.ok_or("--config is required")?,
        output: output.ok_or("--output is required")?,
        seed,
        nodes,
        threads,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let xml = fs::read_to_string(&args.config)
        .map_err(|e| format!("reading {}: {e}", args.config.display()))?;
    let mut parsed = parse_config(&xml).map_err(|e| format!("parsing config: {e}"))?;
    if let Some(n) = args.nodes {
        parsed.graph.n = n;
    }
    fs::create_dir_all(&args.output)
        .map_err(|e| format!("creating {}: {e}", args.output.display()))?;

    let seed = args.seed.unwrap_or(0x674D_61726B);
    let opts = GeneratorOptions {
        seed,
        threads: args.threads,
        ..Default::default()
    };
    let schema = parsed.graph.schema.clone();

    // Consistency check (Section 4) — reported, never fatal.
    let issues = parsed.graph.validate();

    // Graph → N-Triples. Single-threaded runs stream edges straight to the
    // file (generation order, duplicates kept) without materializing the
    // graph; `--threads T > 1` runs the parallel pipeline (generation,
    // deterministic shard merge, and CSR finalization all on worker
    // threads) and serializes the built graph — sorted and deduplicated,
    // byte-identical across all T > 1. The two modes therefore emit the
    // same edge *set* but differ in order and duplicate triples (RDF set
    // semantics make them equivalent data).
    let nt_path = args.output.join("graph.nt");
    let file = fs::File::create(&nt_path).map_err(|e| format!("{}: {e}", nt_path.display()))?;
    let mut writer =
        gmark::store::NTriplesWriter::new(std::io::BufWriter::new(file), schema.predicate_names());
    let start = std::time::Instant::now();
    let report = if args.threads > 1 {
        let (graph, report) = generate_graph(&parsed.graph, &opts);
        for pred in 0..graph.predicate_count() {
            for (src, trg) in graph.edges(pred) {
                writer.edge(src, pred, trg);
            }
        }
        report
    } else {
        gmark::core::generate_into(&parsed.graph, &opts, &mut writer)
    };
    let written = writer
        .finish()
        .map_err(|e| format!("writing {}: {e}", nt_path.display()))?;
    let gen_time = start.elapsed();
    println!(
        "graph: {} nodes requested, {} edges -> {} ({:.3}s, {} thread{})",
        parsed.graph.n,
        written,
        nt_path.display(),
        gen_time.as_secs_f64(),
        args.threads.max(1),
        if args.threads > 1 { "s" } else { "" }
    );

    // Workload → rule notation + all four syntaxes.
    let mut workload_summary = String::new();
    if let Some(mut wcfg) = parsed.workload.clone() {
        if args.seed.is_some() {
            wcfg.seed = seed;
        }
        let start = std::time::Instant::now();
        let (workload, wreport) = generate_workload(&schema, &wcfg);
        let wl_time = start.elapsed();
        let mut plain = String::new();
        for (i, gq) in workload.queries.iter().enumerate() {
            plain.push_str(&format!(
                "# query {i} target={} shape={} estimated_alpha={:?}\n{}\n\n",
                gq.target.map_or("-".into(), |t| t.to_string()),
                gq.shape,
                gq.estimated_alpha,
                gq.query.display(&schema)
            ));
        }
        fs::write(args.output.join("workload.txt"), plain)
            .map_err(|e| format!("workload.txt: {e}"))?;
        for syntax in Syntax::ALL {
            let mut text = String::new();
            for (i, gq) in workload.queries.iter().enumerate() {
                text.push_str(&format!(
                    "-- query {i}\n{}\n",
                    translate(&gq.query, &schema, syntax)
                ));
            }
            let path = args.output.join(format!("workload.{syntax}"));
            fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        }
        println!(
            "workload: {} queries -> {}/workload.{{txt,sparql,cypher,sql,datalog}} ({:.3}s)",
            workload.queries.len(),
            args.output.display(),
            wl_time.as_secs_f64()
        );
        workload_summary = format!(
            "workload: {} queries, {} relaxation steps, {} unmet selectivity targets\n\
             diversity:\n{}\n",
            workload.queries.len(),
            wreport.relaxations,
            wreport.unsatisfied_selectivity,
            workload.diversity()
        );
    }

    // Report.
    let mut rep =
        fs::File::create(args.output.join("report.txt")).map_err(|e| format!("report.txt: {e}"))?;
    writeln!(rep, "gMark generation report").ok();
    writeln!(rep, "config: {}", args.config.display()).ok();
    writeln!(rep, "seed: {seed}").ok();
    writeln!(rep, "nodes requested: {}", parsed.graph.n).ok();
    writeln!(rep, "nodes realized: {}", parsed.graph.realized_nodes()).ok();
    writeln!(
        rep,
        "edges: {written} written ({} generated before dedup) in {:.3}s",
        report.total_edges,
        gen_time.as_secs_f64()
    )
    .ok();
    for (i, cr) in report.constraints.iter().enumerate() {
        writeln!(
            rep,
            "constraint {i}: src_slots={} trg_slots={} edges={}",
            cr.src_slots, cr.trg_slots, cr.edges
        )
        .ok();
    }
    if issues.is_empty() {
        writeln!(rep, "consistency check: ok").ok();
    }
    for issue in &issues {
        writeln!(rep, "consistency check: {issue:?}").ok();
    }
    rep.write_all(workload_summary.as_bytes()).ok();
    println!("report -> {}/report.txt", args.output.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gmark: {e}");
            ExitCode::FAILURE
        }
    }
}
