//! The gMark command-line tool: the Fig. 1 workflow end to end.
//!
//! Reads an XML configuration (graph configuration + optional query
//! workload configuration), generates the graph instance and the query
//! workload, and writes:
//!
//! * `graph.nt` — the instance as N-Triples,
//! * `workload.txt` — the queries in the paper's rule notation,
//! * `workload.sparql` / `.cypher` / `.sql` / `.datalog` — the four
//!   concrete syntaxes,
//! * `report.txt` — generation statistics and consistency-check findings.
//!
//! ```sh
//! gmark --config config.xml --output out/ [--seed N] [--nodes N] \
//!       [--threads T] [--stream] [--queries-only]
//! ```
//!
//! `--threads` governs both pipelines — graph constraints and workload
//! queries fan out over the same number of workers — and the workload
//! documents are byte-identical at every thread count.

use gmark::config::parse_config;
use gmark::core::gen::StreamOptions;
use gmark::prelude::*;
use gmark::translate::{WorkloadOutputs, WorkloadStreamOptions};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    config: PathBuf,
    output: PathBuf,
    seed: Option<u64>,
    nodes: Option<u64>,
    /// Worker threads; 0 = auto-detect (`available_parallelism`).
    threads: usize,
    stream: bool,
    /// Generate the query workload only; skip the graph instance.
    queries_only: bool,
}

const USAGE: &str = "gmark --config <file.xml> --output <dir> [--seed N] [--nodes N] \
[--threads T] [--stream] [--queries-only]\n\n\
  --threads T     worker threads for BOTH pipelines (graph constraints and\n\
                  workload queries); 0 auto-detects the available\n\
                  parallelism. Workload documents are byte-identical at\n\
                  every thread count. Graph default mode: byte-identical\n\
                  across all T > 1 (T = 1 streams raw triples; same edge\n\
                  set, different bytes).\n\
  --stream        memory-bounded graph pipeline: stream N-Triples through\n\
                  per-constraint shard files instead of materializing the\n\
                  graph. Byte-identical for every thread count, including 1.\n\
  --queries-only  generate the query workload from the schema without\n\
                  building the graph at all (no graph.nt); the config must\n\
                  have a <workload> section.\n\
  --version       print the version and exit.";

fn parse_args() -> Result<Args, String> {
    let mut config = None;
    let mut output = None;
    let mut seed = None;
    let mut nodes = None;
    let mut threads = 1usize;
    let mut stream = false;
    let mut queries_only = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        // Takes the value following `argv[i]`, naming the flag (not a
        // positional guess) in the error when the value is missing.
        let take_value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let flag = argv[i].clone();
        match flag.as_str() {
            "--config" | "-c" => config = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--output" | "-o" => output = Some(PathBuf::from(take_value(&mut i, &flag)?)),
            "--seed" => {
                let v = take_value(&mut i, &flag)?;
                seed = Some(v.parse().map_err(|_| {
                    format!("--seed: expected an unsigned 64-bit integer, got {v:?}")
                })?)
            }
            "--nodes" | "-n" => {
                let v = take_value(&mut i, &flag)?;
                nodes =
                    Some(v.parse().map_err(|_| {
                        format!("{flag}: expected a positive node count, got {v:?}")
                    })?)
            }
            "--threads" => {
                let v = take_value(&mut i, &flag)?;
                threads = v.parse().map_err(|_| {
                    format!(
                        "--threads: expected a non-negative integer (0 = auto-detect), got {v:?}"
                    )
                })?
            }
            "--stream" => stream = true,
            "--queries-only" => queries_only = true,
            "--version" | "-V" => {
                println!("gmark {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(Args {
        config: config.ok_or("--config is required")?,
        output: output.ok_or("--output is required")?,
        seed,
        nodes,
        threads,
        stream,
        queries_only,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let xml = fs::read_to_string(&args.config)
        .map_err(|e| format!("reading {}: {e}", args.config.display()))?;
    let mut parsed = parse_config(&xml).map_err(|e| format!("parsing config: {e}"))?;
    if let Some(n) = args.nodes {
        parsed.graph.n = n;
    }
    fs::create_dir_all(&args.output)
        .map_err(|e| format!("creating {}: {e}", args.output.display()))?;

    let seed = args.seed.unwrap_or(0x674D_61726B);
    let opts = GeneratorOptions {
        seed,
        threads: args.threads,
        ..Default::default()
    };
    let schema = parsed.graph.schema.clone();

    // Consistency check (Section 4) — reported, never fatal.
    let issues = parsed.graph.validate();

    if args.queries_only && parsed.workload.is_none() {
        return Err(format!(
            "--queries-only: {} has no <workload> section",
            args.config.display()
        ));
    }

    // Graph → N-Triples, three pipelines:
    //
    // * `--stream` (any thread count): the memory-bounded pipeline —
    //   constraints fan out over workers into per-constraint N-Triples
    //   shard files, concatenated in ascending constraint order. Output is
    //   generation-ordered, keeps duplicate triples, and is byte-identical
    //   for every thread count including 1.
    // * no `--stream`, one thread: stream edges straight to the file
    //   (same bytes as `--stream --threads 1`) without materializing.
    // * no `--stream`, T > 1 threads: the in-memory parallel pipeline
    //   (generation, deterministic shard merge, CSR finalization) then
    //   serializes the built graph — sorted and deduplicated,
    //   byte-identical across all T > 1. Same edge *set* as the streamed
    //   file, different order/duplicates (RDF set semantics make them
    //   equivalent data).
    let threads = opts.effective_threads();
    let mut graph_outcome = None;
    if !args.queries_only {
        let nt_path = args.output.join("graph.nt");
        let file = fs::File::create(&nt_path).map_err(|e| format!("{}: {e}", nt_path.display()))?;
        let mut out = std::io::BufWriter::new(file);
        let start = std::time::Instant::now();
        let (report, written) = if args.stream {
            // Shards live next to the output: same filesystem, so the final
            // concatenation is a sequential same-device copy.
            let stream_opts = StreamOptions {
                scratch_dir: args.output.clone(),
                ..StreamOptions::default()
            };
            gmark::core::gen::generate_streamed(&parsed.graph, &opts, &stream_opts, &mut out)
                .map_err(|e| format!("streaming {}: {e}", nt_path.display()))?
        } else {
            let mut writer = gmark::store::NTriplesWriter::new(&mut out, schema.predicate_names());
            let report = if threads > 1 {
                let (graph, report) = generate_graph(&parsed.graph, &opts);
                for pred in 0..graph.predicate_count() {
                    for (src, trg) in graph.edges(pred) {
                        writer.edge(src, pred, trg);
                    }
                }
                report
            } else {
                gmark::core::generate_into(&parsed.graph, &opts, &mut writer)
            };
            let written = writer
                .finish()
                .map_err(|e| format!("writing {}: {e}", nt_path.display()))?;
            (report, written)
        };
        out.flush()
            .map_err(|e| format!("flushing {}: {e}", nt_path.display()))?;
        let gen_time = start.elapsed();
        println!(
            "graph: {} nodes requested, {} edges -> {} ({:.3}s, {} thread{}{})",
            parsed.graph.n,
            written,
            nt_path.display(),
            gen_time.as_secs_f64(),
            threads,
            if threads > 1 { "s" } else { "" },
            if args.stream { ", streamed" } else { "" }
        );
        graph_outcome = Some((report, written, gen_time));
    }

    // Workload → rule notation + all four syntaxes, streamed through the
    // parallel pipeline: workers claim query indices, render each query's
    // five documents into per-query shards, and the shards concatenate in
    // ascending index order — byte-identical at every thread count.
    let mut workload_summary = String::new();
    if let Some(mut wcfg) = parsed.workload.clone() {
        if args.seed.is_some() {
            wcfg.seed = seed;
        }
        let open = |name: &str| -> Result<std::io::BufWriter<fs::File>, String> {
            let path = args.output.join(name);
            Ok(std::io::BufWriter::new(
                fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?,
            ))
        };
        let mut outs = WorkloadOutputs {
            rules: open("workload.txt")?,
            sparql: open("workload.sparql")?,
            cypher: open("workload.cypher")?,
            sql: open("workload.sql")?,
            datalog: open("workload.datalog")?,
        };
        let stream_opts = WorkloadStreamOptions {
            threads: args.threads,
            // Same filesystem as the outputs: concatenation stays a plain
            // sequential copy.
            scratch_dir: args.output.clone(),
        };
        let start = std::time::Instant::now();
        let summary = gmark::translate::stream_workload(&schema, &wcfg, &stream_opts, &mut outs)
            .map_err(|e| format!("workload: {e}"))?;
        let wl_time = start.elapsed();
        println!(
            "workload: {} queries -> {}/workload.{{txt,sparql,cypher,sql,datalog}} \
             ({:.3}s, {} thread{}; cypher degradations: {} concatenation, {} inverse)",
            summary.report.produced,
            args.output.display(),
            wl_time.as_secs_f64(),
            summary.threads,
            if summary.threads > 1 { "s" } else { "" },
            summary.report.cypher.star_concat,
            summary.report.cypher.star_inverse,
        );
        workload_summary = format!(
            "workload: {} queries, {} relaxation steps, {} unmet selectivity targets\n\
             cypher degradations: {} concatenation-under-star, {} inverse-under-star\n\
             diversity:\n{}\n",
            summary.report.produced,
            summary.report.relaxations,
            summary.report.unsatisfied_selectivity,
            summary.report.cypher.star_concat,
            summary.report.cypher.star_inverse,
            summary.diversity
        );
    }

    // Report.
    let mut rep =
        fs::File::create(args.output.join("report.txt")).map_err(|e| format!("report.txt: {e}"))?;
    writeln!(rep, "gMark generation report").ok();
    writeln!(rep, "config: {}", args.config.display()).ok();
    writeln!(rep, "seed: {seed}").ok();
    if let Some((report, written, gen_time)) = &graph_outcome {
        writeln!(rep, "nodes requested: {}", parsed.graph.n).ok();
        writeln!(rep, "nodes realized: {}", parsed.graph.realized_nodes()).ok();
        writeln!(
            rep,
            "edges: {written} written ({} generated before dedup) in {:.3}s",
            report.total_edges,
            gen_time.as_secs_f64()
        )
        .ok();
        for (i, cr) in report.constraints.iter().enumerate() {
            writeln!(
                rep,
                "constraint {i}: src_slots={} trg_slots={} edges={}",
                cr.src_slots, cr.trg_slots, cr.edges
            )
            .ok();
        }
    } else {
        writeln!(rep, "graph: skipped (--queries-only)").ok();
    }
    if issues.is_empty() {
        writeln!(rep, "consistency check: ok").ok();
    }
    for issue in &issues {
        writeln!(rep, "consistency check: {issue:?}").ok();
    }
    rep.write_all(workload_summary.as_bytes()).ok();
    println!("report -> {}/report.txt", args.output.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gmark: {e}");
            ExitCode::FAILURE
        }
    }
}
