//! Offline stand-in for the `proptest` crate.
//!
//! crates.io is unavailable in this build environment, so this crate
//! implements exactly the subset of proptest's API the workspace's
//! property tests use: value-generating strategies (no shrinking), the
//! [`proptest!`] test macro, `prop_assert*` / [`prop_assume!`], tuple and
//! collection combinators, [`prop_oneof!`], and string strategies compiled
//! from the small character-class regex dialect the tests rely on.
//!
//! Cases are generated from a fixed deterministic seed so failures are
//! reproducible run-to-run and on CI.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator state handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift rejection-free mapping is plenty for test data.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the runner panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the runner redraws.
    Reject,
}

impl TestCaseError {
    /// An assertion failure carrying a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values. Unlike real proptest there is no shrinking:
/// a failing case reports the seed and (Debug) inputs and panics.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among boxed same-valued strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Rc<dyn Strategy<Value = T>>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Rc<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Type-erases a strategy into a [`Union`] arm (used by [`prop_oneof!`]).
pub fn union_arm<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Rc::new(s)
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderate magnitudes: good test data, no NaN surprises.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A collection-size specification: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; draws until the sampled size is
    /// reached or the element space is (apparently) exhausted.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 64 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// String strategies: literal `&str` patterns are compiled as a sequence of
// character-class atoms with `{m,n}` repetition, the dialect used by the
// workspace tests (e.g. "[a-z][a-z0-9]{0,8}", "[ -~&&[^<&]]{1,12}").
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PatternAtom {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (b' '..=b'~').map(char::from).collect()
}

fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
    debug_assert_eq!(chars[*i], '[');
    *i += 1;
    let negated = chars.get(*i) == Some(&'^');
    if negated {
        *i += 1;
    }
    let mut set: Vec<char> = Vec::new();
    while *i < chars.len() && chars[*i] != ']' {
        if chars[*i] == '&' && chars.get(*i + 1) == Some(&'&') && chars.get(*i + 2) == Some(&'[') {
            // Class intersection `&&[...]` (used as subtraction with `[^..]`).
            *i += 2;
            let rhs = parse_class(chars, i);
            set.retain(|c| rhs.contains(c));
        } else if chars.get(*i + 1) == Some(&'-') && chars.get(*i + 2).is_some_and(|&c| c != ']') {
            let (lo, hi) = (chars[*i], chars[*i + 2]);
            assert!(lo <= hi, "invalid class range {lo}-{hi}");
            let fresh: Vec<char> = (lo..=hi).filter(|c| !set.contains(c)).collect();
            set.extend(fresh);
            *i += 3;
        } else {
            let c = chars[*i];
            let c = if c == '\\' {
                *i += 1;
                chars[*i]
            } else {
                c
            };
            if !set.contains(&c) {
                set.push(c);
            }
            *i += 1;
        }
    }
    assert!(*i < chars.len(), "unterminated character class");
    *i += 1; // closing ']'
    if negated {
        printable_ascii()
            .into_iter()
            .filter(|c| !set.contains(c))
            .collect()
    } else {
        set
    }
}

fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    *i += 1;
    let mut lo = String::new();
    while chars[*i].is_ascii_digit() {
        lo.push(chars[*i]);
        *i += 1;
    }
    let min: usize = lo.parse().expect("repeat lower bound");
    let max = if chars[*i] == ',' {
        *i += 1;
        let mut hi = String::new();
        while chars[*i].is_ascii_digit() {
            hi.push(chars[*i]);
            *i += 1;
        }
        hi.parse().expect("repeat upper bound")
    } else {
        min
    };
    assert_eq!(chars[*i], '}', "unterminated repetition");
    *i += 1;
    (min, max)
}

fn compile_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            parse_class(&chars, &mut i)
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        assert!(
            !alphabet.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        let (min, max) = parse_repeat(&chars, &mut i);
        atoms.push(PatternAtom { alphabet, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = compile_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(atom.alphabet[rng.below(atom.alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

const BASE_SEED: u64 = 0x674D_6172_6B50_7430; // deterministic across runs

/// FNV-1a over the test name: distinct tests get distinct input streams
/// even when their names have equal length.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Runs `config.cases` generated cases of `body` against `strategy`,
/// panicking on the first failure. Called by the [`proptest!`] expansion.
pub fn run_cases<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rejects = 0u32;
    let reject_cap = config.cases * 32 + 256;
    let mut case = 0u32;
    let mut draw = 0u64;
    let seed = BASE_SEED ^ name_hash(test_name);
    while case < config.cases {
        let mut rng = TestRng::new(seed ^ draw.wrapping_mul(0x9E37_79B9));
        draw += 1;
        let value = strategy.new_value(&mut rng);
        let rendered = format!("{value:?}");
        match body(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects < reject_cap,
                    "{test_name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{case} failed: {msg}\n  inputs: {rendered}")
            }
        }
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_cases(&config, stringify!($name), &strategy, |($($pat,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case, redrawing inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($arm)),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    /// Namespaced access mirror (`prop::collection::vec`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_compiler_handles_workspace_dialect() {
        let mut rng = super::TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".new_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~&&[^<&]]{1,12}".new_value(&mut rng);
            assert!((1..=12).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) && c != '<' && c != '&'));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -5i32..5, z in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn collections_respect_sizes(
            xs in prop::collection::vec(0u32..100, 2..5),
            set in prop::collection::btree_set(0i32..1000, 2..8),
        ) {
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert!((2..8).contains(&set.len()));
        }
    }
}
