//! Offline stand-in for the `criterion` crate.
//!
//! crates.io is unavailable in this build environment, so this crate
//! implements the benchmark-harness subset the workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up briefly, then timed for a fixed measurement window; the
//! mean/min per-iteration wall time is printed, and when the
//! `GMARK_BENCH_JSON` environment variable names a file, one JSON object
//! per benchmark is appended to it (consumed by `scripts/bench.sh`).

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            measurement_time: None,
            throughput: None,
        }
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            samples: Vec::new(),
        };
        f(&mut bencher);
        let stats = bencher.stats();
        let mut line = format!(
            "bench {}/{}: mean {} min {} ({} iters)",
            self.name,
            id,
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.min_ns),
            stats.iters
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            if stats.mean_ns > 0.0 {
                line.push_str(&format!(
                    ", {:.1}M elems/s",
                    n as f64 / stats.mean_ns * 1e9 / 1e6
                ));
            }
        }
        eprintln!("{line}");
        export_json(&self.name, &id, &stats, self.throughput);
        self
    }

    /// Ends the group (separator line; results are already reported).
    pub fn finish(&mut self) {
        eprintln!();
    }
}

/// Measured summary for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration in nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: individual iteration timings until the window closes.
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn stats(&self) -> Stats {
        if self.samples.is_empty() {
            return Stats {
                mean_ns: 0.0,
                min_ns: 0.0,
                iters: 0,
            };
        }
        let sum: f64 = self.samples.iter().sum();
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        Stats {
            mean_ns: sum / self.samples.len() as f64,
            min_ns: min,
            iters: self.samples.len() as u64,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn export_json(group: &str, id: &str, stats: &Stats, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("GMARK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let (kind, units) = match throughput {
        Some(Throughput::Elements(n)) => ("elements", n),
        Some(Throughput::Bytes(n)) => ("bytes", n),
        None => ("none", 0),
    };
    let record = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"iters\":{},\"throughput_kind\":\"{}\",\"throughput_units\":{}}}\n",
        escape(group),
        escape(id),
        stats.mean_ns,
        stats.min_ns,
        stats.iters,
        kind,
        units
    );
    if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(record.as_bytes());
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("smoke");
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("f", 4);
        assert_eq!(id.id, "f/4");
        let from: BenchmarkId = "plain".into();
        assert_eq!(from.id, "plain");
    }
}
