//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the Fx multiply-mix hash (the non-cryptographic hasher used
//! by rustc) with the same public surface the workspace relies on:
//! [`FxHasher`], [`FxHashMap`], [`FxHashSet`], and [`FxBuildHasher`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault` over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-mix hasher: fast, deterministic, not DoS-resistant.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"gmark"), h(b"gmark"));
        assert_ne!(h(b"gmark"), h(b"gMark"));
    }
}
