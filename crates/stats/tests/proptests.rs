//! Property-based tests for the statistical substrate.

use gmark_stats::{linear_regression, DegreeSampler, Gaussian, Prng, Uniform, Zipf};
use proptest::prelude::*;

proptest! {
    #[test]
    fn below_always_within_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn range_inclusive_within(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = Prng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut xs in prop::collection::vec(0u32..100, 0..50)) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut expected = xs.clone();
        rng.shuffle(&mut xs);
        expected.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(xs, expected);
    }

    #[test]
    fn split_streams_are_deterministic(seed in any::<u64>(), idx in any::<u64>()) {
        let root = Prng::seed_from_u64(seed);
        let mut a = root.split(idx);
        let mut b = root.split(idx);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_sampler_in_bounds(seed in any::<u64>(), lo in 0u64..50, span in 0u64..50) {
        let s = Uniform::new(lo, lo + span);
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            prop_assert!(v >= lo && v <= lo + span);
        }
    }

    #[test]
    fn zipf_sampler_in_support(seed in any::<u64>(), n in 1u64..100_000, s_times_10 in 3u32..40) {
        let s = s_times_10 as f64 / 10.0;
        let z = Zipf::new(n, s);
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&v), "sample {v} outside 1..={n} (s={s})");
        }
    }

    #[test]
    fn zipf_mean_within_support(n in 1u64..100_000, s_times_10 in 5u32..40) {
        let s = s_times_10 as f64 / 10.0;
        let z = Zipf::new(n, s);
        let m = z.mean();
        prop_assert!(m >= 1.0 - 1e-9 && m <= n as f64 + 1e-9, "mean {m} for n={n}, s={s}");
    }

    #[test]
    fn gaussian_sampler_is_finite(seed in any::<u64>(), mu in -100.0f64..100.0, sigma in 0.0f64..50.0) {
        let g = Gaussian::new(mu, sigma);
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = g.sample_f64(&mut rng);
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn regression_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in prop::collection::btree_set(-1000i32..1000, 2..20),
    ) {
        let points: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| (x as f64, slope * x as f64 + intercept))
            .collect();
        let r = linear_regression(&points).expect("distinct xs");
        prop_assert!((r.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()), "slope {} vs {slope}", r.slope);
        prop_assert!((r.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()) + 1e-6);
        prop_assert!(r.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn summary_mean_within_extrema(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = gmark_stats::Summary::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.std_dev() >= 0.0);
    }
}
