//! Least-squares regression used to recover selectivity exponents.
//!
//! Section 6.2 of the paper: "To compute the α-value in the formula
//! `|Q(G)| = β·|G|^α` we computed a simple linear regression between
//! `log |G|` and `log |Q(G)|`." [`log_log_alpha`] implements exactly that;
//! [`linear_regression`] is the underlying ordinary-least-squares fit.

/// Result of an ordinary least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 for a perfect fit).
    pub r_squared: f64,
}

/// Ordinary least squares over paired observations.
///
/// Returns `None` when fewer than two points are given or when all `x`
/// values coincide (the slope is then undefined).
pub fn linear_regression(points: &[(f64, f64)]) -> Option<Regression> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(Regression {
        slope,
        intercept,
        r_squared,
    })
}

/// Estimates `α` of `|Q(G)| = β·|G|^α` from `(graph size, result count)`
/// observations, exactly as Section 6.2 prescribes.
///
/// A result count of zero cannot be log-transformed; following the convention
/// used when benchmarking count queries, zero counts are mapped to 1 result
/// (`log = 0`) so constant-selectivity queries that return empty answers
/// still regress to `α ≈ 0`. Returns `(alpha, beta)` or `None` when the
/// regression is undefined.
pub fn log_log_alpha(observations: &[(u64, u64)]) -> Option<(f64, f64)> {
    let points: Vec<(f64, f64)> = observations
        .iter()
        .map(|&(n, c)| ((n.max(1) as f64).ln(), (c.max(1) as f64).ln()))
        .collect();
    let reg = linear_regression(&points)?;
    Some((reg.slope, reg.intercept.exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let pts = [(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)];
        let r = linear_regression(&pts).unwrap();
        assert!((r.slope - 2.0).abs() < 1e-12);
        assert!((r.intercept - 1.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_regression(&[]).is_none());
        assert!(linear_regression(&[(1.0, 2.0)]).is_none());
        assert!(linear_regression(&[(1.0, 2.0), (1.0, 5.0)]).is_none());
    }

    #[test]
    fn horizontal_line_has_zero_slope() {
        let pts = [(1.0, 4.0), (2.0, 4.0), (3.0, 4.0)];
        let r = linear_regression(&pts).unwrap();
        assert_eq!(r.slope, 0.0);
        assert_eq!(r.r_squared, 1.0);
    }

    #[test]
    fn noisy_fit_r_squared_below_one() {
        let pts = [(1.0, 1.0), (2.0, 3.0), (3.0, 2.0), (4.0, 5.0)];
        let r = linear_regression(&pts).unwrap();
        assert!(r.r_squared < 1.0);
        assert!(r.r_squared > 0.0);
    }

    #[test]
    fn alpha_of_linear_query() {
        // |Q(G)| = 0.5 * |G| => alpha = 1, beta = 0.5
        let obs: Vec<(u64, u64)> = [2000u64, 4000, 8000, 16000, 32000]
            .iter()
            .map(|&n| (n, n / 2))
            .collect();
        let (alpha, beta) = log_log_alpha(&obs).unwrap();
        assert!((alpha - 1.0).abs() < 1e-9, "alpha {alpha}");
        assert!((beta - 0.5).abs() < 1e-9, "beta {beta}");
    }

    #[test]
    fn alpha_of_quadratic_query() {
        let obs: Vec<(u64, u64)> = [2000u64, 4000, 8000]
            .iter()
            .map(|&n| (n, (n * n) / 1000))
            .collect();
        let (alpha, _beta) = log_log_alpha(&obs).unwrap();
        assert!((alpha - 2.0).abs() < 1e-9, "alpha {alpha}");
    }

    #[test]
    fn alpha_of_constant_query_with_zeros() {
        let obs = [(2000u64, 7u64), (4000, 7), (8000, 7), (16000, 7)];
        let (alpha, _) = log_log_alpha(&obs).unwrap();
        assert!(alpha.abs() < 1e-9);
        let zero_obs = [(2000u64, 0u64), (4000, 0), (8000, 0)];
        let (alpha0, _) = log_log_alpha(&zero_obs).unwrap();
        assert!(alpha0.abs() < 1e-9, "empty answers regress to alpha 0");
    }
}
