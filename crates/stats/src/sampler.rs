//! Samplers for gMark's degree distributions (Definition 3.1).
//!
//! A schema constraint `η(T1, T2, a) = (D_in, D_out)` draws per-node in- and
//! out-degrees from one of three distributions:
//!
//! * **uniform** over an integer interval `[min, max]`,
//! * **Gaussian** with parameters `μ, σ` (degrees are rounded and clamped at
//!   zero, since a node cannot have a negative number of edges),
//! * **Zipfian** with exponent `s` over a bounded support `{1, …, n}` — the
//!   power-law that drives the paper's quadratic selectivity class
//!   (hub nodes, Section 5.2.1).
//!
//! Each sampler also reports its [`DegreeSampler::mean`], used both by the
//! schema consistency check (Section 4: in/out totals must be compatible) and
//! by the Gaussian fast path of the generator, which "exploits the average
//! information of the Gaussian distributions to avoid entirely constructing
//! the vectors".

use crate::rng::Prng;

/// A sampler of non-negative integer node degrees.
pub trait DegreeSampler {
    /// Draws one degree.
    fn sample(&self, rng: &mut Prng) -> u64;

    /// Expected value of the sampled degree.
    fn mean(&self) -> f64;
}

/// Uniform integer distribution over `[min, max]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Smallest degree (inclusive).
    pub min: u64,
    /// Largest degree (inclusive).
    pub max: u64,
}

impl Uniform {
    /// Creates a uniform sampler; panics if `min > max`.
    pub fn new(min: u64, max: u64) -> Self {
        assert!(
            min <= max,
            "Uniform requires min <= max, got [{min}, {max}]"
        );
        Uniform { min, max }
    }
}

impl DegreeSampler for Uniform {
    #[inline]
    fn sample(&self, rng: &mut Prng) -> u64 {
        rng.range_inclusive(self.min, self.max)
    }

    fn mean(&self) -> f64 {
        (self.min as f64 + self.max as f64) / 2.0
    }
}

/// Gaussian (normal) distribution with mean `mu` and standard deviation
/// `sigma`; samples are rounded to the nearest integer and clamped at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean of the underlying normal distribution.
    pub mu: f64,
    /// Standard deviation of the underlying normal distribution.
    pub sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian sampler; panics on non-finite or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "Gaussian mu must be finite");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "Gaussian sigma must be finite and non-negative"
        );
        Gaussian { mu, sigma }
    }

    /// Draws from the *continuous* normal distribution via Box–Muller.
    #[inline]
    pub fn sample_f64(&self, rng: &mut Prng) -> f64 {
        // Box–Muller transform; one variate per call keeps the generator
        // stateless (no cached second variate), which preserves splittability.
        let u1 = loop {
            let u = rng.f64_unit();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = rng.f64_unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mu + self.sigma * r * theta.cos()
    }
}

impl DegreeSampler for Gaussian {
    #[inline]
    fn sample(&self, rng: &mut Prng) -> u64 {
        let x = self.sample_f64(rng);
        if x <= 0.0 {
            0
        } else {
            x.round() as u64
        }
    }

    fn mean(&self) -> f64 {
        // Clamping at zero biases the mean upward for small mu/sigma ratios,
        // but gMark schemas use mu >> 0, where the bias is negligible. The
        // consistency check treats this as the nominal mean, as the paper
        // does.
        self.mu.max(0.0)
    }
}

/// Bounded Zipf distribution: `P(k) ∝ k^(-s)` for `k ∈ {1, …, n}`.
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger 1996), the same
/// algorithm as `rand_distr::Zipf`, which is O(1) per sample for any support
/// size — required because gMark draws one degree per node on multi-million
/// node graphs. Works for any exponent `s > 0`, including `s = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    /// Support upper bound `n` (samples lie in `1..=n`).
    pub n: u64,
    /// Exponent `s > 0`.
    pub s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

/// `(exp(t) - 1) / t`, continuous at `t = 0`.
#[inline]
fn helper_expm1_over(t: f64) -> f64 {
    if t.abs() > 1e-8 {
        t.exp_m1() / t
    } else {
        1.0 + t / 2.0 * (1.0 + t / 3.0)
    }
}

/// `ln(1 + t) / t`, continuous at `t = 0`.
#[inline]
fn helper_log1p_over(t: f64) -> f64 {
    if t.abs() > 1e-8 {
        t.ln_1p() / t
    } else {
        1.0 - t / 2.0 + t * t / 3.0
    }
}

impl Zipf {
    /// Creates a bounded Zipf sampler over `1..=n` with exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is not a positive finite number.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let h = |x: f64| -> f64 {
            let ln_x = x.ln();
            helper_expm1_over((1.0 - s) * ln_x) * ln_x
        };
        let h_inv = |y: f64| -> f64 {
            let t = (y * (1.0 - s)).max(-1.0);
            (helper_log1p_over(t) * y).exp()
        };
        let h_x1 = h(1.5) - 1.0; // h(1) = 1^-s = 1
        let h_n = h(n as f64 + 0.5);
        let threshold = 2.0 - h_inv(h(2.5) - (-s * 2.0f64.ln()).exp());
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    #[inline]
    fn h_integral(&self, x: f64) -> f64 {
        let ln_x = x.ln();
        helper_expm1_over((1.0 - self.s) * ln_x) * ln_x
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    #[inline]
    fn h_integral_inverse(&self, y: f64) -> f64 {
        let t = (y * (1.0 - self.s)).max(-1.0);
        (helper_log1p_over(t) * y).exp()
    }

    /// Exact probability mass `P(k)` (for testing / reporting); `O(n)`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            return 0.0;
        }
        let norm: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / norm
    }
}

impl DegreeSampler for Zipf {
    fn sample(&self, rng: &mut Prng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            // u is uniform in (h(n + 1/2), h(3/2) - h(1)]; x = H^-1(u).
            let u = self.h_n + rng.f64_unit() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k = (x.round() as u64).clamp(1, self.n);
            if (k as f64 - x) <= self.threshold
                || u >= self.h_integral(k as f64 + 0.5) - self.h(k as f64)
            {
                return k;
            }
        }
    }

    fn mean(&self) -> f64 {
        // mean = H_{n,s-1} / H_{n,s}. Sum the first `m` terms exactly and
        // approximate the tail by the midpoint integral
        // ∑_{k=m+1..n} k^-p ≈ ∫_{m+1/2}^{n+1/2} x^-p dx, accurate to O(m^-2).
        let hs = |p: f64| -> f64 {
            let m = self.n.min(4096);
            let head: f64 = (1..=m).map(|i| (i as f64).powf(-p)).sum();
            if m == self.n {
                return head;
            }
            let a = m as f64 + 0.5;
            let b = self.n as f64 + 0.5;
            let tail = if (p - 1.0).abs() < 1e-12 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - p) - a.powf(1.0 - p)) / (1.0 - p)
            };
            head + tail
        };
        hs(self.s - 1.0) / hs(self.s)
    }
}

/// A dynamically-dispatched degree sampler (uniform / Gaussian / Zipf).
///
/// Convenience enum used by the generator so a constraint can hold either
/// distribution without boxing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnySampler {
    /// Uniform over an interval.
    Uniform(Uniform),
    /// Gaussian with rounding and clamping.
    Gaussian(Gaussian),
    /// Bounded Zipf.
    Zipf(Zipf),
}

impl DegreeSampler for AnySampler {
    #[inline]
    fn sample(&self, rng: &mut Prng) -> u64 {
        match self {
            AnySampler::Uniform(s) => s.sample(rng),
            AnySampler::Gaussian(s) => s.sample(rng),
            AnySampler::Zipf(s) => s.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            AnySampler::Uniform(s) => s.mean(),
            AnySampler::Gaussian(s) => s.mean(),
            AnySampler::Zipf(s) => s.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Prng {
        Prng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let s = Uniform::new(2, 5);
        let mut rng = rng();
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((2..=5).contains(&v));
        }
    }

    #[test]
    fn uniform_point_mass() {
        let s = Uniform::new(3, 3);
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 3);
        }
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn uniform_mean_matches_empirical() {
        let s = Uniform::new(0, 10);
        let mut rng = rng();
        let total: u64 = (0..100_000).map(|_| s.sample(&mut rng)).sum();
        let emp = total as f64 / 100_000.0;
        assert!(
            (emp - s.mean()).abs() < 0.05,
            "empirical {emp} vs {}",
            s.mean()
        );
    }

    #[test]
    fn gaussian_empirical_mean_and_sd() {
        let g = Gaussian::new(20.0, 3.0);
        let mut rng = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.1, "mean {mean}");
        // Rounding to integers adds 1/12 variance.
        assert!((var.sqrt() - 3.0).abs() < 0.15, "sd {}", var.sqrt());
    }

    #[test]
    fn gaussian_never_negative() {
        let g = Gaussian::new(0.5, 5.0);
        let mut rng = rng();
        for _ in 0..10_000 {
            let _v: u64 = g.sample(&mut rng); // type-checked non-negative
        }
    }

    #[test]
    fn gaussian_zero_sigma_is_constant() {
        let g = Gaussian::new(4.0, 0.0);
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 4);
        }
    }

    #[test]
    fn zipf_support_bounds() {
        for s in [0.5, 1.0, 2.5] {
            let z = Zipf::new(100, s);
            let mut rng = rng();
            for _ in 0..10_000 {
                let v = z.sample(&mut rng);
                assert!((1..=100).contains(&v), "sample {v} out of support (s={s})");
            }
        }
    }

    #[test]
    fn zipf_singleton_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_matches_exact_pmf() {
        // Chi-square-style check of the rejection-inversion sampler against
        // the exact pmf on a small support.
        for s in [0.8, 1.0, 1.5, 2.5] {
            let z = Zipf::new(10, s);
            let mut rng = Prng::seed_from_u64(0x5EED + s.to_bits());
            let n = 200_000;
            let mut counts = [0u64; 11];
            for _ in 0..n {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            for k in 1..=10u64 {
                let expected = z.pmf(k) * n as f64;
                let got = counts[k as usize] as f64;
                // 5-sigma Poisson tolerance.
                let tol = 5.0 * expected.sqrt() + 5.0;
                assert!(
                    (got - expected).abs() < tol,
                    "s={s} k={k}: got {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn zipf_mean_small_support_is_exact() {
        let z = Zipf::new(10, 2.0);
        let norm: f64 = (1..=10).map(|i: u64| (i as f64).powf(-2.0)).sum();
        let exact: f64 = (1..=10).map(|i: u64| (i as f64).powf(-1.0)).sum::<f64>() / norm;
        assert!((z.mean() - exact).abs() < 1e-12);
    }

    #[test]
    fn zipf_mean_large_support_close_to_empirical() {
        let z = Zipf::new(100_000, 2.5);
        let mut rng = rng();
        let n = 200_000;
        let total: u64 = (0..n).map(|_| z.sample(&mut rng)).sum();
        let emp = total as f64 / n as f64;
        assert!(
            (emp - z.mean()).abs() / z.mean() < 0.05,
            "empirical {emp} vs analytic {}",
            z.mean()
        );
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_frequency() {
        let z = Zipf::new(50, 1.5);
        let mut rng = rng();
        let mut counts = vec![0u64; 51];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[5]);
        assert!(counts[5] > counts[25]);
    }

    #[test]
    fn any_sampler_dispatches() {
        let mut rng = rng();
        let u = AnySampler::Uniform(Uniform::new(1, 1));
        assert_eq!(u.sample(&mut rng), 1);
        assert_eq!(u.mean(), 1.0);
        let z = AnySampler::Zipf(Zipf::new(1, 2.0));
        assert_eq!(z.sample(&mut rng), 1);
    }
}
