//! Statistical foundations for the gMark generator.
//!
//! This crate provides the numeric substrate the paper's algorithms rely on:
//!
//! * a small, deterministic, splittable pseudo-random number generator
//!   ([`Prng`]) so that graph and workload generation are exactly
//!   reproducible from a 64-bit seed,
//! * samplers for the three degree distributions supported by gMark
//!   (Definition 3.1): [`Uniform`], [`Gaussian`], and bounded [`Zipf`],
//! * least-squares [`regression`] used by the evaluation (Section 6.2) to
//!   recover the selectivity exponent `α` from `|Q(G)| = β·|G|^α`,
//! * summary statistics ([`summary`]) used to report the `mean ± sd` rows of
//!   Table 2,
//! * a lock-free log-bucketed latency [`histogram`] shared by the serving
//!   path's `/v1/stats` and the `gmark bench drive` traffic driver.
//!
//! The `rand_distr` crate is not available offline, so the Gaussian
//! (Box–Muller) and Zipf (Hörmann–Derflinger rejection-inversion) samplers
//! are implemented and property-tested here.

#![warn(missing_docs)]

pub mod histogram;
pub mod regression;
pub mod rng;
pub mod sampler;
pub mod summary;

pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use regression::{linear_regression, log_log_alpha, Regression};
pub use rng::Prng;
pub use sampler::{DegreeSampler, Gaussian, Uniform, Zipf};
pub use summary::Summary;
