//! A concurrent log-bucketed latency histogram.
//!
//! Built for the serving path and the `gmark bench drive` traffic
//! driver, which both need tail percentiles (p50/p95/p99/max) from many
//! threads without a lock on the record path. The design is the standard
//! log-linear compromise: values are microseconds, bucket `i` covers
//! `[2^(i-1), 2^i)` µs, and each bucket is one relaxed [`AtomicU64`].
//! Recording is a single `fetch_add` plus a `fetch_max`; reading takes a
//! point-in-time snapshot and reconstructs quantiles from the bucket
//! boundaries.
//!
//! The price of log bucketing is resolution: a reported quantile is the
//! *upper edge* of the bucket the rank falls in, so it can overstate the
//! true latency by at most 2× (one octave). That error model is uniform
//! across PRs, which is what a trajectory scoreboard needs — comparable
//! numbers, not perfect ones. `max` is tracked exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: bucket 63 absorbs everything from `2^62` µs up, far
/// beyond any latency this workspace can produce.
const BUCKETS: usize = 64;

/// The bucket a microsecond value lands in: `0` holds zero, bucket `i`
/// holds `[2^(i-1), 2^i)`.
fn bucket_of(micros: u64) -> usize {
    ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive upper edge of a bucket, the value quantiles report.
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << index
    }
}

/// A lock-free log-bucketed histogram of latencies in microseconds.
///
/// `record` is wait-free (two relaxed atomic ops) and safe from any
/// number of threads; `snapshot` is approximate under concurrent writes
/// (buckets are read one by one), which is fine for stats endpoints and
/// end-of-run reports.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one latency.
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one latency given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Folds another histogram into this one (used to combine per-worker
    /// histograms after a drive run).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_micros
            .fetch_add(other.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_micros
            .fetch_max(other.max_micros.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Recorded samples so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile reads and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of a [`LatencyHistogram`]: where quantiles are computed.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Recorded samples.
    pub count: u64,
    /// Sum of all recorded values in microseconds (for the mean).
    pub sum_micros: u64,
    /// The exact largest recorded value in microseconds.
    pub max_micros: u64,
}

impl HistogramSnapshot {
    /// The latency at quantile `q` in `[0, 1]`, in microseconds: the
    /// upper edge of the bucket holding the rank-`⌈q·count⌉` sample
    /// (within 2× of the true value), except the top-most occupied
    /// bucket, which reports the exact tracked maximum. Zero when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The true max never exceeds the bucket edge estimate.
                return bucket_upper(i).min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// Mean latency in microseconds (exact, from the tracked sum).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }

    /// The standard percentile row as a JSON object fragment:
    /// `{"count":…,"p50_us":…,"p95_us":…,"p99_us":…,"max_us":…,"mean_us":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
             \"max_us\":{},\"mean_us\":{}}}",
            self.count,
            self.quantile_micros(0.50),
            self.quantile_micros(0.95),
            self.quantile_micros(0.99),
            self.max_micros,
            self.mean_micros(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_octaves() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value sits at or below its bucket's reported edge.
        for v in [0u64, 1, 2, 3, 7, 100, 4096, 1 << 40] {
            assert!(v <= bucket_upper(bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn quantiles_bound_the_true_values_within_one_octave() {
        let h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record_micros(micros);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        let p50 = snap.quantile_micros(0.50);
        // True p50 is 500; the estimate is its bucket edge.
        assert!((500..=1000).contains(&p50), "p50={p50}");
        let p99 = snap.quantile_micros(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(snap.max_micros, 1000);
        assert_eq!(snap.quantile_micros(1.0), 1000, "top quantile is exact");
        assert_eq!(snap.mean_micros(), 500);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_micros(0.5), 0);
        assert_eq!(snap.mean_micros(), 0);
        assert_eq!(snap.to_json().matches(":0").count(), 6);
    }

    #[test]
    fn merge_accumulates_counts_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1_000));
        b.record(Duration::from_micros(20));
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max_micros, 1_000);
        assert_eq!(snap.sum_micros, 1_030);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().max_micros, 3999);
    }
}
