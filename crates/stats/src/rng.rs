//! Deterministic, splittable pseudo-random number generation.
//!
//! gMark's generation algorithms (Figs. 5 and 6 of the paper) are randomized
//! but must be reproducible: the same configuration and seed must yield the
//! same graph and the same workload, including when constraints are processed
//! in parallel. [`Prng`] is a xoshiro256** generator seeded through SplitMix64,
//! with a [`Prng::split`] operation that derives statistically independent
//! child streams — one per schema constraint / per query — so the processing
//! order never affects the output (the paper notes the draws are statistically
//! independent and order-free).
//!
//! The generator is self-contained: the `rand` ecosystem is not a
//! dependency, so the workspace builds with no external crates.

/// A deterministic xoshiro256** PRNG with SplitMix64 seeding.
///
/// Not cryptographically secure; used only for synthetic data generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro256** requires a non-zero state; SplitMix64 output of four
        // consecutive words is never all-zero in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            Prng { s: [1, 2, 3, 4] }
        } else {
            Prng { s }
        }
    }

    /// Derives an independent child generator keyed by `index`.
    ///
    /// Children with distinct indices have uncorrelated streams, which makes
    /// per-constraint / per-query generation order-independent and
    /// parallelizable without losing determinism.
    pub fn split(&self, index: u64) -> Prng {
        // Mix the current state with the index through SplitMix64 so that
        // splitting does not advance `self`.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        if s == [0, 0, 0, 0] {
            Prng { s: [1, 2, 3, 4] }
        } else {
            Prng { s }
        }
    }

    /// Derives an independent child generator keyed by `(domain, index)`.
    ///
    /// The two-level split gives each *subsystem* its own family of
    /// per-item streams: the graph generator splits the master seed by
    /// constraint index and the workload generator by query index, and
    /// without domain separation constraint `i` and query `i` would read
    /// the **same** stream whenever the CLI shares one `--seed` between
    /// them. `split2(domain, index)` is `split(domain).split(index)` —
    /// distinct domains yield uncorrelated families even at equal indices.
    pub fn split2(&self, domain: u64, index: u64) -> Prng {
        self.split(domain).split(index)
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Prng::below requires a positive bound");
        // Lemire's algorithm on 64x64 -> 128-bit multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let threshold = bound.wrapping_neg() % bound;
            while l < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Prng::range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Fisher–Yates shuffle of a slice (the `shuffle` of Fig. 5, line 7).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Prng::choose requires a non-empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights`. Returns `None` if all weights are zero / non-finite.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights
            .iter()
            .copied()
            .filter(|w| w.is_finite() && *w > 0.0)
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64_unit() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                last_positive = Some(i);
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating-point slack: fall back to the last positive-weight index.
        last_positive
    }
}

/// Fills a byte slice from the stream (the `rand`-style primitive; kept
/// crate-local so the workspace builds without the `rand` ecosystem).
impl Prng {
    /// Fills `dst` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn split_does_not_advance_parent() {
        let a = Prng::seed_from_u64(7);
        let b = a.clone();
        let _child = a.split(3);
        assert_eq!(a, b);
    }

    #[test]
    fn split_children_are_independent() {
        let root = Prng::seed_from_u64(7);
        let mut c0 = root.split(0);
        let mut c1 = root.split(1);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert!(same < 4, "child streams should diverge");
    }

    #[test]
    fn split_is_deterministic() {
        let root = Prng::seed_from_u64(99);
        let mut a = root.split(5);
        let mut b = root.split(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split2_is_deterministic_and_domain_separated() {
        let root = Prng::seed_from_u64(2017);
        let mut a = root.split2(1, 5);
        let mut b = root.split2(1, 5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Same index under different domains must diverge...
        let mut c = root.split2(2, 5);
        let mut d = root.split2(1, 5);
        let same = (0..64).filter(|_| c.next_u64() == d.next_u64()).count();
        assert!(same < 4, "domains should separate streams");
        // ...and split2 must not collide with a single-level split.
        let mut e = root.split(5);
        let mut f = root.split2(1, 5);
        let same = (0..64).filter(|_| e.next_u64() == f.next_u64()).count();
        assert!(same < 4, "split2 should not alias split");
    }

    #[test]
    fn split2_does_not_advance_parent() {
        let a = Prng::seed_from_u64(7);
        let b = a.clone();
        let _child = a.split2(1, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Prng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_one_is_zero() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = Prng::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_is_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(17);
        for _ in 0..10_000 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(23);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "100 elements should move");
    }

    #[test]
    fn choose_weighted_respects_zero_weights() {
        let mut rng = Prng::seed_from_u64(31);
        let weights = [0.0, 1.0, 0.0, 2.0];
        for _ in 0..200 {
            let i = rng.choose_weighted(&weights).unwrap();
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn choose_weighted_all_zero_is_none() {
        let mut rng = Prng::seed_from_u64(31);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted(&[]), None);
    }

    #[test]
    fn choose_weighted_roughly_proportional() {
        let mut rng = Prng::seed_from_u64(37);
        let weights = [1.0, 3.0];
        let mut counts = [0u32; 2];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio} should be ~3");
    }

    #[test]
    fn fill_bytes_works() {
        let mut rng = Prng::seed_from_u64(41);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
