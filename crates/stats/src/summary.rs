//! Mean / standard-deviation summaries for experiment reporting.
//!
//! Table 2 of the paper reports `α` values "averaged across constant, linear,
//! and quadratic queries (with standard deviation)". [`Summary`] is a small
//! streaming accumulator (Welford's algorithm) producing exactly those
//! `mean ± sd` entries; it also tracks min/max for the outlier-discarding
//! measurement protocol of Section 7.1.

/// Streaming mean / variance / extrema accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (`n - 1` denominator, as Table 2 reports a
    /// sample statistic); 0 for fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Formats as the paper's `mean±sd` table entry, e.g. `0.200±0.417`.
    pub fn paper_entry(&self) -> String {
        format!("{:.3}\u{00B1}{:.3}", self.mean(), self.std_dev())
    }
}

/// Averages the "warm runs" the way Section 7.1 measures query time:
/// given the runs, drop the fastest and the slowest, return the mean of the
/// rest. With fewer than three runs, returns the plain mean.
pub fn warm_run_average(runs: &[f64]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    if runs.len() < 3 {
        return runs.iter().sum::<f64>() / runs.len() as f64;
    }
    let mut sorted = runs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("run times must not be NaN"));
    let inner = &sorted[1..sorted.len() - 1];
    inner.iter().sum::<f64>() / inner.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn known_mean_and_sd() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample sd of this classic data set is sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn paper_entry_format() {
        let s = Summary::from_slice(&[0.2, 0.2, 0.2]);
        assert_eq!(s.paper_entry(), "0.200\u{00B1}0.000");
    }

    #[test]
    fn warm_run_average_drops_extremes() {
        // Five warm runs: drop fastest (1.0) and slowest (100.0).
        let avg = warm_run_average(&[1.0, 10.0, 11.0, 12.0, 100.0]);
        assert!((avg - 11.0).abs() < 1e-12);
    }

    #[test]
    fn warm_run_average_small_inputs() {
        assert_eq!(warm_run_average(&[]), 0.0);
        assert_eq!(warm_run_average(&[4.0]), 4.0);
        assert_eq!(warm_run_average(&[4.0, 6.0]), 5.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-9);
    }
}
