//! Per-constraint N-Triples shards for the memory-bounded streaming
//! pipeline.
//!
//! The parallel in-memory pipeline ([`crate::GraphBuilder::absorb`])
//! materializes every edge before serializing, which caps graph size at
//! available RAM. The streaming pipeline instead gives each schema
//! constraint its own *shard*: an N-Triples fragment written to a temp
//! file by whichever worker thread claims that constraint, then
//! concatenated into the final output.
//!
//! # Shard format
//!
//! Shard `i` holds exactly the N-Triples lines of constraint `i`, in the
//! order the generator emitted them, produced by an
//! [`NTriplesWriter`] with the same predicate
//! names and base IRI as every other shard. Shards are plain N-Triples —
//! `cat`-ing them in any order is a valid document — but gMark relies on
//! a stronger property:
//!
//! # Concatenation invariant
//!
//! Because every constraint draws from an RNG stream split off the master
//! seed by *constraint index* (never from a shared sequential stream), the
//! bytes of shard `i` are a pure function of `(config, seed, i)` —
//! independent of thread count, scheduling, and the order shards are
//! written in. Concatenating shards in **ascending constraint order**
//! therefore reproduces, byte for byte, the file a single-threaded run
//! streaming straight to disk would have written. [`ShardSet::concat_into`]
//! implements exactly that order, and `tests/streamed_determinism.rs` pins
//! the guarantee at 1/2/8 threads.

use crate::ntriples::{NTriplesFormat, NTriplesWriter};
use crate::sink::EdgeSink;
use crate::{NodeId, PredIdx};
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A scratch directory holding one N-Triples shard per schema constraint.
///
/// The directory is uniquely named (process id + counter), so concurrent
/// gMark runs can share a scratch parent; it is removed, with everything
/// in it, when the `ShardSet` is dropped.
#[derive(Debug)]
pub struct ShardSet {
    dir: PathBuf,
    count: usize,
}

impl ShardSet {
    /// Creates a fresh shard directory under `parent` for `count` shards.
    ///
    /// `parent` is created if missing. Choosing a parent on the same
    /// filesystem as the final output keeps the concatenation a plain
    /// sequential copy (no cross-device surprises).
    pub fn create(parent: &Path, count: usize) -> io::Result<ShardSet> {
        let dir = create_unique_scratch(parent, ".gmark-shards-")?;
        Ok(ShardSet { dir, count })
    }

    /// Number of shards this set was created for.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Path of shard `shard` (zero-padded so lexicographic = numeric order,
    /// which keeps the directory debuggable with plain `ls` + `cat`).
    pub fn path(&self, shard: usize) -> PathBuf {
        debug_assert!(
            shard < self.count,
            "shard {shard} out of range {}",
            self.count
        );
        self.dir.join(format!("shard-{shard:06}.nt"))
    }

    /// Opens the writer for one shard. Each worker thread opens the shards
    /// it claims; all writers must share one [`NTriplesFormat`] — the
    /// predicate alphabet and base of the final document (see the
    /// concatenation invariant above) — which is also why the format is
    /// precomputed once rather than re-encoded per shard.
    pub fn writer(&self, shard: usize, format: Arc<NTriplesFormat>) -> io::Result<ShardWriter> {
        let path = self.path(shard);
        let file = File::create(&path).map_err(|e| annotate(e, "creating shard", &path))?;
        Ok(ShardWriter {
            inner: NTriplesWriter::with_format(BufWriter::new(file), format),
        })
    }

    /// Opens a plain-text writer for one shard — the generic counterpart
    /// of [`ShardSet::writer`] used by the query-workload pipeline, where
    /// each shard holds one query's rendered text (rule notation or one of
    /// the four concrete syntaxes) rather than N-Triples. The same
    /// concatenation invariant applies: as long as shard `i`'s text is a
    /// pure function of the inputs and `i`, [`ShardSet::concat_into`]
    /// reproduces the single-threaded document byte for byte.
    pub fn text_writer(&self, shard: usize) -> io::Result<TextShardWriter> {
        let path = self.path(shard);
        let file = File::create(&path).map_err(|e| annotate(e, "creating shard", &path))?;
        Ok(TextShardWriter {
            inner: BufWriter::new(file),
            bytes: 0,
        })
    }

    /// Concatenates all shards into `out` in **ascending shard order**,
    /// returning the number of bytes copied.
    ///
    /// Every shard must have been written (and its writer finished); a
    /// missing shard file is an error, not an empty segment — it means a
    /// constraint was never generated.
    pub fn concat_into<W: Write>(&self, out: &mut W) -> io::Result<u64> {
        let mut bytes = 0u64;
        for shard in 0..self.count {
            let path = self.path(shard);
            let mut f = File::open(&path).map_err(|e| annotate(e, "opening shard", &path))?;
            bytes += io::copy(&mut f, out)?;
        }
        Ok(bytes)
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        // Best effort: scratch cleanup must never mask the real error path.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn annotate(e: io::Error, what: &str, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{what} {}: {e}", path.display()))
}

/// Creates a uniquely named (process id + counter) scratch directory under
/// `parent`, first reaping stale siblings with the same `prefix` — the
/// shared primitive behind N-Triples shard sets and the store's binary
/// edge spool. `prefix` must start with `.` and end with `-`.
pub(crate) fn create_unique_scratch(parent: &Path, prefix: &str) -> io::Result<PathBuf> {
    static UNIQUIFIER: AtomicU64 = AtomicU64::new(0);
    debug_assert!(prefix.starts_with('.') && prefix.ends_with('-'));
    fs::create_dir_all(parent).map_err(|e| annotate(e, "creating scratch parent", parent))?;
    reap_stale_scratch(parent, prefix, std::time::Duration::from_secs(3600));
    loop {
        let tag = UNIQUIFIER.fetch_add(1, Ordering::Relaxed);
        let dir = parent.join(format!("{prefix}{}-{tag}", std::process::id()));
        match fs::create_dir(&dir) {
            Ok(()) => return Ok(dir),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(annotate(e, "creating scratch dir", &dir)),
        }
    }
}

/// Removes `<prefix><pid>-*` directories left by processes that no
/// longer exist (Drop never runs on SIGKILL / un-unwound Ctrl-C, and an
/// interrupted Table 3-scale run can leave many GB behind). A directory
/// is reaped only when *both* hold:
///
/// * its pid is dead per procfs (so reaping only happens where `/proc`
///   exists, and directories of live local pids are never touched), and
/// * it has not been modified for `min_idle` (an hour in production;
///   shard creation bumps the dir mtime, so an active run keeps itself
///   fresh).
///
/// The pid check is namespace-local: a run in a *different* pid namespace
/// (container) sharing this scratch parent looks dead from here. The age
/// guard is what protects such runs — only one idle for over an hour can
/// be misreaped, and sharing one scratch/output directory between
/// concurrent runs is already unsupported (they would overwrite each
/// other's `graph.nt`). Best effort by design.
fn reap_stale_scratch(parent: &Path, prefix: &str, min_idle: std::time::Duration) {
    if !Path::new("/proc/self").exists() {
        return;
    }
    let Ok(entries) = fs::read_dir(parent) else {
        return;
    };
    let own_pid = std::process::id();
    for entry in entries.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix(prefix)) else {
            continue;
        };
        let Some(pid) = rest.split('-').next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        let pid_dead = pid != own_pid && !Path::new(&format!("/proc/{pid}")).exists();
        let idle_long = min_idle.is_zero()
            || entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age >= min_idle);
        if pid_dead && idle_long {
            let _ = fs::remove_dir_all(entry.path());
        }
    }
}

/// The per-constraint [`EdgeSink`]: an [`NTriplesWriter`] over a buffered
/// shard file.
#[derive(Debug)]
pub struct ShardWriter {
    inner: NTriplesWriter<BufWriter<File>>,
}

impl ShardWriter {
    /// Triples written to this shard so far.
    pub fn written(&self) -> u64 {
        self.inner.written()
    }

    /// Flushes the shard and surfaces any deferred I/O error, returning
    /// the number of triples written.
    pub fn finish(self) -> io::Result<u64> {
        self.inner.finish()
    }
}

impl EdgeSink for ShardWriter {
    #[inline]
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        self.inner.edge(src, pred, trg);
    }
}

/// A buffered plain-text shard (see [`ShardSet::text_writer`]).
#[derive(Debug)]
pub struct TextShardWriter {
    inner: BufWriter<File>,
    bytes: u64,
}

impl TextShardWriter {
    /// Appends `text` to the shard.
    pub fn write_str(&mut self, text: &str) -> io::Result<()> {
        self.inner.write_all(text.as_bytes())?;
        self.bytes += text.len() as u64;
        Ok(())
    }

    /// Flushes the shard and surfaces any deferred I/O error, returning
    /// the number of bytes written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.inner.flush()?;
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["a".to_owned(), "b".to_owned()]
    }

    fn format() -> Arc<NTriplesFormat> {
        Arc::new(NTriplesFormat::new(&names(), "http://g"))
    }

    #[test]
    fn concat_is_in_ascending_order_regardless_of_write_order() {
        let set = ShardSet::create(&std::env::temp_dir(), 3).unwrap();
        // Write shards out of order, as racing workers would.
        for shard in [2usize, 0, 1] {
            let mut w = set.writer(shard, format()).unwrap();
            w.edge(shard as NodeId, 0, 99);
            assert_eq!(w.finish().unwrap(), 1);
        }
        let mut buf = Vec::new();
        set.concat_into(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let subjects: Vec<&str> = text
            .lines()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert_eq!(
            subjects,
            vec![
                "<http://g/node/0>",
                "<http://g/node/1>",
                "<http://g/node/2>"
            ]
        );
    }

    #[test]
    fn concat_matches_single_writer_bytes() {
        // Sharded output must be byte-identical to one writer emitting the
        // same edges in shard-major order.
        let edges: Vec<Vec<(NodeId, PredIdx, NodeId)>> =
            vec![vec![(0, 0, 1), (2, 1, 3)], vec![], vec![(4, 0, 0)]];
        let set = ShardSet::create(&std::env::temp_dir(), edges.len()).unwrap();
        for (shard, es) in edges.iter().enumerate() {
            let mut w = set.writer(shard, format()).unwrap();
            for &(s, p, t) in es {
                w.edge(s, p, t);
            }
            w.finish().unwrap();
        }
        let mut sharded = Vec::new();
        let bytes = set.concat_into(&mut sharded).unwrap();
        assert_eq!(bytes as usize, sharded.len());

        let mut single = Vec::new();
        let mut w = NTriplesWriter::with_base(&mut single, names(), "http://g");
        for es in &edges {
            for &(s, p, t) in es {
                w.edge(s, p, t);
            }
        }
        w.finish().unwrap();
        assert_eq!(sharded, single);
    }

    #[test]
    fn text_shards_concat_in_ascending_order() {
        let set = ShardSet::create(&std::env::temp_dir(), 3).unwrap();
        // Written out of order, as racing workers would.
        for shard in [1usize, 2, 0] {
            let mut w = set.text_writer(shard).unwrap();
            w.write_str(&format!("query {shard}\n")).unwrap();
            assert_eq!(w.finish().unwrap(), format!("query {shard}\n").len() as u64);
        }
        let mut buf = Vec::new();
        let bytes = set.concat_into(&mut buf).unwrap();
        assert_eq!(bytes as usize, buf.len());
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "query 0\nquery 1\nquery 2\n"
        );
    }

    #[test]
    fn missing_shard_is_an_error() {
        let set = ShardSet::create(&std::env::temp_dir(), 2).unwrap();
        set.writer(0, format()).unwrap().finish().unwrap();
        // Shard 1 never written.
        let err = set.concat_into(&mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn drop_removes_scratch_dir() {
        let dir;
        {
            let set = ShardSet::create(&std::env::temp_dir(), 1).unwrap();
            set.writer(0, format()).unwrap().finish().unwrap();
            dir = set.path(0).parent().unwrap().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "scratch dir should be removed on drop");
    }

    #[test]
    fn stale_scratch_of_dead_process_is_reaped() {
        if !Path::new("/proc/self").exists() {
            return; // liveness check needs procfs
        }
        let parent = std::env::temp_dir().join(format!("gmark-reap-test-{}", std::process::id()));
        fs::create_dir_all(&parent).unwrap();
        // No pid this high exists (kernel pid_max tops out well below).
        let stale = parent.join(".gmark-shards-4294967294-0");
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join("shard-000000.nt"), b"leftover").unwrap();
        // Freshly modified: the production age guard must spare it even
        // though its pid is dead (cross-namespace protection)...
        let _recent_spared = ShardSet::create(&parent, 1).unwrap();
        assert!(stale.exists(), "hour-fresh dir must survive the age guard");
        // ...but once past the idle threshold it is reaped.
        reap_stale_scratch(&parent, ".gmark-shards-", std::time::Duration::ZERO);
        assert!(!stale.exists(), "stale dir of a dead pid must be reaped");
        drop(_recent_spared);
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn live_scratch_is_not_reaped() {
        let parent = std::env::temp_dir().join(format!("gmark-reap-live-{}", std::process::id()));
        let a = ShardSet::create(&parent, 1).unwrap();
        a.writer(0, format()).unwrap().finish().unwrap();
        // A second create in the same parent must leave our (live) dir alone.
        let _b = ShardSet::create(&parent, 1).unwrap();
        assert!(a.path(0).exists(), "live scratch dir was reaped");
        drop(a);
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn distinct_sets_do_not_collide() {
        let a = ShardSet::create(&std::env::temp_dir(), 1).unwrap();
        let b = ShardSet::create(&std::env::temp_dir(), 1).unwrap();
        assert_ne!(a.path(0), b.path(0));
    }
}
