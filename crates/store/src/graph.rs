//! Immutable CSR graphs and the builder that assembles them.

use crate::sink::EdgeSink;
use crate::{NodeId, PredIdx};

/// Compressed sparse row adjacency: `neighbors(v) = targets[offsets[v] .. offsets[v+1]]`.
///
/// Neighbor lists are sorted, enabling binary-search membership tests and
/// merge joins in the engines crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR over `node_count` nodes from an unsorted edge list.
    ///
    /// When `dedup` is set, parallel edges (identical `(src, trg)` pairs)
    /// are collapsed.
    pub fn from_edges(node_count: NodeId, edges: &[(NodeId, NodeId)], dedup: bool) -> Self {
        let n = node_count as usize;
        let mut counts = vec![0u64; n + 1];
        for &(s, _) in edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0 as NodeId; edges.len()];
        let mut cursor = counts.clone();
        for &(s, t) in edges {
            let slot = cursor[s as usize];
            targets[slot as usize] = t;
            cursor[s as usize] += 1;
        }
        let mut csr = Csr {
            offsets: counts,
            targets,
        };
        csr.sort_segments();
        if dedup {
            csr.dedup_segments();
        }
        csr
    }

    fn sort_segments(&mut self) {
        for v in 0..self.node_count() {
            let (lo, hi) = self.bounds(v as NodeId);
            self.targets[lo..hi].sort_unstable();
        }
    }

    fn dedup_segments(&mut self) {
        let n = self.node_count();
        let mut new_targets = Vec::with_capacity(self.targets.len());
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u64);
        for v in 0..n {
            let (lo, hi) = self.bounds(v as NodeId);
            let seg = &self.targets[lo..hi];
            let mut prev: Option<NodeId> = None;
            for &t in seg {
                if prev != Some(t) {
                    new_targets.push(t);
                    prev = Some(t);
                }
            }
            new_offsets.push(new_targets.len() as u64);
        }
        self.offsets = new_offsets;
        self.targets = new_targets;
    }

    #[inline]
    fn bounds(&self, v: NodeId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }

    /// Number of nodes covered by this adjacency structure.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = self.bounds(v);
        &self.targets[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let (lo, hi) = self.bounds(v);
        hi - lo
    }

    /// Whether the edge `(v, w)` is present (binary search).
    #[inline]
    pub fn contains(&self, v: NodeId, w: NodeId) -> bool {
        self.neighbors(v).binary_search(&w).is_ok()
    }

    /// The raw offset array: `node_count() + 1` monotone entries with
    /// `neighbors(v) = targets()[offsets()[v] as usize .. offsets()[v+1] as usize]`.
    ///
    /// Exposed for bulk consumers — the on-disk store writer serializes
    /// both arrays verbatim, and endpoint statistics scan offsets without
    /// touching targets.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated target array (see [`Csr::offsets`]).
    #[inline]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Iterates all `(source, target)` pairs in source order.
    pub fn iter_edges(&self) -> CsrEdges<'_> {
        CsrEdges {
            offsets: &self.offsets,
            targets: &self.targets,
            e: 0,
            v: 0,
            hi: 0,
            primed: false,
        }
    }
}

/// Concrete iterator behind [`Csr::iter_edges`]: walks the edge index and
/// advances the source node whenever it crosses an offset boundary —
/// nameable so [`GraphView::pairs`](crate::GraphView::pairs) can hold it
/// in an enum without boxing.
#[derive(Debug, Clone)]
pub struct CsrEdges<'a> {
    offsets: &'a [u64],
    targets: &'a [NodeId],
    e: usize,
    v: NodeId,
    hi: u64,
    primed: bool,
}

impl Iterator for CsrEdges<'_> {
    type Item = (NodeId, NodeId);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        if self.e >= self.targets.len() {
            return None;
        }
        if !self.primed {
            self.hi = self.offsets[1];
            self.primed = true;
        }
        while self.e as u64 >= self.hi {
            self.v += 1;
            self.hi = self.offsets[self.v as usize + 1];
        }
        let t = self.targets[self.e];
        self.e += 1;
        Some((self.v, t))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.targets.len() - self.e;
        (left, Some(left))
    }
}

/// The contiguous node-type partition: nodes of type `t` occupy the id range
/// `[offsets[t], offsets[t+1])`.
///
/// The generator assigns ids this way so that `id_T(j)` of Fig. 5 — "the jth
/// node of type T" — is a constant-time offset computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypePartition {
    offsets: Vec<NodeId>,
}

impl TypePartition {
    /// Builds a partition from per-type node counts.
    ///
    /// Panics if the total exceeds `NodeId` capacity.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc: u64 = 0;
        offsets.push(0);
        for &c in counts {
            acc = acc.checked_add(c).expect("node count overflow");
            assert!(acc <= NodeId::MAX as u64, "graph exceeds NodeId capacity");
            offsets.push(acc as NodeId);
        }
        TypePartition { offsets }
    }

    /// Number of types.
    #[inline]
    pub fn type_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(&self) -> NodeId {
        *self.offsets.last().expect("partition always has an entry")
    }

    /// Number of nodes of type `t`.
    #[inline]
    pub fn count(&self, t: usize) -> NodeId {
        self.offsets[t + 1] - self.offsets[t]
    }

    /// Id range of the nodes of type `t`.
    #[inline]
    pub fn range(&self, t: usize) -> std::ops::Range<NodeId> {
        self.offsets[t]..self.offsets[t + 1]
    }

    /// `id_T(j)` of Fig. 5: the id of the `j`th node (0-based) of type `t`.
    #[inline]
    pub fn node(&self, t: usize, j: NodeId) -> NodeId {
        debug_assert!(j < self.count(t));
        self.offsets[t] + j
    }

    /// The type of node `v` (binary search over the partition).
    #[inline]
    pub fn type_of(&self, v: NodeId) -> usize {
        debug_assert!(v < self.node_count());
        // partition_point returns the first offset > v; types are 0-based.
        self.offsets.partition_point(|&o| o <= v) - 1
    }

    /// The raw cumulative offsets (`type_count() + 1` entries, starting at
    /// 0) — the exact array the on-disk store serializes.
    #[inline]
    pub(crate) fn offsets(&self) -> &[NodeId] {
        &self.offsets
    }

    /// Rebuilds a partition from the offsets written by
    /// [`TypePartition::offsets`]; rejects arrays that are empty,
    /// non-monotone, or not starting at 0.
    pub(crate) fn from_offsets(offsets: Vec<NodeId>) -> Option<Self> {
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(TypePartition { offsets })
    }
}

/// An immutable directed edge-labeled graph with typed nodes.
#[derive(Debug, Clone)]
pub struct Graph {
    partition: TypePartition,
    fwd: Vec<Csr>,
    bwd: Vec<Csr>,
    /// Cached sum of the per-predicate edge counts: the planner and
    /// statistics paths ask for the total repeatedly, and re-summing every
    /// CSR per call made `edge_count` O(predicates) instead of O(1).
    edge_count: usize,
}

impl Graph {
    /// Number of nodes `|V|` (the paper's graph size parameter `n`).
    #[inline]
    pub fn node_count(&self) -> NodeId {
        self.partition.node_count()
    }

    /// Number of predicates (edge labels) in Σ.
    #[inline]
    pub fn predicate_count(&self) -> usize {
        self.fwd.len()
    }

    /// The node-type partition.
    #[inline]
    pub fn partition(&self) -> &TypePartition {
        &self.partition
    }

    /// Total number of edges across all predicates (cached at build time).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of `a`-labeled edges.
    #[inline]
    pub fn edge_count_for(&self, pred: PredIdx) -> usize {
        self.fwd[pred].edge_count()
    }

    /// Sorted `a`-successors of `v`: all `w` with an edge `v --a--> w`.
    #[inline]
    pub fn out_neighbors(&self, pred: PredIdx, v: NodeId) -> &[NodeId] {
        self.fwd[pred].neighbors(v)
    }

    /// Sorted `a`-predecessors of `v`: all `u` with an edge `u --a--> v`.
    #[inline]
    pub fn in_neighbors(&self, pred: PredIdx, v: NodeId) -> &[NodeId] {
        self.bwd[pred].neighbors(v)
    }

    /// Neighbors along `pred`, traversing forward or backward; the primitive
    /// for evaluating the paper's `a` / `a⁻` symbols of Σ±.
    #[inline]
    pub fn neighbors(&self, pred: PredIdx, v: NodeId, inverse: bool) -> &[NodeId] {
        if inverse {
            self.in_neighbors(pred, v)
        } else {
            self.out_neighbors(pred, v)
        }
    }

    /// Whether the edge `v --a--> w` exists.
    #[inline]
    pub fn has_edge(&self, pred: PredIdx, v: NodeId, w: NodeId) -> bool {
        self.fwd[pred].contains(v, w)
    }

    /// Forward CSR of a predicate.
    #[inline]
    pub fn forward(&self, pred: PredIdx) -> &Csr {
        &self.fwd[pred]
    }

    /// Backward CSR of a predicate.
    #[inline]
    pub fn backward(&self, pred: PredIdx) -> &Csr {
        &self.bwd[pred]
    }

    /// Iterates the `(source, target)` pairs of one predicate.
    pub fn edges(&self, pred: PredIdx) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.fwd[pred].iter_edges()
    }

    /// Iterates the pairs of one `Σ±` symbol in **lexicographic order**:
    /// `(s, t)` per forward edge, `(t, s)` per edge when `inverse` is set.
    ///
    /// Both directions come straight out of the corresponding CSR (the
    /// backward index stores flipped pairs already sorted by target), so
    /// consumers that need a sorted binary relation — the evaluation
    /// engines' `Relation::of_symbol` in particular — get one without
    /// collecting and re-sorting the edge list per query.
    pub fn pairs(
        &self,
        pred: PredIdx,
        inverse: bool,
    ) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        if inverse {
            self.bwd[pred].iter_edges()
        } else {
            self.fwd[pred].iter_edges()
        }
    }

    /// In-degree sequence for `(pred, type)` — used by the schema-extraction
    /// extension and by distribution-shape tests.
    pub fn in_degrees(&self, pred: PredIdx, node_type: usize) -> Vec<usize> {
        self.partition
            .range(node_type)
            .map(|v| self.bwd[pred].degree(v))
            .collect()
    }

    /// Out-degree sequence for `(pred, type)`.
    pub fn out_degrees(&self, pred: PredIdx, node_type: usize) -> Vec<usize> {
        self.partition
            .range(node_type)
            .map(|v| self.fwd[pred].degree(v))
            .collect()
    }
}

/// Accumulates streamed edges, then builds the immutable [`Graph`].
#[derive(Debug)]
pub struct GraphBuilder {
    partition: TypePartition,
    edges: Vec<Vec<(NodeId, NodeId)>>,
    dedup: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with the given type partition and
    /// predicate count. Parallel `(src, pred, trg)` duplicates are collapsed
    /// by default (see [`GraphBuilder::keep_parallel_edges`]).
    pub fn new(partition: TypePartition, predicate_count: usize) -> Self {
        GraphBuilder {
            partition,
            edges: (0..predicate_count).map(|_| Vec::new()).collect(),
            dedup: true,
        }
    }

    /// Keeps parallel edges instead of deduplicating them.
    pub fn keep_parallel_edges(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Number of edges accumulated so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Merges the edges accumulated by another builder.
    ///
    /// The merge appends `other`'s per-predicate edge lists to this
    /// builder's, so absorbing shards **in ascending constraint order**
    /// reproduces exactly the internal state a single sequential builder
    /// would have reached — the invariant the parallel generator relies on
    /// for bit-identical output at any thread count.
    pub fn absorb(&mut self, other: GraphBuilder) {
        assert_eq!(
            self.edges.len(),
            other.edges.len(),
            "predicate count mismatch"
        );
        for (mine, theirs) in self.edges.iter_mut().zip(other.edges) {
            mine.extend(theirs);
        }
    }

    /// Finalizes into CSR form on the calling thread.
    pub fn build(self) -> Graph {
        self.build_with_threads(1)
    }

    /// Finalizes into CSR form, fanning the per-predicate forward/backward
    /// CSR construction out over `threads` worker threads.
    ///
    /// Each `(predicate, direction)` pair is an independent work item —
    /// its CSR depends only on that predicate's accumulated edge list — so
    /// workers claim items from a shared counter and the results are placed
    /// by index. The output is identical for every thread count.
    pub fn build_with_threads(self, threads: usize) -> Graph {
        let n = self.partition.node_count();
        let dedup = self.dedup;
        let pred_count = self.edges.len();
        // One item per (predicate, direction); no point spawning more
        // workers than items.
        let threads = threads.max(1).min((pred_count * 2).max(1));
        if threads <= 1 || pred_count == 0 {
            let mut fwd = Vec::with_capacity(pred_count);
            let mut bwd = Vec::with_capacity(pred_count);
            for pairs in &self.edges {
                fwd.push(Csr::from_edges(n, pairs, dedup));
                let flipped: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(s, t)| (t, s)).collect();
                bwd.push(Csr::from_edges(n, &flipped, dedup));
            }
            let edge_count = fwd.iter().map(Csr::edge_count).sum();
            return Graph {
                partition: self.partition,
                fwd,
                bwd,
                edge_count,
            };
        }

        let edges = &self.edges;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut finalized: Vec<(usize, Csr)> = std::thread::scope(|scope| {
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let item = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if item >= pred_count * 2 {
                                break;
                            }
                            let pred = item / 2;
                            let csr = if item.is_multiple_of(2) {
                                Csr::from_edges(n, &edges[pred], dedup)
                            } else {
                                let flipped: Vec<(NodeId, NodeId)> =
                                    edges[pred].iter().map(|&(s, t)| (t, s)).collect();
                                Csr::from_edges(n, &flipped, dedup)
                            };
                            out.push((item, csr));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("CSR finalization worker panicked"))
                .collect()
        });
        finalized.sort_by_key(|(item, _)| *item);
        let mut fwd = Vec::with_capacity(pred_count);
        let mut bwd = Vec::with_capacity(pred_count);
        for (item, csr) in finalized {
            if item.is_multiple_of(2) {
                fwd.push(csr);
            } else {
                bwd.push(csr);
            }
        }
        let edge_count = fwd.iter().map(Csr::edge_count).sum();
        Graph {
            partition: self.partition,
            fwd,
            bwd,
            edge_count,
        }
    }
}

impl EdgeSink for GraphBuilder {
    #[inline]
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        debug_assert!(src < self.partition.node_count());
        debug_assert!(trg < self.partition.node_count());
        self.edges[pred].push((src, trg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph {
        // Types: T0 = {0,1,2}, T1 = {3,4}; predicates a=0, b=1.
        let part = TypePartition::from_counts(&[3, 2]);
        let mut b = GraphBuilder::new(part, 2);
        b.edge(0, 0, 3);
        b.edge(0, 0, 4);
        b.edge(1, 0, 3);
        b.edge(2, 1, 0);
        b.edge(2, 1, 0); // parallel duplicate, deduped by default
        b.build()
    }

    #[test]
    fn partition_basics() {
        let p = TypePartition::from_counts(&[3, 2, 0, 5]);
        assert_eq!(p.type_count(), 4);
        assert_eq!(p.node_count(), 10);
        assert_eq!(p.count(0), 3);
        assert_eq!(p.count(2), 0);
        assert_eq!(p.range(1), 3..5);
        assert_eq!(p.node(3, 0), 5);
        assert_eq!(p.type_of(0), 0);
        assert_eq!(p.type_of(2), 0);
        assert_eq!(p.type_of(3), 1);
        assert_eq!(p.type_of(4), 1);
        assert_eq!(p.type_of(5), 3); // empty type 2 is skipped
        assert_eq!(p.type_of(9), 3);
    }

    #[test]
    fn csr_neighbors_are_sorted() {
        let csr = Csr::from_edges(4, &[(0, 3), (0, 1), (0, 2), (2, 0)], false);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[NodeId]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.edge_count(), 4);
    }

    #[test]
    fn csr_dedup() {
        let csr = Csr::from_edges(2, &[(0, 1), (0, 1), (0, 1), (1, 0)], true);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.edge_count(), 2);
        let keep = Csr::from_edges(2, &[(0, 1), (0, 1)], false);
        assert_eq!(keep.edge_count(), 2);
        assert_eq!(keep.neighbors(0), &[1, 1]);
    }

    #[test]
    fn csr_contains() {
        let csr = Csr::from_edges(3, &[(0, 2), (1, 0)], true);
        assert!(csr.contains(0, 2));
        assert!(!csr.contains(0, 1));
        assert!(!csr.contains(2, 0));
    }

    #[test]
    fn graph_forward_and_backward_agree() {
        let g = small_graph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.predicate_count(), 2);
        assert_eq!(g.out_neighbors(0, 0), &[3, 4]);
        assert_eq!(g.in_neighbors(0, 3), &[0, 1]);
        assert_eq!(g.neighbors(0, 3, true), &[0, 1]);
        assert_eq!(g.neighbors(0, 0, false), &[3, 4]);
        // dedup collapsed the duplicate b-edge
        assert_eq!(g.edge_count_for(1), 1);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn graph_edges_iterator() {
        let g = small_graph();
        let edges: Vec<_> = g.edges(0).collect();
        assert_eq!(edges, vec![(0, 3), (0, 4), (1, 3)]);
    }

    #[test]
    fn symbol_pairs_are_sorted_both_directions() {
        let g = small_graph();
        let fwd: Vec<_> = g.pairs(0, false).collect();
        assert_eq!(fwd, vec![(0, 3), (0, 4), (1, 3)]);
        let bwd: Vec<_> = g.pairs(0, true).collect();
        assert_eq!(bwd, vec![(3, 0), (3, 1), (4, 0)]);
        let mut sorted = bwd.clone();
        sorted.sort_unstable();
        assert_eq!(bwd, sorted, "inverse pairs must come out sorted");
    }

    #[test]
    fn degree_sequences() {
        let g = small_graph();
        assert_eq!(g.out_degrees(0, 0), vec![2, 1, 0]);
        assert_eq!(g.in_degrees(0, 1), vec![2, 1]);
    }

    #[test]
    fn builder_absorb_merges_shards() {
        let part = TypePartition::from_counts(&[4]);
        let mut a = GraphBuilder::new(part.clone(), 1);
        a.edge(0, 0, 1);
        let mut b = GraphBuilder::new(part, 1);
        b.edge(2, 0, 3);
        a.absorb(b);
        let g = a.build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 0, 1));
        assert!(g.has_edge(0, 2, 3));
    }

    #[test]
    fn threaded_finalization_matches_sequential() {
        // A few predicates with irregular edge lists, including duplicates.
        let part = TypePartition::from_counts(&[8]);
        let build_input = || {
            let mut b = GraphBuilder::new(part.clone(), 3);
            for i in 0..200u32 {
                b.edge(i % 8, (i % 3) as usize, (i * 7 + 3) % 8);
            }
            b.edge(1, 2, 1);
            b.edge(1, 2, 1);
            b
        };
        let sequential = build_input().build();
        for threads in [2, 3, 8, 32] {
            let parallel = build_input().build_with_threads(threads);
            assert_eq!(parallel.partition(), sequential.partition());
            for pred in 0..3 {
                assert_eq!(
                    parallel.forward(pred),
                    sequential.forward(pred),
                    "forward CSR, pred {pred}, {threads} threads"
                );
                assert_eq!(
                    parallel.backward(pred),
                    sequential.backward(pred),
                    "backward CSR, pred {pred}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(TypePartition::from_counts(&[0]), 1).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "NodeId capacity")]
    fn partition_overflow_panics() {
        let _ = TypePartition::from_counts(&[u64::from(NodeId::MAX), 2]);
    }
}
