//! Graph storage substrate for gMark.
//!
//! The paper generates *directed edge-labeled graphs* whose nodes carry
//! exactly one type (Definition 3.1). This crate provides:
//!
//! * [`Graph`] — an immutable, per-predicate CSR (compressed sparse row)
//!   representation with both forward and backward adjacency, plus the
//!   contiguous node-type partition the generator lays out,
//! * [`GraphBuilder`] — the mutable accumulator the generator streams edges
//!   into (Fig. 5 outputs a set of `(source, label, target)` triples),
//! * [`EdgeSink`] — the streaming abstraction that lets the generator write
//!   edges to a builder, a counter, or an N-Triples file without
//!   materializing the graph (needed for the Table 3 scalability runs),
//! * [`ntriples`] — the N-Triples writer/reader mentioned in Section 1.1
//!   ("including N-triples for data"); predicate names are percent-encoded
//!   on write and decoded on read, so hostile schema alphabets still
//!   produce valid RDF,
//! * [`shard`] — per-constraint N-Triples shard files plus the
//!   ascending-order concatenation that makes the memory-bounded streaming
//!   pipeline byte-identical at every thread count (the shard format and
//!   the concatenation invariant are documented on the module),
//! * [`paged`] — the on-disk `gmark-store` binary format ([`StoreWriter`] /
//!   [`StoreReader`]): the same CSR arrays persisted page-aligned, served by
//!   positioned reads through a bounded page cache so evaluation runs at
//!   beyond-RAM scale,
//! * [`view`] — [`GraphView`], the common read interface the evaluation
//!   engines use so one code path serves both [`Graph`] and
//!   [`StoreReader`].

#![warn(missing_docs)]

pub mod graph;
pub mod ntriples;
pub mod paged;
pub mod shard;
pub mod sink;
pub mod view;

pub use graph::{Csr, Graph, GraphBuilder, TypePartition};
pub use ntriples::{read_ntriples, NTriplesFormat, NTriplesWriter};
pub use paged::{
    build_store_from_spool, EdgeSpool, SpoolWriter, StoreError, StoreInfo, StoreMeta, StoreReader,
    StoreWriter, DEFAULT_PAGE_SIZE,
};
pub use shard::{ShardSet, ShardWriter, TextShardWriter};
pub use sink::{CountingSink, EdgeSink, ForwardingSink, VecSink};
pub use view::{GraphView, Neighbors};

/// Node identifier. `u32` bounds graphs at ~4.29 B nodes, comfortably above
/// the paper's largest instance (100 M nodes, Table 3).
pub type NodeId = u32;

/// Predicate (edge label) index into the schema's alphabet Σ.
pub type PredIdx = usize;
