//! [`GraphView`]: one read interface over the in-memory CSR
//! [`Graph`] and the on-disk paged [`StoreReader`].
//!
//! Every consumer of graph topology — the four evaluation engines, the
//! planner's statistics, the run pipeline — goes through this enum, so
//! the same query code serves both a fully materialized graph and a
//! beyond-RAM store file. The facade is infallible like `&Graph` always
//! was: the paged variant validates structure when the store is opened,
//! and a post-validation I/O failure (disk yanked mid-query) panics with
//! the store's error message rather than threading `Result` through
//! every engine loop.

use crate::paged::StoreReader;
use crate::{Graph, NodeId, PredIdx, TypePartition};

/// A borrowed, `Copy` view over graph topology — either the in-memory
/// CSR or a paged on-disk store.
///
/// Engine entry points accept `impl Into<GraphView<'g>>`, so existing
/// `&Graph` call sites keep compiling while `&StoreReader` slots in for
/// beyond-RAM evaluation.
#[derive(Debug, Clone, Copy)]
pub enum GraphView<'g> {
    /// The fully materialized CSR graph.
    InMemory(&'g Graph),
    /// A paged on-disk store, read through [`StoreReader`].
    Paged(&'g StoreReader),
}

impl<'g> From<&'g Graph> for GraphView<'g> {
    fn from(g: &'g Graph) -> Self {
        GraphView::InMemory(g)
    }
}

impl<'g> From<&'g StoreReader> for GraphView<'g> {
    fn from(r: &'g StoreReader) -> Self {
        GraphView::Paged(r)
    }
}

/// A neighbor list that is either borrowed from the in-memory CSR or
/// fetched from store pages. Dereferences to `&[NodeId]` either way.
#[derive(Debug)]
pub enum Neighbors<'g> {
    /// A slice of the in-memory targets array.
    Borrowed(&'g [NodeId]),
    /// Targets copied out of store pages.
    Owned(Vec<NodeId>),
}

impl std::ops::Deref for Neighbors<'_> {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        match self {
            Neighbors::Borrowed(s) => s,
            Neighbors::Owned(v) => v,
        }
    }
}

impl<'a> IntoIterator for &'a Neighbors<'_> {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// `(source, target)` iterator over one `Σ±` symbol of either variant.
#[derive(Debug)]
pub enum Pairs<'g> {
    /// Walking the in-memory CSR.
    InMemory(crate::graph::CsrEdges<'g>),
    /// Streaming store pages.
    Paged(crate::paged::StorePairs<'g>),
}

impl Iterator for Pairs<'_> {
    type Item = (NodeId, NodeId);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        match self {
            Pairs::InMemory(it) => it.next(),
            Pairs::Paged(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Pairs::InMemory(it) => it.size_hint(),
            Pairs::Paged(it) => it.size_hint(),
        }
    }
}

impl<'g> GraphView<'g> {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> NodeId {
        match self {
            GraphView::InMemory(g) => g.node_count(),
            GraphView::Paged(r) => r.node_count(),
        }
    }

    /// Number of predicates (edge labels) in Σ.
    #[inline]
    pub fn predicate_count(&self) -> usize {
        match self {
            GraphView::InMemory(g) => g.predicate_count(),
            GraphView::Paged(r) => r.predicate_count(),
        }
    }

    /// Total number of edges across all predicates.
    #[inline]
    pub fn edge_count(&self) -> usize {
        match self {
            GraphView::InMemory(g) => g.edge_count(),
            GraphView::Paged(r) => r.edge_count() as usize,
        }
    }

    /// Number of edges of one predicate.
    #[inline]
    pub fn edge_count_for(&self, pred: PredIdx) -> usize {
        match self {
            GraphView::InMemory(g) => g.edge_count_for(pred),
            GraphView::Paged(r) => r.edge_count_for(pred),
        }
    }

    /// The node-type partition.
    #[inline]
    pub fn partition(&self) -> &'g TypePartition {
        match self {
            GraphView::InMemory(g) => g.partition(),
            GraphView::Paged(r) => r.partition(),
        }
    }

    /// Sorted neighbors of `v` along `pred`, forward (`a`) or backward
    /// (`a⁻`).
    ///
    /// # Panics
    ///
    /// Paged variant: on I/O failure or offsets that escaped open-time
    /// validation (the error message names the store file and page).
    #[inline]
    pub fn neighbors(&self, pred: PredIdx, v: NodeId, inverse: bool) -> Neighbors<'g> {
        match self {
            GraphView::InMemory(g) => Neighbors::Borrowed(g.neighbors(pred, v, inverse)),
            GraphView::Paged(r) => Neighbors::Owned(
                r.neighbors(pred, v, inverse)
                    .unwrap_or_else(|e| panic!("paged neighbor read failed: {e}")),
            ),
        }
    }

    /// Degree of `v` along `pred` — cheaper than `neighbors(..).len()`
    /// on the paged variant (no target pages are read).
    #[inline]
    pub fn degree(&self, pred: PredIdx, v: NodeId, inverse: bool) -> usize {
        match self {
            GraphView::InMemory(g) => g.neighbors(pred, v, inverse).len(),
            GraphView::Paged(r) => r
                .degree(pred, v, inverse)
                .unwrap_or_else(|e| panic!("paged degree read failed: {e}")),
        }
    }

    /// Whether the edge `v --pred--> w` exists.
    #[inline]
    pub fn has_edge(&self, pred: PredIdx, v: NodeId, w: NodeId) -> bool {
        match self {
            GraphView::InMemory(g) => g.has_edge(pred, v, w),
            GraphView::Paged(r) => r
                .has_edge(pred, v, w)
                .unwrap_or_else(|e| panic!("paged edge lookup failed: {e}")),
        }
    }

    /// Iterates the `(source, target)` pairs of one `Σ±` symbol in
    /// lexicographic order.
    pub fn pairs(&self, pred: PredIdx, inverse: bool) -> Pairs<'g> {
        match self {
            GraphView::InMemory(g) => Pairs::InMemory(if inverse {
                g.backward(pred).iter_edges()
            } else {
                g.forward(pred).iter_edges()
            }),
            GraphView::Paged(r) => Pairs::Paged(r.pairs(pred, inverse)),
        }
    }

    /// `(distinct sources, distinct targets)` of one predicate — the bulk
    /// statistic behind the planner's `SymbolStats`, computed from the
    /// offset arrays alone on both variants.
    pub fn distinct_endpoints(&self, pred: PredIdx) -> (usize, usize) {
        match self {
            GraphView::InMemory(g) => {
                let distinct = |offsets: &[u64]| {
                    let mut prev = 0u64;
                    let mut n = 0usize;
                    for &o in offsets {
                        if o > prev {
                            n += 1;
                        }
                        prev = o;
                    }
                    n
                };
                (
                    distinct(g.forward(pred).offsets()),
                    distinct(g.backward(pred).offsets()),
                )
            }
            GraphView::Paged(r) => r
                .distinct_endpoints(pred)
                .unwrap_or_else(|e| panic!("paged statistics read failed: {e}")),
        }
    }
}
