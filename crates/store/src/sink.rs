//! Streaming edge sinks.
//!
//! The generation algorithm of Fig. 5 "outputs" edges one at a time; routing
//! that stream through a trait keeps generation independent from storage, so
//! the same generator can build an in-memory [`crate::Graph`], count edges for
//! the scalability study (Table 3 measures generation without retaining the
//! graph), or serialize N-Triples directly to disk.

use crate::{NodeId, PredIdx};

/// Receives the `(source, label, target)` stream produced by the generator.
pub trait EdgeSink {
    /// Accepts one generated edge.
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId);
}

/// Counts edges (total and per predicate) without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    per_pred: Vec<u64>,
    total: u64,
}

impl CountingSink {
    /// Creates a counter for `predicate_count` labels.
    pub fn new(predicate_count: usize) -> Self {
        CountingSink {
            per_pred: vec![0; predicate_count],
            total: 0,
        }
    }

    /// Total edges seen.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Edges seen for one predicate.
    pub fn count_for(&self, pred: PredIdx) -> u64 {
        self.per_pred[pred]
    }
}

impl EdgeSink for CountingSink {
    #[inline]
    fn edge(&mut self, _src: NodeId, pred: PredIdx, _trg: NodeId) {
        self.per_pred[pred] += 1;
        self.total += 1;
    }
}

/// Collects the raw triples into a vector (mainly for tests).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The collected `(source, predicate, target)` triples.
    pub triples: Vec<(NodeId, PredIdx, NodeId)>,
}

impl EdgeSink for VecSink {
    #[inline]
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        self.triples.push((src, pred, trg));
    }
}

/// Fans one edge stream out to two sinks (e.g. build a graph *and* count).
#[derive(Debug)]
pub struct ForwardingSink<'a, A: EdgeSink, B: EdgeSink> {
    /// First downstream sink.
    pub first: &'a mut A,
    /// Second downstream sink.
    pub second: &'a mut B,
}

impl<'a, A: EdgeSink, B: EdgeSink> ForwardingSink<'a, A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        ForwardingSink { first, second }
    }
}

impl<A: EdgeSink, B: EdgeSink> EdgeSink for ForwardingSink<'_, A, B> {
    #[inline]
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        self.first.edge(src, pred, trg);
        self.second.edge(src, pred, trg);
    }
}

impl<S: EdgeSink + ?Sized> EdgeSink for &mut S {
    #[inline]
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        (**self).edge(src, pred, trg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut c = CountingSink::new(2);
        c.edge(0, 0, 1);
        c.edge(1, 0, 2);
        c.edge(2, 1, 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.count_for(0), 2);
        assert_eq!(c.count_for(1), 1);
    }

    #[test]
    fn vec_sink_preserves_order() {
        let mut v = VecSink::default();
        v.edge(5, 1, 6);
        v.edge(7, 0, 8);
        assert_eq!(v.triples, vec![(5, 1, 6), (7, 0, 8)]);
    }

    #[test]
    fn forwarding_sink_tees() {
        let mut count = CountingSink::new(1);
        let mut vec = VecSink::default();
        {
            let mut tee = ForwardingSink::new(&mut count, &mut vec);
            tee.edge(1, 0, 2);
            tee.edge(3, 0, 4);
        }
        assert_eq!(count.total(), 2);
        assert_eq!(vec.triples.len(), 2);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed<S: EdgeSink>(mut s: S) {
            s.edge(0, 0, 1);
        }
        let mut c = CountingSink::new(1);
        feed(&mut c);
        assert_eq!(c.total(), 1);
    }
}
