//! Sequential store writing: [`StoreWriter`] (header → segments →
//! directory → footer, with a running checksum) plus the binary
//! [`EdgeSpool`] the streaming generator tees edges into so a store can be
//! built without ever materializing the whole graph.

use super::{
    page_align, Fnv64, SegmentMeta, StoreError, StoreInfo, StoreMeta, END_MAGIC, MAGIC, VERSION,
};
use crate::graph::Csr;
use crate::sink::EdgeSink;
use crate::{Graph, NodeId, PredIdx};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Buffered writer that tracks the byte position and maintains the
/// running FNV-1a checksum over everything written through [`Self::put`].
struct HashingWriter {
    inner: BufWriter<File>,
    hash: Fnv64,
    pos: u64,
}

impl HashingWriter {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)?;
        self.hash.update(bytes);
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Writes bytes that are *excluded* from the checksum (the checksum
    /// field itself and the end magic).
    fn put_unhashed(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Zero-pads up to the next multiple of `page_size`.
    fn pad_to_page(&mut self, page_size: u64) -> io::Result<()> {
        static ZEROS: [u8; 4096] = [0; 4096];
        let mut gap = (page_align(self.pos, page_size) - self.pos) as usize;
        while gap > 0 {
            let n = gap.min(ZEROS.len());
            self.put(&ZEROS[..n])?;
            gap -= n;
        }
        Ok(())
    }
}

/// Writes one store file strictly sequentially.
///
/// Call [`StoreWriter::create`], then [`StoreWriter::write_segment`]
/// exactly twice per predicate — forward CSR then backward CSR, in
/// predicate order — then [`StoreWriter::finish`]. The convenience
/// [`StoreWriter::write_graph`] does all three for an in-memory graph; the
/// streamed path drives the same calls one predicate at a time via
/// [`build_store_from_spool`].
#[derive(Debug)]
pub struct StoreWriter {
    out: Option<HashingWriter>,
    path: PathBuf,
    page_size: u64,
    node_count: NodeId,
    predicate_count: usize,
    segments: Vec<SegmentMeta>,
}

impl std::fmt::Debug for HashingWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashingWriter")
            .field("pos", &self.pos)
            .finish_non_exhaustive()
    }
}

impl StoreWriter {
    /// Creates the file and writes the header region (fixed header,
    /// predicate name table, type partition, padding).
    pub fn create(path: &Path, meta: &StoreMeta) -> Result<StoreWriter, StoreError> {
        let page_size = meta.page_size as u64;
        if meta.page_size < 64 || meta.page_size > (1 << 24) || !meta.page_size.is_multiple_of(8) {
            return Err(StoreError::corrupt(
                path,
                format!("unusable page size {}", meta.page_size),
                None,
            ));
        }
        let file =
            File::create(path).map_err(|e| StoreError::io("creating store file", path, e))?;
        let mut out = HashingWriter {
            inner: BufWriter::new(file),
            hash: Fnv64::new(),
            pos: 0,
        };
        let io_err = |e| StoreError::io("writing store header", path, e);

        let mut header = Vec::with_capacity(super::FIXED_HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&meta.page_size.to_le_bytes());
        header.extend_from_slice(&meta.seed.to_le_bytes());
        header.extend_from_slice(&meta.schema_hash.to_le_bytes());
        header.extend_from_slice(&meta.partition.node_count().to_le_bytes());
        header.extend_from_slice(&(meta.predicate_names.len() as u32).to_le_bytes());
        header.extend_from_slice(&(meta.partition.type_count() as u32).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        debug_assert_eq!(header.len() as u64, super::FIXED_HEADER_LEN);
        out.put(&header).map_err(io_err)?;
        for name in &meta.predicate_names {
            out.put(&(name.len() as u32).to_le_bytes())
                .map_err(io_err)?;
            out.put(name.as_bytes()).map_err(io_err)?;
        }
        for &off in meta.partition.offsets() {
            out.put(&off.to_le_bytes()).map_err(io_err)?;
        }
        out.pad_to_page(page_size).map_err(io_err)?;

        Ok(StoreWriter {
            out: Some(out),
            path: path.to_path_buf(),
            page_size,
            node_count: meta.partition.node_count(),
            predicate_count: meta.predicate_names.len(),
            segments: Vec::with_capacity(meta.predicate_names.len() * 2),
        })
    }

    /// Writes the next `(predicate, direction)` CSR segment: the raw
    /// offsets array followed by the raw targets array, both page-aligned.
    /// Segments must arrive in predicate order, forward before backward.
    pub fn write_segment(&mut self, offsets: &[u64], targets: &[NodeId]) -> Result<(), StoreError> {
        assert!(
            self.segments.len() < self.predicate_count * 2,
            "more segments than 2 x predicate count"
        );
        assert_eq!(
            offsets.len(),
            self.node_count as usize + 1,
            "offsets array must have node_count + 1 entries"
        );
        assert_eq!(
            offsets.last().copied(),
            Some(targets.len() as u64),
            "last offset must equal the targets length"
        );
        let page_size = self.page_size;
        let Self { out, path, .. } = self;
        let out = out.as_mut().expect("writer not finished");
        let io_err = |e| StoreError::io("writing store segment", path, e);

        let offsets_pos = out.pos;
        debug_assert_eq!(offsets_pos % page_size, 0);
        let mut buf = Vec::with_capacity(8 * 4096);
        for chunk in offsets.chunks(4096) {
            buf.clear();
            for &o in chunk {
                buf.extend_from_slice(&o.to_le_bytes());
            }
            out.put(&buf).map_err(io_err)?;
        }
        out.pad_to_page(page_size).map_err(io_err)?;

        let targets_pos = out.pos;
        for chunk in targets.chunks(8192) {
            buf.clear();
            for &t in chunk {
                buf.extend_from_slice(&t.to_le_bytes());
            }
            out.put(&buf).map_err(io_err)?;
        }
        out.pad_to_page(page_size).map_err(io_err)?;

        self.segments.push(SegmentMeta {
            offsets_pos,
            targets_pos,
            edge_count: targets.len() as u64,
        });
        Ok(())
    }

    /// Writes the directory and footer, flushes, and reports the file's
    /// vitals. Panics if a segment is missing (caller bug, not file
    /// corruption).
    pub fn finish(mut self) -> Result<StoreInfo, StoreError> {
        assert_eq!(
            self.segments.len(),
            self.predicate_count * 2,
            "every predicate needs a forward and a backward segment"
        );
        let mut out = self.out.take().expect("writer not finished");
        let io_err = |e| StoreError::io("writing store directory", &self.path, e);

        let dir_pos = out.pos;
        debug_assert_eq!(dir_pos % self.page_size, 0);
        // Total edges = sum over forward segments (backward mirrors them).
        let total_edges: u64 = self.segments.iter().step_by(2).map(|s| s.edge_count).sum();
        out.put(&total_edges.to_le_bytes()).map_err(io_err)?;
        for seg in &self.segments {
            out.put(&seg.offsets_pos.to_le_bytes()).map_err(io_err)?;
            out.put(&seg.targets_pos.to_le_bytes()).map_err(io_err)?;
            out.put(&seg.edge_count.to_le_bytes()).map_err(io_err)?;
        }
        out.put(&dir_pos.to_le_bytes()).map_err(io_err)?;
        let checksum = out.hash.finish();
        out.put_unhashed(&checksum.to_le_bytes()).map_err(io_err)?;
        out.put_unhashed(&END_MAGIC).map_err(io_err)?;
        let bytes = out.pos;
        out.inner.flush().map_err(io_err)?;

        Ok(StoreInfo {
            bytes,
            page_size: self.page_size as u32,
            edges: total_edges,
        })
    }

    /// Serializes a fully materialized graph. `meta.partition` must be the
    /// graph's partition and `meta.predicate_names` its alphabet.
    pub fn write_graph(
        path: &Path,
        meta: &StoreMeta,
        graph: &Graph,
    ) -> Result<StoreInfo, StoreError> {
        assert_eq!(graph.predicate_count(), meta.predicate_names.len());
        assert_eq!(graph.node_count(), meta.partition.node_count());
        let mut writer = StoreWriter::create(path, meta)?;
        for pred in 0..graph.predicate_count() {
            let fwd = graph.forward(pred);
            writer.write_segment(fwd.offsets(), fwd.targets())?;
            let bwd = graph.backward(pred);
            writer.write_segment(bwd.offsets(), bwd.targets())?;
        }
        writer.finish()
    }
}

/// A scratch directory of per-constraint binary edge files — the store
/// counterpart of the N-Triples [`ShardSet`](crate::ShardSet). Each record
/// is 8 bytes: source and target `u32`, little-endian (the predicate is
/// implied — every schema constraint carries exactly one). Dropped with
/// its directory; stale directories of dead processes are reaped like
/// shard scratch.
#[derive(Debug)]
pub struct EdgeSpool {
    dir: PathBuf,
    count: usize,
}

impl EdgeSpool {
    /// Creates a fresh spool directory under `parent` for `count`
    /// constraints.
    pub fn create(parent: &Path, count: usize) -> io::Result<EdgeSpool> {
        let dir = crate::shard::create_unique_scratch(parent, ".gmark-spool-")?;
        Ok(EdgeSpool { dir, count })
    }

    /// Path of constraint `idx`'s edge file.
    pub fn path(&self, idx: usize) -> PathBuf {
        debug_assert!(idx < self.count, "spool {idx} out of range {}", self.count);
        self.dir.join(format!("edges-{idx:06}.bin"))
    }

    /// Opens the writer for one constraint's edges.
    pub fn writer(&self, idx: usize) -> io::Result<SpoolWriter> {
        let path = self.path(idx);
        let file = File::create(&path)?;
        Ok(SpoolWriter {
            inner: BufWriter::new(file),
            written: 0,
            error: None,
        })
    }

    /// Appends constraint `idx`'s edges to `out` in file order. A missing
    /// file is an error — it means the constraint was never generated.
    pub fn read_into(&self, idx: usize, out: &mut Vec<(NodeId, NodeId)>) -> io::Result<()> {
        let path = self.path(idx);
        let mut file = File::open(&path).map_err(|e| {
            io::Error::new(e.kind(), format!("opening spool {}: {e}", path.display()))
        })?;
        let mut buf = [0u8; 8192];
        let mut have = 0usize;
        loop {
            let n = file.read(&mut buf[have..])?;
            if n == 0 {
                break;
            }
            have += n;
            let whole = have - have % 8;
            for rec in buf[..whole].chunks_exact(8) {
                let src = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
                let trg = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
                out.push((src, trg));
            }
            buf.copy_within(whole..have, 0);
            have -= whole;
        }
        if have != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spool {} is truncated mid-record", path.display()),
            ));
        }
        Ok(())
    }
}

impl Drop for EdgeSpool {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The per-constraint [`EdgeSink`] writing an [`EdgeSpool`] file.
#[derive(Debug)]
pub struct SpoolWriter {
    inner: BufWriter<File>,
    written: u64,
    error: Option<io::Error>,
}

impl SpoolWriter {
    /// Flushes the file and surfaces any deferred I/O error, returning the
    /// number of edges written (the [`EdgeSink`] interface is infallible,
    /// so errors are captured and reported here).
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.inner.flush()?;
        Ok(self.written)
    }
}

impl EdgeSink for SpoolWriter {
    #[inline]
    fn edge(&mut self, src: NodeId, _pred: PredIdx, trg: NodeId) {
        if self.error.is_some() {
            return;
        }
        let mut rec = [0u8; 8];
        rec[0..4].copy_from_slice(&src.to_le_bytes());
        rec[4..8].copy_from_slice(&trg.to_le_bytes());
        match self.inner.write_all(&rec) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Builds a store from a finished spool without materializing more than
/// one predicate at a time.
///
/// For each predicate, the edges of its constraints are gathered in
/// **ascending constraint order** (the same order the in-memory builder
/// absorbs shards in), the forward and backward CSRs are built with
/// deduplication — canonical sorted form, so the bytes equal the
/// materialized path's regardless of generation order — written, and
/// dropped. Peak memory is bounded by the largest single predicate, not
/// the total edge count.
///
/// `pred_of_constraint` maps each spool index to its schema predicate.
pub fn build_store_from_spool(
    path: &Path,
    meta: &StoreMeta,
    spool: &EdgeSpool,
    pred_of_constraint: &[PredIdx],
) -> Result<StoreInfo, StoreError> {
    let pred_count = meta.predicate_names.len();
    let n = meta.partition.node_count();
    let mut by_pred: Vec<Vec<usize>> = vec![Vec::new(); pred_count];
    for (idx, &p) in pred_of_constraint.iter().enumerate() {
        by_pred[p].push(idx);
    }
    let mut writer = StoreWriter::create(path, meta)?;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for constraints in &by_pred {
        edges.clear();
        for &idx in constraints {
            spool
                .read_into(idx, &mut edges)
                .map_err(|e| StoreError::io("reading edge spool", path, e))?;
        }
        let fwd = Csr::from_edges(n, &edges, true);
        writer.write_segment(fwd.offsets(), fwd.targets())?;
        drop(fwd);
        for e in edges.iter_mut() {
            *e = (e.1, e.0);
        }
        let bwd = Csr::from_edges(n, &edges, true);
        writer.write_segment(bwd.offsets(), bwd.targets())?;
    }
    writer.finish()
}
