//! Paged store reading: cheap structural validation at open time, point
//! lookups through a pinned-page cache, sequential scans with private
//! buffers, and a full-file integrity check ([`StoreReader::verify`]).

use super::{
    Fnv64, SegmentMeta, StoreError, StoreInfo, END_MAGIC, FIXED_HEADER_LEN, FOOTER_LEN, MAGIC,
    VERSION,
};
use crate::{NodeId, PredIdx, TypePartition};
use rustc_hash::FxHashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Default page-cache capacity: 1024 pages = 8 MiB at the default page
/// size — evaluation memory is bounded by this, not by the edge count.
pub const DEFAULT_CACHE_PAGES: usize = 1024;

/// Entries per chunk for sequential offset/target scans (private buffers,
/// deliberately bypassing the page cache so scans don't evict hot pages).
/// 32Ki entries = 256 KiB of offsets per read: segment-granular readahead
/// that amortizes the syscall over far more pairs than a store page would,
/// which is what makes full-relation `pairs` scans cheap relative to the
/// pointwise cache path.
const SCAN_CHUNK: usize = 32 * 1024;

/// Serves CSR queries straight from a store file via positioned reads.
///
/// [`StoreReader::open`] validates framing and bounds (magic, version,
/// footer, directory, segment positions) without reading the data pages;
/// [`StoreReader::verify`] additionally checks the checksum and the
/// offset arrays. Point lookups ([`StoreReader::neighbors`],
/// [`StoreReader::degree`], [`StoreReader::has_edge`]) go through a small
/// CLOCK page cache; bulk scans ([`StoreReader::pairs`],
/// [`StoreReader::distinct_endpoints`]) stream with private buffers.
///
/// The reader is `Sync`: the page cache sits behind a mutex, so one
/// reader can serve every worker thread of the evaluation matrix.
#[derive(Debug)]
pub struct StoreReader {
    file: File,
    path: PathBuf,
    file_len: u64,
    page_size: u64,
    seed: u64,
    schema_hash: u64,
    stored_checksum: u64,
    node_count: NodeId,
    predicate_names: Vec<String>,
    partition: TypePartition,
    total_edges: u64,
    segments: Vec<SegmentMeta>,
    cache: Mutex<PageCache>,
}

impl StoreReader {
    /// Opens a store with the default cache size.
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        Self::open_with_cache(path, DEFAULT_CACHE_PAGES)
    }

    /// Opens a store, capping the page cache at `cache_pages` pages.
    pub fn open_with_cache(path: &Path, cache_pages: usize) -> Result<StoreReader, StoreError> {
        let file = File::open(path).map_err(|e| StoreError::io("opening store", path, e))?;
        let file_len = file
            .metadata()
            .map_err(|e| StoreError::io("reading store metadata", path, e))?
            .len();
        if file_len < FIXED_HEADER_LEN + FOOTER_LEN {
            return Err(StoreError::not_a_store(
                path,
                format!("only {file_len} bytes, too short for header and footer"),
            ));
        }

        let mut footer = [0u8; FOOTER_LEN as usize];
        pread(
            &file,
            path,
            file_len - FOOTER_LEN,
            &mut footer,
            "reading footer",
        )?;
        if footer[16..24] != END_MAGIC {
            return Err(StoreError::not_a_store(
                path,
                "end magic missing (truncated, or not a store)",
            ));
        }
        let dir_pos = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let stored_checksum = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));

        let mut fixed = [0u8; FIXED_HEADER_LEN as usize];
        pread(&file, path, 0, &mut fixed, "reading header")?;
        if fixed[0..8] != MAGIC {
            return Err(StoreError::not_a_store(path, "bad magic"));
        }
        let version = read_u32(&fixed, 8);
        if version != VERSION {
            return Err(StoreError::not_a_store(
                path,
                format!("unsupported version {version} (this build reads {VERSION})"),
            ));
        }
        let page_size = read_u32(&fixed, 12) as u64;
        if !(64..=1 << 24).contains(&page_size) || !page_size.is_multiple_of(8) {
            return Err(StoreError::corrupt(
                path,
                format!("unusable page size {page_size}"),
                Some(0),
            ));
        }
        let seed = read_u64(&fixed, 16);
        let schema_hash = read_u64(&fixed, 24);
        let node_count = read_u32(&fixed, 32);
        let predicate_count = read_u32(&fixed, 36) as usize;
        let type_count = read_u32(&fixed, 40) as usize;
        // Loose caps so a corrupt count can't trigger absurd allocations
        // before the bounds checks below.
        if predicate_count as u64 * 4 > file_len || (type_count as u64 + 1) * 4 > file_len {
            return Err(StoreError::corrupt(
                path,
                format!("header counts exceed the file ({predicate_count} predicates, {type_count} types in {file_len} bytes)"),
                Some(0),
            ));
        }

        let data_end = file_len - FOOTER_LEN;
        let mut cursor = FIXED_HEADER_LEN;
        let mut predicate_names = Vec::with_capacity(predicate_count);
        for i in 0..predicate_count {
            let mut len_buf = [0u8; 4];
            if cursor + 4 > data_end {
                return Err(StoreError::corrupt(
                    path,
                    format!("predicate table truncated at entry {i}"),
                    Some(cursor / page_size),
                ));
            }
            pread(&file, path, cursor, &mut len_buf, "reading predicate table")?;
            cursor += 4;
            let len = u32::from_le_bytes(len_buf) as u64;
            if len > (1 << 20) || cursor + len > data_end {
                return Err(StoreError::corrupt(
                    path,
                    format!("predicate {i} name length {len} out of bounds"),
                    Some(cursor / page_size),
                ));
            }
            let mut name = vec![0u8; len as usize];
            pread(&file, path, cursor, &mut name, "reading predicate table")?;
            cursor += len;
            let name = String::from_utf8(name).map_err(|_| {
                StoreError::corrupt(
                    path,
                    format!("predicate {i} name is not UTF-8"),
                    Some(cursor / page_size),
                )
            })?;
            predicate_names.push(name);
        }

        let part_len = (type_count + 1) * 4;
        if cursor + part_len as u64 > data_end {
            return Err(StoreError::corrupt(
                path,
                "type partition out of bounds",
                Some(cursor / page_size),
            ));
        }
        let mut part_bytes = vec![0u8; part_len];
        pread(
            &file,
            path,
            cursor,
            &mut part_bytes,
            "reading type partition",
        )?;
        let offsets: Vec<NodeId> = part_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let partition = TypePartition::from_offsets(offsets).ok_or_else(|| {
            StoreError::corrupt(
                path,
                "type partition is not monotone from 0",
                Some(cursor / page_size),
            )
        })?;
        if partition.node_count() != node_count {
            return Err(StoreError::corrupt(
                path,
                format!(
                    "type partition covers {} nodes but the header says {node_count}",
                    partition.node_count()
                ),
                Some(cursor / page_size),
            ));
        }

        // Directory: must sit page-aligned and run exactly up to the footer.
        let dir_len = 8 + predicate_count as u64 * 2 * 24;
        if dir_pos % page_size != 0 || dir_pos.checked_add(dir_len) != Some(data_end) {
            return Err(StoreError::corrupt(
                path,
                format!("directory position {dir_pos} inconsistent with file length {file_len}"),
                None,
            ));
        }
        let mut dir = vec![0u8; dir_len as usize];
        pread(&file, path, dir_pos, &mut dir, "reading directory")?;
        let total_edges = read_u64(&dir, 0);
        let mut segments = Vec::with_capacity(predicate_count * 2);
        let n_plus_1 = node_count as u64 + 1;
        for i in 0..predicate_count * 2 {
            let base = 8 + i * 24;
            let seg = SegmentMeta {
                offsets_pos: read_u64(&dir, base),
                targets_pos: read_u64(&dir, base + 8),
                edge_count: read_u64(&dir, base + 16),
            };
            let offsets_ok = seg.offsets_pos.is_multiple_of(page_size)
                && seg
                    .offsets_pos
                    .checked_add(n_plus_1 * 8)
                    .is_some_and(|end| end <= seg.targets_pos);
            let targets_ok = seg.targets_pos.is_multiple_of(page_size)
                && seg
                    .edge_count
                    .checked_mul(4)
                    .and_then(|len| seg.targets_pos.checked_add(len))
                    .is_some_and(|end| end <= dir_pos);
            if !offsets_ok || !targets_ok {
                return Err(StoreError::corrupt(
                    path,
                    format!(
                        "directory entry for segment {i} (predicate {}, {}) is out of bounds",
                        i / 2,
                        if i % 2 == 0 { "forward" } else { "backward" }
                    ),
                    Some(dir_pos / page_size),
                ));
            }
            segments.push(seg);
        }
        let forward_sum: u64 = segments.iter().step_by(2).map(|s| s.edge_count).sum();
        if forward_sum != total_edges {
            return Err(StoreError::corrupt(
                path,
                format!("directory total {total_edges} != sum of forward segments {forward_sum}"),
                Some(dir_pos / page_size),
            ));
        }

        Ok(StoreReader {
            file,
            path: path.to_path_buf(),
            file_len,
            page_size,
            seed,
            schema_hash,
            stored_checksum,
            node_count,
            predicate_names,
            partition,
            total_edges,
            segments,
            cache: Mutex::new(PageCache::new(page_size as usize, cache_pages.max(1))),
        })
    }

    /// Full integrity check: every offsets array must be monotone within
    /// its segment bounds, every target id in range, and the whole file
    /// must match its FNV-1a checksum. Structural violations name the bad
    /// page; a checksum mismatch with intact structure (e.g. a flipped
    /// padding byte) cannot be localized and reports without one.
    pub fn verify(&self) -> Result<(), StoreError> {
        let mut off_buf = vec![0u64; SCAN_CHUNK];
        let mut tgt_buf = vec![0 as NodeId; SCAN_CHUNK];
        for (i, seg) in self.segments.iter().enumerate() {
            let label = |what: &str| {
                format!(
                    "segment {i} (predicate {}, {}): {what}",
                    i / 2,
                    if i % 2 == 0 { "forward" } else { "backward" }
                )
            };
            let n_plus_1 = self.node_count as u64 + 1;
            let mut prev = 0u64;
            let mut idx = 0u64;
            while idx < n_plus_1 {
                let take = ((n_plus_1 - idx) as usize).min(SCAN_CHUNK);
                self.read_u64s(seg.offsets_pos + idx * 8, &mut off_buf[..take])?;
                for (j, &o) in off_buf[..take].iter().enumerate() {
                    let page = (seg.offsets_pos + (idx + j as u64) * 8) / self.page_size;
                    if (idx + j as u64 == 0 && o != 0) || o < prev || o > seg.edge_count {
                        return Err(StoreError::corrupt(
                            &self.path,
                            label(&format!(
                                "offset {} = {o} breaks monotonicity",
                                idx + j as u64
                            )),
                            Some(page),
                        ));
                    }
                    prev = o;
                }
                idx += take as u64;
            }
            if prev != seg.edge_count {
                return Err(StoreError::corrupt(
                    &self.path,
                    label(&format!(
                        "final offset {prev} != edge count {}",
                        seg.edge_count
                    )),
                    Some((seg.offsets_pos + (n_plus_1 - 1) * 8) / self.page_size),
                ));
            }
            let mut e = 0u64;
            while e < seg.edge_count {
                let take = ((seg.edge_count - e) as usize).min(SCAN_CHUNK);
                self.read_u32s(seg.targets_pos + e * 4, &mut tgt_buf[..take])?;
                for (j, &t) in tgt_buf[..take].iter().enumerate() {
                    if t >= self.node_count {
                        let page = (seg.targets_pos + (e + j as u64) * 4) / self.page_size;
                        return Err(StoreError::corrupt(
                            &self.path,
                            label(&format!("target {} = {t} >= node count", e + j as u64)),
                            Some(page),
                        ));
                    }
                }
                e += take as u64;
            }
        }

        let mut hash = Fnv64::new();
        let hashed_len = self.file_len - 16; // checksum field + end magic excluded
        let mut buf = vec![0u8; 64 * 1024];
        let mut pos = 0u64;
        while pos < hashed_len {
            let take = ((hashed_len - pos) as usize).min(buf.len());
            pread(&self.file, &self.path, pos, &mut buf[..take], "verifying")?;
            hash.update(&buf[..take]);
            pos += take as u64;
        }
        if hash.finish() != self.stored_checksum {
            return Err(StoreError::corrupt(
                &self.path,
                format!(
                    "checksum mismatch (stored {:#018x}, computed {:#018x})",
                    self.stored_checksum,
                    hash.finish()
                ),
                None,
            ));
        }
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> NodeId {
        self.node_count
    }

    /// Number of predicates.
    #[inline]
    pub fn predicate_count(&self) -> usize {
        self.predicate_names.len()
    }

    /// Total (deduplicated) edges, straight from the directory.
    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.total_edges
    }

    /// Number of edges of one predicate.
    #[inline]
    pub fn edge_count_for(&self, pred: PredIdx) -> usize {
        self.segments[pred * 2].edge_count as usize
    }

    /// The node-type partition recorded in the header.
    #[inline]
    pub fn partition(&self) -> &TypePartition {
        &self.partition
    }

    /// The predicate alphabet recorded in the header.
    #[inline]
    pub fn predicate_names(&self) -> &[String] {
        &self.predicate_names
    }

    /// The master seed the graph was generated from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generating schema's hash (see `Schema::schema_hash`).
    #[inline]
    pub fn schema_hash(&self) -> u64 {
        self.schema_hash
    }

    /// File size and edge totals, for reports.
    pub fn info(&self) -> StoreInfo {
        StoreInfo {
            bytes: self.file_len,
            page_size: self.page_size as u32,
            edges: self.total_edges,
        }
    }

    /// The file this reader serves.
    pub fn path(&self) -> &Path {
        &self.path
    }

    #[inline]
    fn segment(&self, pred: PredIdx, inverse: bool) -> &SegmentMeta {
        &self.segments[pred * 2 + inverse as usize]
    }

    /// Sorted neighbor list of `v` along `pred`, forward or backward — the
    /// paged counterpart of [`Graph::neighbors`](crate::Graph::neighbors).
    pub fn neighbors(
        &self,
        pred: PredIdx,
        v: NodeId,
        inverse: bool,
    ) -> Result<Vec<NodeId>, StoreError> {
        let (lo, hi) = self.bounds(pred, v, inverse)?;
        let seg = self.segment(pred, inverse);
        let mut out = vec![0 as NodeId; (hi - lo) as usize];
        self.read_u32s_cached(seg.targets_pos + lo * 4, &mut out)?;
        Ok(out)
    }

    /// Degree of `v` along `pred` (two offset words through the cache; no
    /// target bytes are touched).
    pub fn degree(&self, pred: PredIdx, v: NodeId, inverse: bool) -> Result<usize, StoreError> {
        let (lo, hi) = self.bounds(pred, v, inverse)?;
        Ok((hi - lo) as usize)
    }

    /// Whether the edge `v --pred--> w` exists (binary search over the
    /// fetched neighbor list).
    pub fn has_edge(&self, pred: PredIdx, v: NodeId, w: NodeId) -> Result<bool, StoreError> {
        Ok(self.neighbors(pred, v, false)?.binary_search(&w).is_ok())
    }

    /// The `(offsets[v], offsets[v+1])` pair of a segment, bounds-checked
    /// against the segment's edge count.
    fn bounds(&self, pred: PredIdx, v: NodeId, inverse: bool) -> Result<(u64, u64), StoreError> {
        debug_assert!(v < self.node_count, "node {v} out of range");
        let seg = self.segment(pred, inverse);
        let pos = seg.offsets_pos + v as u64 * 8;
        let mut words = [0u64; 2];
        self.read_u64s_cached(pos, &mut words)?;
        let (lo, hi) = (words[0], words[1]);
        if lo > hi || hi > seg.edge_count {
            return Err(StoreError::corrupt(
                &self.path,
                format!("offsets of node {v} are not monotone ({lo} > {hi} or beyond the segment)"),
                Some(pos / self.page_size),
            ));
        }
        Ok((lo, hi))
    }

    /// Iterates the `(source, target)` pairs of one `Σ±` symbol in
    /// lexicographic order — the paged counterpart of
    /// [`Graph::pairs`](crate::Graph::pairs). The scan streams both arrays
    /// sequentially with private buffers, bypassing the page cache.
    ///
    /// # Panics
    ///
    /// On I/O failure mid-scan (the iterator interface is infallible; the
    /// file's bounds were validated at open time).
    pub fn pairs(&self, pred: PredIdx, inverse: bool) -> StorePairs<'_> {
        let seg = *self.segment(pred, inverse);
        StorePairs {
            reader: self,
            seg,
            m: seg.edge_count,
            e: 0,
            node: 0,
            node_end: 0,
            off_chunk: Vec::new(),
            off_start: u64::MAX,
            tgt_chunk: Vec::new(),
            tgt_start: u64::MAX,
            primed: false,
        }
    }

    /// `(distinct sources, distinct targets)` of one predicate's forward
    /// relation: a sequential scan over both offset arrays counting nodes
    /// with non-zero degree — never touching target pages. This is the
    /// bulk statistic behind the planner's `SymbolStats`.
    pub fn distinct_endpoints(&self, pred: PredIdx) -> Result<(usize, usize), StoreError> {
        let mut out = [0usize; 2];
        let mut buf = vec![0u64; SCAN_CHUNK];
        for (dir, slot) in out.iter_mut().enumerate() {
            let seg = self.segment(pred, dir == 1);
            let n_plus_1 = self.node_count as u64 + 1;
            let mut prev = 0u64;
            let mut idx = 0u64;
            let mut distinct = 0usize;
            while idx < n_plus_1 {
                let take = ((n_plus_1 - idx) as usize).min(SCAN_CHUNK);
                self.read_u64s(seg.offsets_pos + idx * 8, &mut buf[..take])?;
                for &o in &buf[..take] {
                    if o > prev {
                        distinct += 1;
                    }
                    prev = o;
                }
                idx += take as u64;
            }
            *slot = distinct;
        }
        Ok((out[0], out[1]))
    }

    /// Uncached positioned read of little-endian u64s.
    fn read_u64s(&self, pos: u64, out: &mut [u64]) -> Result<(), StoreError> {
        let mut bytes = vec![0u8; out.len() * 8];
        pread(&self.file, &self.path, pos, &mut bytes, "reading offsets")?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *o = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        }
        Ok(())
    }

    /// Uncached positioned read of little-endian u32s.
    fn read_u32s(&self, pos: u64, out: &mut [NodeId]) -> Result<(), StoreError> {
        let mut bytes = vec![0u8; out.len() * 4];
        pread(&self.file, &self.path, pos, &mut bytes, "reading targets")?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = u32::from_le_bytes(c.try_into().expect("4 bytes"));
        }
        Ok(())
    }

    /// Cache-backed read of little-endian u64s.
    fn read_u64s_cached(&self, pos: u64, out: &mut [u64]) -> Result<(), StoreError> {
        let mut bytes = vec![0u8; out.len() * 8];
        self.read_cached(pos, &mut bytes)?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *o = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        }
        Ok(())
    }

    /// Cache-backed read of little-endian u32s.
    fn read_u32s_cached(&self, pos: u64, out: &mut [NodeId]) -> Result<(), StoreError> {
        let mut bytes = vec![0u8; out.len() * 4];
        self.read_cached(pos, &mut bytes)?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = u32::from_le_bytes(c.try_into().expect("4 bytes"));
        }
        Ok(())
    }

    /// Reads `dst.len()` bytes at `pos` through the page cache.
    fn read_cached(&self, mut pos: u64, dst: &mut [u8]) -> Result<(), StoreError> {
        let ps = self.page_size;
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let mut off = 0usize;
        while off < dst.len() {
            let page = pos / ps;
            let in_page = (pos % ps) as usize;
            let n = (dst.len() - off).min(ps as usize - in_page);
            let slot = cache.slot_for(&self.file, &self.path, page, ps, self.file_len)?;
            dst[off..off + n].copy_from_slice(&cache.slots[slot].data[in_page..in_page + n]);
            off += n;
            pos += n as u64;
        }
        Ok(())
    }
}

/// Fixed-capacity pinned-page cache with CLOCK (second-chance) eviction.
/// Small by design: correctness never depends on it, only the number of
/// `pread` syscalls does.
///
/// The predecessor kept a per-slot timestamp and evicted with a full
/// `min_by_key` sweep — O(capacity) per miss, which at 1024 slots made
/// every *warm* miss pay a scan the cold fill-up phase never did, so a
/// warm matrix pass could measure slower than a cold one. CLOCK keeps the
/// hit path at one hash probe plus a flag store and makes eviction O(1)
/// amortized: the hand sweeps at most one lap over the referenced bits.
#[derive(Debug)]
struct PageCache {
    map: FxHashMap<u64, usize>,
    slots: Vec<Slot>,
    /// The CLOCK hand: next slot considered for eviction.
    hand: usize,
    cap: usize,
    page_size: usize,
}

#[derive(Debug)]
struct Slot {
    page: u64,
    /// Second-chance bit: set on hit, cleared as the hand passes.
    referenced: bool,
    data: Box<[u8]>,
}

impl PageCache {
    fn new(page_size: usize, cap: usize) -> PageCache {
        PageCache {
            map: FxHashMap::default(),
            slots: Vec::new(),
            hand: 0,
            cap,
            page_size,
        }
    }

    fn slot_for(
        &mut self,
        file: &File,
        path: &Path,
        page: u64,
        ps: u64,
        file_len: u64,
    ) -> Result<usize, StoreError> {
        if let Some(&i) = self.map.get(&page) {
            self.slots[i].referenced = true;
            return Ok(i);
        }
        let start = page * ps;
        let len = (file_len.saturating_sub(start)).min(ps) as usize;
        if len == 0 {
            return Err(StoreError::corrupt(
                path,
                format!("read beyond end of file (page {page})"),
                Some(page),
            ));
        }
        debug_assert!(len <= self.page_size);
        let mut data = vec![0u8; len];
        pread(file, path, start, &mut data, "reading page")?;
        let i = if self.slots.len() < self.cap {
            self.slots.push(Slot {
                page,
                referenced: true,
                data: data.into_boxed_slice(),
            });
            self.slots.len() - 1
        } else {
            // Second chance: a referenced slot survives one lap with its
            // bit cleared; the first unreferenced slot under the hand is
            // the victim. Terminates within two laps since every slot the
            // hand passes loses its bit.
            let i = loop {
                let h = self.hand;
                self.hand = (self.hand + 1) % self.cap;
                if self.slots[h].referenced {
                    self.slots[h].referenced = false;
                } else {
                    break h;
                }
            };
            self.map.remove(&self.slots[i].page);
            self.slots[i] = Slot {
                page,
                referenced: true,
                data: data.into_boxed_slice(),
            };
            i
        };
        self.map.insert(page, i);
        Ok(i)
    }
}

/// Sequential `(source, target)` iterator over one stored segment (see
/// [`StoreReader::pairs`]).
#[derive(Debug)]
pub struct StorePairs<'r> {
    reader: &'r StoreReader,
    seg: SegmentMeta,
    m: u64,
    e: u64,
    node: u64,
    node_end: u64,
    off_chunk: Vec<u64>,
    off_start: u64,
    tgt_chunk: Vec<NodeId>,
    tgt_start: u64,
    primed: bool,
}

impl StorePairs<'_> {
    /// `offsets[i]`, loading a fresh chunk when `i` runs past the current
    /// one (the scan only ever moves forward).
    fn offset_at(&mut self, i: u64) -> u64 {
        let in_chunk = self.off_start != u64::MAX
            && i >= self.off_start
            && i < self.off_start + self.off_chunk.len() as u64;
        if !in_chunk {
            let n_plus_1 = self.reader.node_count as u64 + 1;
            let take = ((n_plus_1 - i) as usize).min(SCAN_CHUNK);
            self.off_chunk.resize(take, 0);
            self.reader
                .read_u64s(self.seg.offsets_pos + i * 8, &mut self.off_chunk)
                .expect("store offsets vanished mid-scan");
            self.off_start = i;
        }
        self.off_chunk[(i - self.off_start) as usize]
    }

    fn target_at(&mut self, e: u64) -> NodeId {
        let in_chunk = self.tgt_start != u64::MAX
            && e >= self.tgt_start
            && e < self.tgt_start + self.tgt_chunk.len() as u64;
        if !in_chunk {
            let take = ((self.m - e) as usize).min(SCAN_CHUNK * 2);
            self.tgt_chunk.resize(take, 0);
            self.reader
                .read_u32s(self.seg.targets_pos + e * 4, &mut self.tgt_chunk)
                .expect("store targets vanished mid-scan");
            self.tgt_start = e;
        }
        self.tgt_chunk[(e - self.tgt_start) as usize]
    }
}

impl Iterator for StorePairs<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        if self.e >= self.m {
            return None;
        }
        if !self.primed {
            self.node_end = self.offset_at(1);
            self.primed = true;
        }
        while self.e >= self.node_end {
            self.node += 1;
            self.node_end = self.offset_at(self.node + 1);
        }
        let t = self.target_at(self.e);
        self.e += 1;
        Some((self.node as NodeId, t))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.m - self.e) as usize;
        (left, Some(left))
    }
}

fn pread(
    file: &File,
    path: &Path,
    pos: u64,
    buf: &mut [u8],
    context: &str,
) -> Result<(), StoreError> {
    file.read_exact_at(buf, pos)
        .map_err(|e| StoreError::io(context, path, e))
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::{StoreMeta, StoreWriter, DEFAULT_PAGE_SIZE};
    use crate::{Csr, Graph, GraphBuilder};

    fn tiny_graph() -> Graph {
        // 2 types (3 + 2 nodes), 2 predicates.
        use crate::sink::EdgeSink;
        let mut b = GraphBuilder::new(crate::TypePartition::from_counts(&[3, 2]), 2);
        for (s, p, t) in [
            (0u32, 0usize, 3u32),
            (0, 0, 4),
            (1, 0, 3),
            (2, 0, 3),
            (3, 1, 0),
            (4, 1, 2),
            (4, 1, 0),
        ] {
            b.edge(s, p, t);
        }
        b.build()
    }

    fn meta_for(g: &Graph) -> StoreMeta {
        StoreMeta {
            seed: 42,
            schema_hash: 0xdead_beef,
            page_size: 64, // smallest legal page: exercises multi-page layout
            predicate_names: vec!["authors".into(), "cite%2Fs".into()],
            partition: g.partition().clone(),
        }
    }

    #[test]
    fn round_trip_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("gstore-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.gstore");
        let g = tiny_graph();
        let info = StoreWriter::write_graph(&path, &meta_for(&g), &g).unwrap();
        assert_eq!(info.edges, g.edge_count() as u64);

        let r = StoreReader::open(&path).unwrap();
        r.verify().unwrap();
        assert_eq!(r.node_count(), g.node_count());
        assert_eq!(r.predicate_count(), 2);
        assert_eq!(r.edge_count(), g.edge_count() as u64);
        assert_eq!(r.seed(), 42);
        assert_eq!(r.schema_hash(), 0xdead_beef);
        assert_eq!(r.predicate_names(), ["authors", "cite%2Fs"]);
        assert_eq!(r.partition().offsets(), g.partition().offsets());
        for pred in 0..2 {
            assert_eq!(r.edge_count_for(pred), g.edge_count_for(pred));
            for inverse in [false, true] {
                for v in 0..g.node_count() {
                    assert_eq!(
                        r.neighbors(pred, v, inverse).unwrap(),
                        g.neighbors(pred, v, inverse),
                        "pred {pred} inverse {inverse} node {v}"
                    );
                    assert_eq!(
                        r.degree(pred, v, inverse).unwrap(),
                        g.neighbors(pred, v, inverse).len()
                    );
                }
                let paged: Vec<_> = r.pairs(pred, inverse).collect();
                let in_ram: Vec<_> = g.pairs(pred, inverse).collect();
                assert_eq!(paged, in_ram, "pred {pred} inverse {inverse}");
            }
            for v in 0..g.node_count() {
                for w in 0..g.node_count() {
                    assert_eq!(r.has_edge(pred, v, w).unwrap(), g.has_edge(pred, v, w));
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_page_size_and_tiny_cache_round_trip() {
        let dir = std::env::temp_dir().join(format!("gstore-dp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.gstore");
        let g = tiny_graph();
        let mut meta = meta_for(&g);
        meta.page_size = DEFAULT_PAGE_SIZE;
        StoreWriter::write_graph(&path, &meta, &g).unwrap();
        // A one-page cache forces constant eviction; results must not change.
        let r = StoreReader::open_with_cache(&path, 1).unwrap();
        for v in 0..g.node_count() {
            assert_eq!(r.neighbors(0, v, false).unwrap(), g.neighbors(0, v, false));
            assert_eq!(r.neighbors(1, v, true).unwrap(), g.neighbors(1, v, true));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csr_edges_iterator_matches_flat_map() {
        let edges = [(0u32, 5u32), (0, 7), (2, 1), (4, 0), (4, 9)];
        let csr = Csr::from_edges(10, &edges, true);
        let got: Vec<_> = csr.iter_edges().collect();
        assert_eq!(got, edges);
        let empty = Csr::from_edges(0, &[], true);
        assert_eq!(empty.iter_edges().count(), 0);
    }
}
