//! The on-disk paged graph store (`gmark-store` format, version 1).
//!
//! The streaming generator (PR 2) produces Table 3-scale graphs in a few
//! MiB of RSS, but evaluation used to require the fully materialized CSR
//! [`Graph`](crate::Graph) — generatable graphs were not queryable. This
//! format persists the exact same per-(predicate, direction) CSR arrays in
//! a paged binary file, written once by [`StoreWriter`] and served many
//! times by [`StoreReader`] through positioned reads
//! ([`std::os::unix::fs::FileExt::read_exact_at`]) and a small pinned-page
//! cache — no mmap, no dependencies, memory bounded by the cache instead
//! of the edge count.
//!
//! # Layout (all integers little-endian)
//!
//! | region | contents |
//! |---|---|
//! | fixed header (48 B) | magic `GMRKSTR1`, version u32, page_size u32, seed u64, schema_hash u64, node_count u32, predicate_count u32, type_count u32, reserved u32 |
//! | predicate names | per predicate: u32 length + raw UTF-8 bytes (binary-safe, so hostile alphabets round-trip) |
//! | type partition | (type_count + 1) × u32 cumulative offsets |
//! | *zero padding to a page boundary* | |
//! | segments | per predicate, forward then backward: page-aligned offsets array ((node_count + 1) × u64, zero-padded to a page), then page-aligned targets array (edge_count × u32, zero-padded to a page) |
//! | directory (page-aligned) | total_edges u64, then per segment: offsets_pos u64, targets_pos u64, edge_count u64 |
//! | footer (24 B) | dir_pos u64, checksum u64, end magic `GMRKEND1` |
//!
//! The checksum is FNV-1a (64-bit) over every byte from offset 0 up to the
//! checksum field itself (the directory position included), maintained as a
//! running hash by the writer — the file is written strictly sequentially,
//! which is also why the directory trails the segments: deduplicated edge
//! counts are only known after each segment is finalized.
//!
//! # Determinism
//!
//! Store bytes are a pure function of `(config, seed)`: the segments
//! serialize the canonical (sorted, deduplicated) CSR arrays, which are
//! independent of generation order, so the materialized and streamed build
//! paths — at any thread count — produce byte-identical files. CI `cmp`s
//! them, and `tests/store_paged.rs` pins the guarantee at 1/2/8 threads.

mod reader;
mod writer;

pub use reader::{StorePairs, StoreReader};
pub use writer::{build_store_from_spool, EdgeSpool, SpoolWriter, StoreWriter};

use crate::TypePartition;
use std::io;
use std::path::{Path, PathBuf};

/// Leading file magic: "gMaRK STore Rust, version 1".
pub const MAGIC: [u8; 8] = *b"GMRKSTR1";
/// Trailing file magic (truncation canary).
pub const END_MAGIC: [u8; 8] = *b"GMRKEND1";
/// Format version this build reads and writes.
pub const VERSION: u32 = 1;
/// Default page size: 8 KiB, a middle ground between read amplification
/// on point lookups and per-page overhead in the cache.
pub const DEFAULT_PAGE_SIZE: u32 = 8192;
/// Size of the fixed leading header region.
pub(crate) const FIXED_HEADER_LEN: u64 = 48;
/// Size of the trailing footer (dir_pos + checksum + end magic).
pub(crate) const FOOTER_LEN: u64 = 24;

/// FNV-1a 64-bit running hash — the store's checksum primitive (and the
/// hash behind `Schema::schema_hash` in `gmark-core`). Hand-rolled because
/// the workspace is offline; FNV is tiny, stable, and fast enough to keep
/// up with sequential writes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    /// The current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes a sequence of length-prefixed strings (domain-separated, so
/// `["ab","c"]` and `["a","bc"]` differ) into an existing hash.
pub fn fnv_strings(hash: &mut Fnv64, strings: &[String]) {
    for s in strings {
        hash.update(&(s.len() as u64).to_le_bytes());
        hash.update(s.as_bytes());
    }
}

/// Everything the store records about the graph besides the CSR arrays.
///
/// The writer serializes this into the header; the reader hands it back so
/// callers can validate provenance (`schema_hash`, `seed`) before
/// evaluating against the wrong configuration.
#[derive(Debug, Clone)]
pub struct StoreMeta {
    /// Master seed the graph was generated from.
    pub seed: u64,
    /// Hash of the generating schema (see `Schema::schema_hash`).
    pub schema_hash: u64,
    /// Page size of the file; [`DEFAULT_PAGE_SIZE`] unless overridden.
    pub page_size: u32,
    /// Predicate alphabet Σ, in index order.
    pub predicate_names: Vec<String>,
    /// The contiguous node-type partition.
    pub partition: TypePartition,
}

/// One `(predicate, direction)` CSR segment's location in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Byte position of the page-aligned offsets array.
    pub offsets_pos: u64,
    /// Byte position of the page-aligned targets array.
    pub targets_pos: u64,
    /// Deduplicated edge count (= length of the targets array).
    pub edge_count: u64,
}

/// What a finished store write produced, for reports and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreInfo {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Page size of the file.
    pub page_size: u32,
    /// Total (deduplicated) edges across all predicates.
    pub edges: u64,
}

/// Why a store file could not be written, opened, or trusted.
///
/// Corruption is reported as a typed error naming the bad page (byte
/// offset / page size) whenever the failure is page-locatable, never as a
/// panic.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io {
        /// What was being read or written.
        context: String,
        /// The failing path.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file is not a gmark-store file at all (bad magic, unsupported
    /// version, or too short to hold the fixed header and footer).
    NotAStore {
        /// The offending path.
        path: PathBuf,
        /// What disqualified it.
        what: String,
    },
    /// The file has the right framing but its contents are inconsistent.
    Corrupt {
        /// The offending path.
        path: PathBuf,
        /// What is inconsistent.
        what: String,
        /// The page containing the bad bytes, when locatable.
        page: Option<u64>,
    },
    /// The store was generated from a different schema than the caller's.
    SchemaMismatch {
        /// The offending path.
        path: PathBuf,
        /// The schema hash the caller expected.
        expected: u64,
        /// The hash recorded in the store header.
        found: u64,
    },
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, path: &Path, source: io::Error) -> StoreError {
        StoreError::Io {
            context: context.into(),
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, what: impl Into<String>, page: Option<u64>) -> StoreError {
        StoreError::Corrupt {
            path: path.to_path_buf(),
            what: what.into(),
            page,
        }
    }

    pub(crate) fn not_a_store(path: &Path, what: impl Into<String>) -> StoreError {
        StoreError::NotAStore {
            path: path.to_path_buf(),
            what: what.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} {}: {source}", path.display()),
            StoreError::NotAStore { path, what } => {
                write!(f, "{} is not a gmark-store file: {what}", path.display())
            }
            StoreError::Corrupt {
                path,
                what,
                page: Some(page),
            } => write!(f, "{} is corrupt at page {page}: {what}", path.display()),
            StoreError::Corrupt {
                path,
                what,
                page: None,
            } => write!(f, "{} is corrupt: {what}", path.display()),
            StoreError::SchemaMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} was generated from a different schema \
                 (expected hash {expected:#018x}, store records {found:#018x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Rounds `pos` up to the next multiple of `page_size`.
#[inline]
pub(crate) fn page_align(pos: u64, page_size: u64) -> u64 {
    pos.div_ceil(page_size) * page_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_strings_is_domain_separated() {
        let hash = |parts: &[&str]| {
            let mut h = Fnv64::new();
            let owned: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
            fnv_strings(&mut h, &owned);
            h.finish()
        };
        assert_ne!(hash(&["ab", "c"]), hash(&["a", "bc"]));
        assert_ne!(hash(&["ab"]), hash(&["ab", ""]));
    }

    #[test]
    fn page_align_rounds_up() {
        assert_eq!(page_align(0, 4096), 0);
        assert_eq!(page_align(1, 4096), 4096);
        assert_eq!(page_align(4096, 4096), 4096);
        assert_eq!(page_align(4097, 4096), 8192);
    }
}
