//! N-Triples output (and a reader for round-trip tests).
//!
//! Section 1.1: gMark "supports various practical output formats for the
//! graphs …, including N-triples for data". Nodes and predicates are mapped
//! to IRIs under a configurable base, matching the RDF serialization the
//! SPARQL engines of Section 7 consume.
//!
//! Predicate names come from user-authored schemas and may contain
//! characters that are illegal inside an IRI (spaces, `>`, quotes) or
//! non-ASCII text; they are percent-encoded as a single path segment on
//! write ([`encode_segment`]) and decoded on read, so every emitted line is
//! valid N-Triples regardless of the schema's alphabet. The base IRI is
//! likewise escaped just enough to be legal ([`encode_iri_base`]) while
//! leaving IRI structure (`:`, `/`, `#`, …) intact.

use crate::sink::EdgeSink;
use crate::{NodeId, PredIdx};
use std::io::{self, BufRead, Write};

/// RFC 3986 "unreserved" characters, the only bytes a path segment keeps
/// verbatim; everything else is written as uppercase `%XX` per UTF-8 byte.
#[inline]
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~')
}

const HEX: &[u8; 16] = b"0123456789ABCDEF";

/// Percent-encodes `s` as one IRI path segment: RFC 3986 unreserved bytes
/// pass through, every other byte (including `/`, `%`, spaces, and each
/// byte of a non-ASCII codepoint) becomes uppercase `%XX`.
pub fn encode_segment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xF) as usize] as char);
        }
    }
    out
}

/// Decodes a percent-encoded path segment produced by [`encode_segment`].
///
/// Returns `None` on truncated or non-hex escapes and on escape sequences
/// that do not decode to valid UTF-8.
pub fn decode_segment(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16))?;
            let lo = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16))?;
            out.push((hi as u8) << 4 | lo as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Escapes the characters an N-Triples `IRIREF` production forbids
/// (controls, space, `<`, `>`, `"`, `{`, `}`, `|`, `^`, `` ` ``, `\`)
/// while leaving IRI structure — scheme separators, slashes, fragments,
/// existing `%XX` escapes, non-ASCII — untouched.
pub fn encode_iri_base(base: &str) -> String {
    let mut out = String::with_capacity(base.len());
    for c in base.chars() {
        let illegal = c <= ' '
            || matches!(
                c,
                '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' | '\u{7f}'
            );
        if illegal {
            let b = c as u8;
            out.push('%');
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xF) as usize] as char);
        } else {
            out.push(c);
        }
    }
    out
}

/// Precomputed IRI fragments for one `(base, predicate names)` pair: the
/// shared subject/object prefix and the full per-predicate IRIs.
///
/// Encoding the predicate alphabet is O(total name length); done once and
/// shared (behind an [`Arc`](std::sync::Arc)) across the many short-lived
/// writers of the sharded streaming pipeline instead of once per shard.
#[derive(Debug)]
pub struct NTriplesFormat {
    /// `"<base/node/"` — shared prefix of every subject/object IRI.
    node_prefix: String,
    /// Full `<base/pred/NAME>` IRI per predicate index.
    pred_iris: Vec<String>,
}

impl NTriplesFormat {
    /// Precomputes the IRI fragments for a base (no trailing slash needed)
    /// and predicate alphabet.
    pub fn new(predicate_names: &[String], base: &str) -> Self {
        let base = encode_iri_base(base.trim_end_matches('/'));
        NTriplesFormat {
            node_prefix: format!("<{base}/node/"),
            pred_iris: predicate_names
                .iter()
                .map(|n| format!("<{base}/pred/{}>", encode_segment(n)))
                .collect(),
        }
    }
}

/// Streams edges as N-Triples lines:
/// `<base/node/S> <base/pred/NAME> <base/node/T> .`
///
/// `NAME` is the percent-encoded predicate name; the base is escaped via
/// [`encode_iri_base`]. The full subject/object prefix and per-predicate
/// IRIs are precomputed ([`NTriplesFormat`]), keeping the per-edge hot
/// path to integer formatting plus buffered writes (this writer is what
/// every streaming shard of [`crate::shard`] runs).
#[derive(Debug)]
pub struct NTriplesWriter<W: Write> {
    out: W,
    format: std::sync::Arc<NTriplesFormat>,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> NTriplesWriter<W> {
    /// Creates a writer with the default base IRI `http://gmark.example.org`.
    pub fn new(out: W, predicate_names: Vec<String>) -> Self {
        Self::with_base(out, predicate_names, "http://gmark.example.org")
    }

    /// Creates a writer with a custom base IRI (no trailing slash).
    pub fn with_base(out: W, predicate_names: Vec<String>, base: &str) -> Self {
        Self::with_format(
            out,
            std::sync::Arc::new(NTriplesFormat::new(&predicate_names, base)),
        )
    }

    /// Creates a writer over precomputed IRI fragments; the cheap
    /// constructor when many writers share one format (shard fan-out).
    pub fn with_format(out: W, format: std::sync::Arc<NTriplesFormat>) -> Self {
        NTriplesWriter {
            out,
            format,
            written: 0,
            error: None,
        }
    }

    /// Number of triples written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Finishes writing, flushing the stream and surfacing any deferred
    /// I/O error (the [`EdgeSink`] interface is infallible, so errors are
    /// captured and reported here).
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> EdgeSink for NTriplesWriter<W> {
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        if self.error.is_some() {
            return;
        }
        let result = writeln!(
            self.out,
            "{node}{src}> {pred} {node}{trg}> .",
            node = self.format.node_prefix,
            pred = self.format.pred_iris[pred],
        );
        match result {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Parses N-Triples produced by [`NTriplesWriter`] back into raw triples,
/// resolving percent-encoded predicate IRIs against `predicate_names`.
///
/// This is a round-trip reader for gMark's own output (full N-Triples
/// generality — literals, blank nodes — is out of scope). It is strict
/// about what it does accept: every line must be exactly
/// `<s> <p> <o> .` with nothing after the terminating dot, every IRI in
/// the **file** must share one base (a base mismatch means the file was
/// not produced by the writer configuration the caller assumed — node ids
/// from different bases live in different id spaces and must not be
/// conflated), and malformed lines are rejected with their 1-based line
/// number and a reason.
pub fn read_ntriples<R: BufRead>(
    input: R,
    predicate_names: &[String],
) -> io::Result<Vec<(NodeId, PredIdx, NodeId)>> {
    let mut triples = Vec::new();
    let mut file_base: Option<String> = None;
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = |reason: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed N-Triples line {}: {reason}: {line}", lineno + 1),
            )
        };
        let (base, triple) = parse_line(line, predicate_names).map_err(malformed)?;
        match &file_base {
            // Own the base once (first line); every later line compares
            // borrowed slices — no per-line allocation on this path.
            None => file_base = Some(base.to_owned()),
            Some(expected) if expected.as_str() != base => {
                return Err(malformed(format!(
                    "IRI base {base:?} differs from the file's base {expected:?}"
                )))
            }
            Some(_) => {}
        }
        triples.push(triple);
    }
    Ok(triples)
}

/// Parses one line, returning its (shared) IRI base — borrowed from
/// `line`, so the happy path allocates nothing — and the triple.
fn parse_line<'a>(
    line: &'a str,
    predicate_names: &[String],
) -> Result<(&'a str, (NodeId, PredIdx, NodeId)), String> {
    let mut parts = line.split_whitespace();
    let subj = parts.next().ok_or("missing subject")?;
    let pred = parts.next().ok_or("missing predicate")?;
    let obj = parts.next().ok_or("missing object")?;
    match parts.next() {
        Some(".") => {}
        Some(other) => return Err(format!("expected terminating '.', found {other:?}")),
        None => return Err("missing terminating '.'".to_owned()),
    }
    if let Some(garbage) = parts.next() {
        return Err(format!("trailing garbage after '.': {garbage:?}"));
    }

    fn inner<'b>(iri: &'b str, what: &str) -> Result<&'b str, String> {
        iri.strip_prefix('<')
            .and_then(|s| s.strip_suffix('>'))
            .ok_or_else(|| format!("{what} is not an IRI"))
    }
    // Split `<base/node/ID>` into (base, id); `rsplit_once` tolerates
    // bases that themselves contain `/node/`.
    fn node_parts<'b>(iri: &'b str, what: &str) -> Result<(&'b str, NodeId), String> {
        let inner = inner(iri, what)?;
        let (base, id) = inner
            .rsplit_once("/node/")
            .ok_or_else(|| format!("{what} has no /node/ segment"))?;
        let id = id
            .parse()
            .map_err(|_| format!("{what} node id {id:?} is not an integer"))?;
        Ok((base, id))
    }

    let (subj_base, src) = node_parts(subj, "subject")?;
    let (obj_base, trg) = node_parts(obj, "object")?;
    let pred_inner = inner(pred, "predicate")?;
    let (pred_base, pred_enc) = pred_inner
        .rsplit_once("/pred/")
        .ok_or("predicate has no /pred/ segment")?;
    // A segment without '%' decodes to itself — compare in place and keep
    // the happy path for ordinary predicate names allocation-free.
    let pred_idx = if pred_enc.contains('%') {
        let pred_name = decode_segment(pred_enc)
            .ok_or_else(|| format!("undecodable predicate {pred_enc:?}"))?;
        predicate_names.iter().position(|n| n == &pred_name)
    } else {
        predicate_names.iter().position(|n| n == pred_enc)
    }
    .ok_or_else(|| format!("unknown predicate {pred_enc:?}"))?;
    if subj_base != pred_base || subj_base != obj_base {
        return Err(format!(
            "inconsistent IRI bases: subject {subj_base:?}, predicate {pred_base:?}, \
             object {obj_base:?}"
        ));
    }
    Ok((subj_base, (src, pred_idx, trg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["authors".to_owned(), "heldIn".to_owned()]
    }

    #[test]
    fn writes_expected_lines() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::new(&mut buf, names());
            w.edge(0, 0, 42);
            w.edge(7, 1, 3);
            assert_eq!(w.finish().unwrap(), 2);
        }
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "<http://gmark.example.org/node/0> <http://gmark.example.org/pred/authors> \
             <http://gmark.example.org/node/42> ."
        );
        assert_eq!(
            lines.next().unwrap(),
            "<http://gmark.example.org/node/7> <http://gmark.example.org/pred/heldIn> \
             <http://gmark.example.org/node/3> ."
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn custom_base_is_used() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::with_base(&mut buf, names(), "http://ex.org/");
            w.edge(1, 0, 2);
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("<http://ex.org/node/1>"), "{text}");
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::new(&mut buf, names());
            w.edge(0, 0, 1);
            w.edge(2, 1, 0);
            w.edge(3, 0, 3);
            w.finish().unwrap();
        }
        let triples = read_ntriples(buf.as_slice(), &names()).unwrap();
        assert_eq!(triples, vec![(0, 0, 1), (2, 1, 0), (3, 0, 3)]);
    }

    #[test]
    fn hostile_predicate_names_produce_valid_ascii_iris() {
        let hostile = vec![
            "has part".to_owned(),
            "a>b\"c".to_owned(),
            "café/µ".to_owned(),
        ];
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::new(&mut buf, hostile.clone());
            w.edge(0, 0, 1);
            w.edge(1, 1, 2);
            w.edge(2, 2, 0);
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf.clone()).unwrap();
        for line in text.lines() {
            assert!(line.is_ascii(), "IRIs must be pure ASCII: {line}");
            // Between the angle brackets nothing an IRIREF forbids survives.
            for iri in line.split_whitespace().take(3) {
                let inner = iri
                    .strip_prefix('<')
                    .and_then(|s| s.strip_suffix('>'))
                    .unwrap_or_else(|| panic!("not bracketed: {iri}"));
                assert!(
                    !inner.contains(['<', '>', '"', ' ', '{', '}', '|', '^', '`', '\\']),
                    "illegal IRI char survived: {inner}"
                );
            }
        }
        assert!(text.contains("has%20part"), "{text}");
        let back = read_ntriples(buf.as_slice(), &hostile).unwrap();
        assert_eq!(back, vec![(0, 0, 1), (1, 1, 2), (2, 2, 0)]);
    }

    #[test]
    fn hostile_base_is_escaped() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::with_base(&mut buf, names(), "http://ex.org/my graphs");
            w.edge(1, 0, 2);
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            text.starts_with("<http://ex.org/my%20graphs/node/1>"),
            "{text}"
        );
        let back = read_ntriples(buf.as_slice(), &names()).unwrap();
        assert_eq!(back, vec![(1, 0, 2)]);
    }

    #[test]
    fn segment_codec_round_trips() {
        for s in ["plain", "with space", "ü/µ%", "a.b-c_d~e", "100%"] {
            assert_eq!(decode_segment(&encode_segment(s)).as_deref(), Some(s));
        }
        assert_eq!(decode_segment("%2"), None, "truncated escape");
        assert_eq!(decode_segment("%zz"), None, "non-hex escape");
        assert_eq!(decode_segment("%FF"), None, "invalid UTF-8");
    }

    #[test]
    fn reader_skips_comments_and_blanks() {
        let input =
            "# a comment\n\n<http://g/node/1> <http://g/pred/authors> <http://g/node/2> .\n";
        let triples = read_ntriples(input.as_bytes(), &names()).unwrap();
        assert_eq!(triples, vec![(1, 0, 2)]);
    }

    #[test]
    fn reader_rejects_malformed() {
        let input = "<oops> .\n";
        assert!(read_ntriples(input.as_bytes(), &names()).is_err());
        let unknown_pred = "<http://g/node/1> <http://g/pred/nope> <http://g/node/2> .\n";
        assert!(read_ntriples(unknown_pred.as_bytes(), &names()).is_err());
    }

    #[test]
    fn reader_rejects_trailing_garbage_with_line_number() {
        let input = "<http://g/node/1> <http://g/pred/authors> <http://g/node/2> .\n\
                     <http://g/node/1> <http://g/pred/authors> <http://g/node/2> . extra\n";
        let err = read_ntriples(input.as_bytes(), &names()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("trailing garbage"), "{msg}");
    }

    #[test]
    fn reader_rejects_inconsistent_bases() {
        let input = "<http://a/node/1> <http://b/pred/authors> <http://a/node/2> .\n";
        let err = read_ntriples(input.as_bytes(), &names()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("inconsistent IRI bases"), "{msg}");
    }

    #[test]
    fn reader_rejects_mixed_bases_across_lines() {
        // Two internally-consistent lines with different bases: their node
        // id spaces are unrelated, so the file must be rejected.
        let input = "<http://a/node/1> <http://a/pred/authors> <http://a/node/2> .\n\
                     <http://b/node/1> <http://b/pred/authors> <http://b/node/2> .\n";
        let err = read_ntriples(input.as_bytes(), &names()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("differs from the file's base"), "{msg}");
    }

    #[test]
    fn reader_rejects_non_numeric_node_ids() {
        let input = "<http://g/node/x> <http://g/pred/authors> <http://g/node/2> .\n";
        let err = read_ntriples(input.as_bytes(), &names()).unwrap_err();
        assert!(err.to_string().contains("not an integer"), "{err}");
    }
}
