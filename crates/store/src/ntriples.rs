//! N-Triples output (and a reader for round-trip tests).
//!
//! Section 1.1: gMark "supports various practical output formats for the
//! graphs …, including N-triples for data". Nodes and predicates are mapped
//! to IRIs under a configurable base, matching the RDF serialization the
//! SPARQL engines of Section 7 consume.

use crate::sink::EdgeSink;
use crate::{NodeId, PredIdx};
use std::io::{self, BufRead, Write};

/// Streams edges as N-Triples lines:
/// `<base/node/S> <base/pred/NAME> <base/node/T> .`
#[derive(Debug)]
pub struct NTriplesWriter<W: Write> {
    out: W,
    base: String,
    predicate_names: Vec<String>,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> NTriplesWriter<W> {
    /// Creates a writer with the default base IRI `http://gmark.example.org`.
    pub fn new(out: W, predicate_names: Vec<String>) -> Self {
        Self::with_base(out, predicate_names, "http://gmark.example.org")
    }

    /// Creates a writer with a custom base IRI (no trailing slash).
    pub fn with_base(out: W, predicate_names: Vec<String>, base: &str) -> Self {
        NTriplesWriter {
            out,
            base: base.trim_end_matches('/').to_owned(),
            predicate_names,
            written: 0,
            error: None,
        }
    }

    /// Number of triples written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Finishes writing, flushing the stream and surfacing any deferred
    /// I/O error (the [`EdgeSink`] interface is infallible, so errors are
    /// captured and reported here).
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> EdgeSink for NTriplesWriter<W> {
    fn edge(&mut self, src: NodeId, pred: PredIdx, trg: NodeId) {
        if self.error.is_some() {
            return;
        }
        let name = &self.predicate_names[pred];
        let result = writeln!(
            self.out,
            "<{base}/node/{src}> <{base}/pred/{name}> <{base}/node/{trg}> .",
            base = self.base,
        );
        match result {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Parses N-Triples produced by [`NTriplesWriter`] back into raw triples,
/// resolving predicate IRIs against `predicate_names`.
///
/// This is a round-trip reader for gMark's own output (full N-Triples
/// generality — literals, blank nodes — is out of scope).
pub fn read_ntriples<R: BufRead>(
    input: R,
    predicate_names: &[String],
) -> io::Result<Vec<(NodeId, PredIdx, NodeId)>> {
    let mut triples = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse = || -> Option<(NodeId, PredIdx, NodeId)> {
            let mut parts = line.split_whitespace();
            let subj = parts.next()?;
            let pred = parts.next()?;
            let obj = parts.next()?;
            if parts.next()? != "." {
                return None;
            }
            let node_of = |iri: &str| -> Option<NodeId> {
                let inner = iri.strip_prefix('<')?.strip_suffix('>')?;
                inner.rsplit_once("/node/")?.1.parse().ok()
            };
            let pred_inner = pred.strip_prefix('<')?.strip_suffix('>')?;
            let pred_name = pred_inner.rsplit_once("/pred/")?.1;
            let pred_idx = predicate_names.iter().position(|n| n == pred_name)?;
            Some((node_of(subj)?, pred_idx, node_of(obj)?))
        };
        match parse() {
            Some(t) => triples.push(t),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed N-Triples line {}: {line}", lineno + 1),
                ))
            }
        }
    }
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["authors".to_owned(), "heldIn".to_owned()]
    }

    #[test]
    fn writes_expected_lines() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::new(&mut buf, names());
            w.edge(0, 0, 42);
            w.edge(7, 1, 3);
            assert_eq!(w.finish().unwrap(), 2);
        }
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "<http://gmark.example.org/node/0> <http://gmark.example.org/pred/authors> \
             <http://gmark.example.org/node/42> ."
        );
        assert_eq!(
            lines.next().unwrap(),
            "<http://gmark.example.org/node/7> <http://gmark.example.org/pred/heldIn> \
             <http://gmark.example.org/node/3> ."
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn custom_base_is_used() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::with_base(&mut buf, names(), "http://ex.org/");
            w.edge(1, 0, 2);
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("<http://ex.org/node/1>"), "{text}");
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = NTriplesWriter::new(&mut buf, names());
            w.edge(0, 0, 1);
            w.edge(2, 1, 0);
            w.edge(3, 0, 3);
            w.finish().unwrap();
        }
        let triples = read_ntriples(buf.as_slice(), &names()).unwrap();
        assert_eq!(triples, vec![(0, 0, 1), (2, 1, 0), (3, 0, 3)]);
    }

    #[test]
    fn reader_skips_comments_and_blanks() {
        let input =
            "# a comment\n\n<http://g/node/1> <http://g/pred/authors> <http://g/node/2> .\n";
        let triples = read_ntriples(input.as_bytes(), &names()).unwrap();
        assert_eq!(triples, vec![(1, 0, 2)]);
    }

    #[test]
    fn reader_rejects_malformed() {
        let input = "<oops> .\n";
        assert!(read_ntriples(input.as_bytes(), &names()).is_err());
        let unknown_pred = "<http://g/node/1> <http://g/pred/nope> <http://g/node/2> .\n";
        assert!(read_ntriples(unknown_pred.as_bytes(), &names()).is_err());
    }
}
