//! Property-based tests for the graph store: CSR construction agrees with
//! a naive adjacency model, and the type partition is self-consistent.

use gmark_store::{Csr, EdgeSink, GraphBuilder, NodeId, TypePartition};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

proptest! {
    #[test]
    fn csr_matches_naive_adjacency(
        n in 1u32..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..200),
    ) {
        let edges: Vec<(NodeId, NodeId)> =
            edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
        let csr = Csr::from_edges(n, &edges, true);
        let mut naive: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for &(s, t) in &edges {
            naive.entry(s).or_default().insert(t);
        }
        for v in 0..n {
            let expected: Vec<NodeId> =
                naive.get(&v).map(|s| s.iter().copied().collect()).unwrap_or_default();
            prop_assert_eq!(csr.neighbors(v), expected.as_slice());
            prop_assert_eq!(csr.degree(v), expected.len());
            for w in 0..n {
                prop_assert_eq!(csr.contains(v, w), expected.contains(&w));
            }
        }
        let total: usize = (0..n).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(csr.edge_count(), total);
    }

    #[test]
    fn csr_without_dedup_preserves_multiplicity(
        n in 1u32..20,
        edges in prop::collection::vec((0u32..20, 0u32..20), 0..100),
    ) {
        let edges: Vec<(NodeId, NodeId)> =
            edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
        let csr = Csr::from_edges(n, &edges, false);
        prop_assert_eq!(csr.edge_count(), edges.len());
    }

    #[test]
    fn partition_type_of_is_inverse_of_ranges(counts in prop::collection::vec(0u64..50, 1..10)) {
        let p = TypePartition::from_counts(&counts);
        prop_assert_eq!(p.node_count() as u64, counts.iter().sum::<u64>());
        for (t, &expected) in counts.iter().enumerate().take(p.type_count()) {
            for v in p.range(t) {
                prop_assert_eq!(p.type_of(v), t);
            }
            prop_assert_eq!(p.count(t) as u64, expected);
        }
    }

    #[test]
    fn forward_and_backward_are_transposes(
        n in 1u32..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..150),
    ) {
        let edges: Vec<(NodeId, NodeId)> =
            edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[n as u64]), 1);
        for &(s, t) in &edges {
            b.edge(s, 0, t);
        }
        let g = b.build();
        for v in 0..n {
            for &w in g.out_neighbors(0, v) {
                prop_assert!(g.in_neighbors(0, w).contains(&v));
            }
            for &u in g.in_neighbors(0, v) {
                prop_assert!(g.out_neighbors(0, u).contains(&v));
            }
        }
        prop_assert_eq!(g.forward(0).edge_count(), g.backward(0).edge_count());
    }

    #[test]
    fn ntriples_round_trip_hostile_predicate_names(
        raw_names in prop::collection::vec("\\PC{1,8}", 1..5),
        edges in prop::collection::vec((0u32..50, 0usize..5, 0u32..50), 0..60),
    ) {
        // Arbitrary printable unicode — spaces, '>', '%', emoji — suffixed
        // with the index so names stay distinct (the reader resolves
        // predicates by name).
        let names: Vec<String> = raw_names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{n}{i}"))
            .collect();
        let mut buf = Vec::new();
        let written: Vec<(NodeId, usize, NodeId)> = {
            let mut w = gmark_store::NTriplesWriter::new(&mut buf, names.clone());
            let mut out = Vec::new();
            for &(s, p, t) in &edges {
                let p = p % names.len();
                w.edge(s, p, t);
                out.push((s, p, t));
            }
            w.finish().unwrap();
            out
        };
        // Hostile names must never leak illegal bytes into the IRIs.
        let text = std::str::from_utf8(&buf).unwrap();
        for line in text.lines() {
            prop_assert!(line.is_ascii(), "non-ASCII line: {}", line);
            prop_assert_eq!(line.split_whitespace().count(), 4, "line: {}", line);
        }
        let back = gmark_store::read_ntriples(buf.as_slice(), &names).unwrap();
        prop_assert_eq!(back, written);
    }

    #[test]
    fn ntriples_round_trip_arbitrary_edges(
        n in 1u32..30,
        edges in prop::collection::vec((0u32..30, 0usize..2, 0u32..30), 0..80),
    ) {
        let names = vec!["alpha".to_owned(), "beta".to_owned()];
        let mut buf = Vec::new();
        let written: Vec<(NodeId, usize, NodeId)> = {
            let mut w = gmark_store::NTriplesWriter::new(&mut buf, names.clone());
            let mut out = Vec::new();
            for &(s, p, t) in &edges {
                let (s, t) = (s % n, t % n);
                w.edge(s, p, t);
                out.push((s, p, t));
            }
            w.finish().unwrap();
            out
        };
        let back = gmark_store::read_ntriples(buf.as_slice(), &names).unwrap();
        prop_assert_eq!(back, written);
    }
}
