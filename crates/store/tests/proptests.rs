//! Property-based tests for the graph store: CSR construction agrees with
//! a naive adjacency model, the type partition is self-consistent, and the
//! paged [`StoreReader`] is observationally equivalent to the in-RAM CSR.

use gmark_store::{
    Csr, EdgeSink, GraphBuilder, NodeId, StoreMeta, StoreReader, StoreWriter, TypePartition,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

proptest! {
    #[test]
    fn csr_matches_naive_adjacency(
        n in 1u32..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..200),
    ) {
        let edges: Vec<(NodeId, NodeId)> =
            edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
        let csr = Csr::from_edges(n, &edges, true);
        let mut naive: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for &(s, t) in &edges {
            naive.entry(s).or_default().insert(t);
        }
        for v in 0..n {
            let expected: Vec<NodeId> =
                naive.get(&v).map(|s| s.iter().copied().collect()).unwrap_or_default();
            prop_assert_eq!(csr.neighbors(v), expected.as_slice());
            prop_assert_eq!(csr.degree(v), expected.len());
            for w in 0..n {
                prop_assert_eq!(csr.contains(v, w), expected.contains(&w));
            }
        }
        let total: usize = (0..n).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(csr.edge_count(), total);
    }

    #[test]
    fn csr_without_dedup_preserves_multiplicity(
        n in 1u32..20,
        edges in prop::collection::vec((0u32..20, 0u32..20), 0..100),
    ) {
        let edges: Vec<(NodeId, NodeId)> =
            edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
        let csr = Csr::from_edges(n, &edges, false);
        prop_assert_eq!(csr.edge_count(), edges.len());
    }

    #[test]
    fn partition_type_of_is_inverse_of_ranges(counts in prop::collection::vec(0u64..50, 1..10)) {
        let p = TypePartition::from_counts(&counts);
        prop_assert_eq!(p.node_count() as u64, counts.iter().sum::<u64>());
        for (t, &expected) in counts.iter().enumerate().take(p.type_count()) {
            for v in p.range(t) {
                prop_assert_eq!(p.type_of(v), t);
            }
            prop_assert_eq!(p.count(t) as u64, expected);
        }
    }

    #[test]
    fn forward_and_backward_are_transposes(
        n in 1u32..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..150),
    ) {
        let edges: Vec<(NodeId, NodeId)> =
            edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[n as u64]), 1);
        for &(s, t) in &edges {
            b.edge(s, 0, t);
        }
        let g = b.build();
        for v in 0..n {
            for &w in g.out_neighbors(0, v) {
                prop_assert!(g.in_neighbors(0, w).contains(&v));
            }
            for &u in g.in_neighbors(0, v) {
                prop_assert!(g.out_neighbors(0, u).contains(&v));
            }
        }
        prop_assert_eq!(g.forward(0).edge_count(), g.backward(0).edge_count());
    }

    #[test]
    fn ntriples_round_trip_hostile_predicate_names(
        raw_names in prop::collection::vec("\\PC{1,8}", 1..5),
        edges in prop::collection::vec((0u32..50, 0usize..5, 0u32..50), 0..60),
    ) {
        // Arbitrary printable unicode — spaces, '>', '%', emoji — suffixed
        // with the index so names stay distinct (the reader resolves
        // predicates by name).
        let names: Vec<String> = raw_names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{n}{i}"))
            .collect();
        let mut buf = Vec::new();
        let written: Vec<(NodeId, usize, NodeId)> = {
            let mut w = gmark_store::NTriplesWriter::new(&mut buf, names.clone());
            let mut out = Vec::new();
            for &(s, p, t) in &edges {
                let p = p % names.len();
                w.edge(s, p, t);
                out.push((s, p, t));
            }
            w.finish().unwrap();
            out
        };
        // Hostile names must never leak illegal bytes into the IRIs.
        let text = std::str::from_utf8(&buf).unwrap();
        for line in text.lines() {
            prop_assert!(line.is_ascii(), "non-ASCII line: {}", line);
            prop_assert_eq!(line.split_whitespace().count(), 4, "line: {}", line);
        }
        let back = gmark_store::read_ntriples(buf.as_slice(), &names).unwrap();
        prop_assert_eq!(back, written);
    }

    #[test]
    fn ntriples_round_trip_arbitrary_edges(
        n in 1u32..30,
        edges in prop::collection::vec((0u32..30, 0usize..2, 0u32..30), 0..80),
    ) {
        let names = vec!["alpha".to_owned(), "beta".to_owned()];
        let mut buf = Vec::new();
        let written: Vec<(NodeId, usize, NodeId)> = {
            let mut w = gmark_store::NTriplesWriter::new(&mut buf, names.clone());
            let mut out = Vec::new();
            for &(s, p, t) in &edges {
                let (s, t) = (s % n, t % n);
                w.edge(s, p, t);
                out.push((s, p, t));
            }
            w.finish().unwrap();
            out
        };
        let back = gmark_store::read_ntriples(buf.as_slice(), &names).unwrap();
        prop_assert_eq!(back, written);
    }
}

proptest! {
    // Each case writes and reads back a real file; fewer cases keep the
    // suite fast while still sweeping graph shapes and page layouts.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The paged StoreReader is observationally equivalent to the in-RAM
    // CSR Graph it was written from: neighbors, degree, has_edge, and
    // pairs agree in both directions for every predicate — including
    // predicates with no edges at all — and hostile percent-encoded
    // predicate names survive the header name table byte-for-byte.
    #[test]
    fn store_reader_matches_the_in_memory_graph(
        counts in prop::collection::vec(1u64..12, 1..4),
        raw_names in prop::collection::vec("[a-z%/ 0-9]{1,6}", 1..4),
        edges in prop::collection::vec((0u32..30, 0usize..8, 0u32..30), 0..120),
        seed in any::<u64>(),
    ) {
        // The body lives in a plain fn: the proptest! macro's expansion
        // depth scales with statement count and blows the recursion limit.
        if let Err(what) = check_store_matches_graph(&counts, &raw_names, &edges, seed) {
            return Err(TestCaseError::fail(what));
        }
    }
}

/// Builds the same graph in RAM and on disk, then compares every
/// observable: neighbors, degree, has_edge, and pairs in both directions
/// for every predicate. Returns a description of the first divergence.
fn check_store_matches_graph(
    counts: &[u64],
    raw_names: &[String],
    edges: &[(NodeId, usize, NodeId)],
    seed: u64,
) -> Result<(), String> {
    fn ensure(ok: bool, what: impl Fn() -> String) -> Result<(), String> {
        if ok {
            Ok(())
        } else {
            Err(what())
        }
    }
    // One predicate beyond the edge range guarantees an always-empty
    // segment; the rest may or may not receive edges.
    let mut names: Vec<String> = raw_names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("{n}%2F{i}"))
        .collect();
    names.push("never%20used".to_owned());
    let partition = TypePartition::from_counts(counts);
    let n = partition.node_count();
    let mut b = GraphBuilder::new(partition.clone(), names.len());
    for &(s, p, t) in edges {
        b.edge(s % n, p % (names.len() - 1), t % n);
    }
    let g = b.build();

    let dir = std::env::temp_dir().join(format!("gstore-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.gstore");
    let meta = StoreMeta {
        seed,
        schema_hash: seed.rotate_left(17),
        page_size: 64, // smallest legal page: maximal paging pressure
        predicate_names: names.clone(),
        partition,
    };
    let info = StoreWriter::write_graph(&path, &meta, &g).map_err(|e| e.to_string())?;
    ensure(info.edges == g.edge_count() as u64, || {
        format!("info.edges {} != graph {}", info.edges, g.edge_count())
    })?;

    // A one-page cache forces constant eviction on every lookup.
    let r = StoreReader::open_with_cache(&path, 1).map_err(|e| e.to_string())?;
    r.verify().map_err(|e| e.to_string())?;
    ensure(r.node_count() == g.node_count(), || "node_count".into())?;
    ensure(r.edge_count() == g.edge_count() as u64, || {
        "edge_count".into()
    })?;
    ensure(r.seed() == seed, || "seed".into())?;
    ensure(r.predicate_names() == names.as_slice(), || {
        format!("names {:?} != {:?}", r.predicate_names(), names)
    })?;
    for pred in 0..names.len() {
        ensure(r.edge_count_for(pred) == g.edge_count_for(pred), || {
            format!("edge_count_for({pred})")
        })?;
        for inverse in [false, true] {
            for v in 0..n {
                let paged = r.neighbors(pred, v, inverse).map_err(|e| e.to_string())?;
                ensure(paged == g.neighbors(pred, v, inverse), || {
                    format!("neighbors pred {pred} inverse {inverse} node {v}")
                })?;
                let deg = r.degree(pred, v, inverse).map_err(|e| e.to_string())?;
                ensure(deg == g.neighbors(pred, v, inverse).len(), || {
                    format!("degree pred {pred} inverse {inverse} node {v}")
                })?;
            }
            let paged: Vec<_> = r.pairs(pred, inverse).collect();
            let in_ram: Vec<_> = g.pairs(pred, inverse).collect();
            ensure(paged == in_ram, || {
                format!("pairs pred {pred} inverse {inverse}")
            })?;
        }
        for v in 0..n {
            for w in 0..n {
                let paged = r.has_edge(pred, v, w).map_err(|e| e.to_string())?;
                ensure(paged == g.has_edge(pred, v, w), || {
                    format!("has_edge({pred}, {v}, {w})")
                })?;
            }
        }
    }
    // The last predicate never received an edge.
    ensure(r.edge_count_for(names.len() - 1) == 0, || {
        "empty predicate gained edges".into()
    })?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
