//! Corruption and truncation tests for the paged store: damaged files must
//! fail with a typed [`StoreError`] — naming the bad page when the damage
//! is page-locatable — never with a panic or silently wrong results.

use gmark_store::{
    EdgeSink, GraphBuilder, StoreError, StoreMeta, StoreReader, StoreWriter, TypePartition,
};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const PAGE: u32 = 64; // smallest legal page: puts regions on distinct pages

/// Builds a small two-predicate store in a fresh scratch directory and
/// returns `(dir, path, first_segment_pos)` — the byte position of the
/// first (predicate 0, forward) offsets array, which starts at the first
/// page boundary after the header region.
fn build_store(tag: &str) -> (PathBuf, PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("gstore-corrupt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.gstore");
    let names = vec!["authors".to_owned(), "cite%2Fs".to_owned()];
    let partition = TypePartition::from_counts(&[3, 2]);
    let mut b = GraphBuilder::new(partition.clone(), names.len());
    for (s, p, t) in [
        (0u32, 0usize, 3u32),
        (1, 0, 3),
        (2, 0, 4),
        (3, 1, 0),
        (4, 1, 2),
    ] {
        b.edge(s, p, t);
    }
    let g = b.build();
    let meta = StoreMeta {
        seed: 9,
        schema_hash: 0x5eed,
        page_size: PAGE,
        predicate_names: names.clone(),
        partition,
    };
    StoreWriter::write_graph(&path, &meta, &g).unwrap();
    // Header region: 48 fixed + Σ(4 + len) names + (types + 1) × 4
    // partition offsets, zero-padded to the next page boundary.
    let header = 48 + names.iter().map(|n| 4 + n.len() as u64).sum::<u64>() + (2 + 1) * 4;
    let first_seg = header.div_ceil(PAGE as u64) * PAGE as u64;
    (dir, path, first_seg)
}

fn patch(path: &Path, pos: u64, change: impl FnOnce(u8) -> u8) {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(pos)).unwrap();
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte).unwrap();
    f.seek(SeekFrom::Start(pos)).unwrap();
    f.write_all(&[change(byte[0])]).unwrap();
}

#[test]
fn bit_flip_in_an_offsets_page_names_the_page() {
    let (dir, path, first_seg) = build_store("offsets");
    // offset[1] of the first segment lives at first_seg + 8; making it huge
    // breaks monotonicity against the segment's edge count.
    patch(&path, first_seg + 8, |_| 0xFF);
    let r = StoreReader::open(&path).unwrap();
    match r.verify() {
        Err(StoreError::Corrupt { page, what, .. }) => {
            assert_eq!(page, Some(first_seg / PAGE as u64), "wrong page: {what}");
            assert!(what.contains("monotonicity"), "unexpected message: {what}");
        }
        other => panic!("expected Corrupt naming a page, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_in_padding_fails_the_checksum_without_a_page() {
    let (dir, path, first_seg) = build_store("padding");
    // The offsets array is 6 × 8 = 48 bytes; the tail of its 64-byte page
    // is zero padding — structurally invisible, caught only by the
    // whole-file checksum, which cannot localize it.
    patch(&path, first_seg + 60, |b| b ^ 0x40);
    let r = StoreReader::open(&path).unwrap();
    match r.verify() {
        Err(StoreError::Corrupt {
            page: None, what, ..
        }) => {
            assert!(what.contains("checksum"), "unexpected message: {what}");
        }
        other => panic!("expected an unlocatable checksum failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_magic_is_not_a_store() {
    let (dir, path, _) = build_store("magic");
    patch(&path, 0, |b| b ^ 0x01);
    match StoreReader::open(&path) {
        Err(StoreError::NotAStore { .. }) => {}
        other => panic!("expected NotAStore, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_files_are_rejected_at_open() {
    let (dir, path, _) = build_store("truncate");
    let full = std::fs::metadata(&path).unwrap().len();
    // Chop the file mid-segments: the trailing end magic vanishes.
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(full / 2).unwrap();
    match StoreReader::open(&path) {
        Err(StoreError::NotAStore { what, .. }) => {
            assert!(what.contains("truncated"), "unexpected message: {what}");
        }
        other => panic!("expected NotAStore for a truncated file, got {other:?}"),
    }
    // Shorter than even the fixed header + footer.
    f.set_len(10).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::NotAStore { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_flipped_directory_count_is_caught_structurally() {
    let (dir, path, _) = build_store("directory");
    // The directory's total-edges field is the first u64 of the directory
    // page; dir_pos is recorded in the footer (file_len - 24).
    let full = std::fs::metadata(&path).unwrap().len();
    let mut f = OpenOptions::new().read(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(full - 24)).unwrap();
    let mut dir_pos = [0u8; 8];
    f.read_exact(&mut dir_pos).unwrap();
    let dir_pos = u64::from_le_bytes(dir_pos);
    drop(f);
    patch(&path, dir_pos, |b| b.wrapping_add(1));
    // open() cross-checks the directory total against the segment sums.
    match StoreReader::open(&path) {
        Err(StoreError::Corrupt { page, .. }) => {
            assert_eq!(page, Some(dir_pos / PAGE as u64));
        }
        other => panic!("expected Corrupt at the directory page, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
