//! Property-based tests for gmark-core: the selectivity algebra's laws,
//! generator invariants over arbitrary schemas, and workload well-formedness.

use gmark_core::gen::{generate_into, GeneratorOptions};
use gmark_core::schema::{
    Distribution, GraphConfig, Occurrence, PredicateId, Schema, SchemaBuilder, TypeId,
};
use gmark_core::selectivity::{Card, SelOp, SelTriple};
use gmark_core::workload::{generate_workload, QuerySize, Shape, WorkloadConfig};
use gmark_store::{TypePartition, VecSink};
use proptest::prelude::*;

fn arb_card() -> impl Strategy<Value = Card> {
    prop_oneof![Just(Card::One), Just(Card::Many)]
}

fn arb_op() -> impl Strategy<Value = SelOp> {
    prop_oneof![
        Just(SelOp::Eq),
        Just(SelOp::Less),
        Just(SelOp::Greater),
        Just(SelOp::Diamond),
        Just(SelOp::Cross),
    ]
}

fn arb_triple() -> impl Strategy<Value = SelTriple> {
    (arb_card(), arb_op(), arb_card()).prop_map(|(l, o, r)| SelTriple::new(l, o, r))
}

proptest! {
    #[test]
    fn normalization_is_idempotent(l in arb_card(), o in arb_op(), r in arb_card()) {
        let raw = SelTriple { left: l, op: o, right: r };
        let once = raw.normalized();
        prop_assert_eq!(once, once.normalized());
        prop_assert!(once.is_permitted());
    }

    #[test]
    fn triple_inverse_is_involution(t in arb_triple()) {
        prop_assert_eq!(t.inverse().inverse(), t);
    }

    #[test]
    fn disjoin_laws(a in arb_op(), b in arb_op(), c in arb_op()) {
        // Commutative, associative, idempotent (a join-semilattice).
        prop_assert_eq!(a.disjoin(b), b.disjoin(a));
        prop_assert_eq!(a.disjoin(a), a);
        prop_assert_eq!(a.disjoin(b).disjoin(c), a.disjoin(b.disjoin(c)));
        // Eq is the identity, Cross absorbs.
        prop_assert_eq!(a.disjoin(SelOp::Eq), a);
        prop_assert_eq!(a.disjoin(SelOp::Cross), SelOp::Cross);
    }

    #[test]
    fn concat_laws(a in arb_op(), b in arb_op(), c in arb_op()) {
        // Associative monoid with identity Eq and absorbing Cross.
        prop_assert_eq!(a.concat(b).concat(c), a.concat(b.concat(c)));
        prop_assert_eq!(a.concat(SelOp::Eq), a);
        prop_assert_eq!(SelOp::Eq.concat(a), a);
        prop_assert_eq!(a.concat(SelOp::Cross), SelOp::Cross);
        prop_assert_eq!(SelOp::Cross.concat(a), SelOp::Cross);
    }

    #[test]
    fn alpha_is_bounded_by_arity(t in arb_triple()) {
        prop_assert!(t.alpha() <= 2);
    }

    #[test]
    fn disjoin_never_decreases_alpha_below_parts(a in arb_triple(), op in arb_op()) {
        // Disjoining with a same-endpoints triple keeps alpha >= each part
        // only for the Cross-absorbing direction; at minimum it stays a
        // permitted triple of the same endpoints.
        let b = SelTriple::new(a.left, op, a.right);
        let joined = a.disjoin(b);
        prop_assert_eq!(joined.left, a.left);
        prop_assert_eq!(joined.right, a.right);
        prop_assert!(joined.is_permitted());
    }
}

/// An arbitrary small-but-valid schema: 1–4 types, 1–3 predicates,
/// constraints with arbitrary distributions.
fn arb_schema() -> impl Strategy<Value = Schema> {
    let dist = prop_oneof![
        (0u64..3, 0u64..3).prop_map(|(a, b)| Distribution::uniform(a.min(b), a.max(b))),
        (0.5f64..6.0, 0.1f64..2.0).prop_map(|(mu, s)| Distribution::gaussian(mu, s)),
        (1.2f64..3.5).prop_map(Distribution::zipfian),
        Just(Distribution::NonSpecified),
    ];
    (
        1usize..=4,
        1usize..=3,
        prop::collection::vec((0usize..4, 0usize..3, 0usize..4, dist.clone(), dist), 1..6),
        prop::collection::vec(prop_oneof![Just(true), Just(false)], 4),
    )
        .prop_map(|(n_types, n_preds, raw_constraints, grows)| {
            let mut b = SchemaBuilder::new();
            for i in 0..n_types {
                let occ = if grows[i % grows.len()] {
                    Occurrence::Proportion(1.0 / n_types as f64)
                } else {
                    Occurrence::Fixed(5 + i as u64)
                };
                b.node_type(&format!("t{i}"), occ);
            }
            for i in 0..n_preds {
                b.predicate(&format!("p{i}"), Some(Occurrence::Proportion(0.5)));
            }
            for (s, p, t, din, dout) in raw_constraints {
                b.edge(
                    TypeId(s % n_types),
                    PredicateId(p % n_preds),
                    TypeId(t % n_types),
                    din,
                    dout,
                );
            }
            b.build().expect("constructed schemas are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generation_respects_constraint_typing(schema in arb_schema(), seed in any::<u64>()) {
        let cfg = GraphConfig::new(300, schema.clone());
        let mut sink = VecSink::default();
        let report = generate_into(&cfg, &GeneratorOptions::with_seed(seed), &mut sink);
        let partition = TypePartition::from_counts(&cfg.node_counts());
        prop_assert_eq!(report.total_edges as usize, sink.triples.len());
        for (s, p, t) in &sink.triples {
            let st = partition.type_of(*s);
            let tt = partition.type_of(*t);
            prop_assert!(
                schema.constraints().iter().any(|c| c.source.0 == st
                    && c.target.0 == tt
                    && c.predicate.0 == *p),
                "edge types ({st},{tt}) via predicate {p} match no constraint"
            );
        }
    }

    #[test]
    fn generation_is_pure_in_seed(schema in arb_schema(), seed in any::<u64>()) {
        let cfg = GraphConfig::new(200, schema);
        let mut a = VecSink::default();
        let mut b = VecSink::default();
        generate_into(&cfg, &GeneratorOptions::with_seed(seed), &mut a);
        generate_into(&cfg, &GeneratorOptions::with_seed(seed), &mut b);
        prop_assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn workloads_are_always_well_formed(
        schema in arb_schema(),
        seed in any::<u64>(),
        pr in 0.0f64..1.0,
        shape_idx in 0usize..4,
    ) {
        let mut cfg = WorkloadConfig::new(6).with_seed(seed);
        cfg.recursion_probability = pr;
        cfg.shapes = vec![Shape::ALL[shape_idx]];
        cfg.query_size = QuerySize { conjuncts: (1, 3), disjuncts: (1, 2), length: (1, 3) };
        let (workload, _) = generate_workload(&schema, &cfg).expect("workload generates");
        prop_assert_eq!(workload.queries.len(), 6);
        for gq in &workload.queries {
            for rule in &gq.query.rules {
                prop_assert!(rule.well_formed().is_ok());
                for c in &rule.body {
                    for s in c.expr.symbols() {
                        prop_assert!(s.predicate.0 < schema.predicate_count());
                    }
                }
            }
        }
    }

    #[test]
    fn workload_is_thread_count_invariant(
        schema in arb_schema(),
        seed in any::<u64>(),
        size in 1usize..12,
        pr in 0.0f64..1.0,
        threads in 2usize..6,
    ) {
        // Same (config, seed) ⇒ identical Workload and WorkloadReport at
        // every thread count: query i is a pure function of
        // (schema, config, i), independent of scheduling.
        let mut cfg = WorkloadConfig::new(size).with_seed(seed);
        cfg.recursion_probability = pr;
        cfg.shapes = Shape::ALL.to_vec();
        let (seq, seq_report) = gmark_core::workload::generate_workload_with_threads(
            &schema, &cfg, 1,
        ).expect("workload generates");
        let (par, par_report) = gmark_core::workload::generate_workload_with_threads(
            &schema, &cfg, threads,
        ).expect("workload generates");
        prop_assert_eq!(seq_report, par_report);
        prop_assert_eq!(seq.queries.len(), par.queries.len());
        for (a, b) in seq.queries.iter().zip(&par.queries) {
            prop_assert_eq!(&a.query, &b.query);
            prop_assert_eq!(a.shape, b.shape);
            prop_assert_eq!(a.target, b.target);
            prop_assert_eq!(a.relaxations, b.relaxations);
        }
    }

    #[test]
    fn estimated_alpha_matches_declared_target(schema in arb_schema(), seed in any::<u64>()) {
        let cfg = WorkloadConfig::new(6).with_seed(seed);
        let (workload, _) = generate_workload(&schema, &cfg).expect("workload generates");
        let est = gmark_core::selectivity::Estimator::new(&schema);
        for gq in &workload.queries {
            // The generator statically verifies non-recursive chains (and
            // records `target` only when honored); recursive rules keep the
            // paper's typing-level guarantee and are exempt here.
            if gq.query.is_recursive() {
                continue;
            }
            if let Some(target) = gq.target {
                if let Some(alpha) = est.alpha(&gq.query) {
                    prop_assert_eq!(
                        alpha,
                        target.alpha(),
                        "estimator {} vs target {} on {}",
                        alpha,
                        target.alpha(),
                        gq.query.display(&schema)
                    );
                }
            }
        }
    }
}
