//! The constructive NP-hardness reduction of Theorem 3.6.
//!
//! The paper proves that deciding whether a graph satisfying a given graph
//! configuration exists is NP-complete, by reduction from SAT-1-in-3: given
//! a 3CNF formula `ϕ = C1 ∧ … ∧ Ck` over variables `x1 … xn`, it builds a
//! configuration `Gϕ` with `2n + k + 1` nodes such that `ϕ` has a valuation
//! satisfying *exactly one* literal per clause iff some graph satisfies
//! `Gϕ`. Since the proof is constructive, this module makes it executable:
//! [`reduce`] produces the configuration, [`graph_for_valuation`] builds the
//! candidate graph a valuation induces (cf. Fig. 4), and
//! [`Reduction::admits`] checks the configuration's constraints — so the
//! iff of the theorem can be tested by enumeration on small formulas.
//!
//! The reduction uses occurrence constraints of a kind the heuristic
//! generator deliberately relaxes (that is the point of Theorem 3.6:
//! exact satisfaction is intractable), so it is modeled directly on node
//! multisets rather than through the [`crate::gen`] pipeline.

use std::collections::BTreeMap;

/// A literal `x_i` or `¬x_i` (variables are 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// Variable index.
    pub var: usize,
    /// `true` for a positive literal.
    pub positive: bool,
}

/// A 3CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf3 {
    /// Number of variables `n`.
    pub vars: usize,
    /// The clauses, three literals each.
    pub clauses: Vec<[Literal; 3]>,
}

impl Cnf3 {
    /// Whether `valuation` satisfies exactly one literal of every clause
    /// (the SAT-1-in-3 acceptance condition).
    pub fn one_in_three(&self, valuation: &[bool]) -> bool {
        assert_eq!(valuation.len(), self.vars);
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .filter(|l| valuation[l.var] == l.positive)
                .count()
                == 1
        })
    }

    /// Enumerates all valuations, returning one satisfying SAT-1-in-3 if any.
    pub fn solve_one_in_three(&self) -> Option<Vec<bool>> {
        assert!(self.vars < 24, "enumeration only for small formulas");
        (0u32..(1 << self.vars))
            .map(|bits| {
                (0..self.vars)
                    .map(|i| bits & (1 << i) != 0)
                    .collect::<Vec<bool>>()
            })
            .find(|v| self.one_in_three(v))
    }
}

/// Node types of the reduction (Θϕ of the proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeType {
    /// The unique root node `A`.
    A,
    /// Clause node `C_l`.
    C(usize),
    /// Variable-consumption node `B_i`.
    B(usize),
    /// Positive-valuation node `T_i`.
    T(usize),
    /// Negative-valuation node `F_i`.
    F(usize),
}

/// Edge predicates of the reduction (Σϕ of the proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pred {
    /// `t_i`: A chooses `x_i = true`.
    T(usize),
    /// `f_i`: A chooses `x_i = false`.
    F(usize),
    /// `b_i`: the chosen valuation node consumes `B_i`.
    B(usize),
    /// `c_l`: the chosen valuation node satisfies clause `C_l`.
    C(usize),
}

/// The `η` macros used by the proof (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Macro {
    /// `1`: exactly one outgoing edge per source node.
    ExactlyOne,
    /// `?`: at most one outgoing edge per source node.
    AtMostOne,
}

/// The graph configuration `Gϕ` produced by the reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    formula: Cnf3,
    /// Required total node count: `2n + k + 1`.
    pub node_budget: usize,
    /// Types with a fixed occurrence constraint of exactly one node:
    /// `A`, all `B_i`, all `C_l`.
    pub fixed_one: Vec<NodeType>,
    /// The `ηϕ` entries: `(source type, predicate, target type, macro)`.
    pub eta: Vec<(NodeType, Pred, NodeType, Macro)>,
}

/// Builds `Gϕ` from `ϕ` exactly as in the proof of Theorem 3.6.
pub fn reduce(phi: &Cnf3) -> Reduction {
    let n = phi.vars;
    let k = phi.clauses.len();
    let mut fixed_one = vec![NodeType::A];
    fixed_one.extend((0..n).map(NodeType::B));
    fixed_one.extend((0..k).map(NodeType::C));

    let mut eta = Vec::new();
    // η(A, T_i, t_i) = η(A, F_i, f_i) = "?"
    for i in 0..n {
        eta.push((NodeType::A, Pred::T(i), NodeType::T(i), Macro::AtMostOne));
        eta.push((NodeType::A, Pred::F(i), NodeType::F(i), Macro::AtMostOne));
    }
    // η(T_i, C_l, c_l) = 1 for clauses where x_i occurs positively;
    // η(F_i, C_l, c_l) = 1 for clauses where x_i occurs negatively;
    // η(T_i, B_i, b_i) = η(F_i, B_i, b_i) = 1.
    for i in 0..n {
        for (l, clause) in phi.clauses.iter().enumerate() {
            for lit in clause {
                if lit.var == i {
                    let src = if lit.positive {
                        NodeType::T(i)
                    } else {
                        NodeType::F(i)
                    };
                    eta.push((src, Pred::C(l), NodeType::C(l), Macro::ExactlyOne));
                }
            }
        }
        eta.push((
            NodeType::T(i),
            Pred::B(i),
            NodeType::B(i),
            Macro::ExactlyOne,
        ));
        eta.push((
            NodeType::F(i),
            Pred::B(i),
            NodeType::B(i),
            Macro::ExactlyOne,
        ));
    }
    Reduction {
        formula: phi.clone(),
        node_budget: 2 * n + k + 1,
        fixed_one,
        eta,
    }
}

/// A candidate graph for the reduction: node multiset + typed edges.
#[derive(Debug, Clone, Default)]
pub struct CandidateGraph {
    /// How many nodes of each type are present.
    pub nodes: BTreeMap<NodeType, usize>,
    /// Edges `(source type, predicate, target type)` — one node per present
    /// type suffices for this construction, so type-level edges are enough.
    pub edges: Vec<(NodeType, Pred, NodeType)>,
}

/// Builds the graph a valuation induces (the "only if" direction of the
/// proof; Fig. 4 shows it for ϕ0 with `x1, x2 ↦ true`, `x3, x4 ↦ false`).
pub fn graph_for_valuation(phi: &Cnf3, valuation: &[bool]) -> CandidateGraph {
    assert_eq!(valuation.len(), phi.vars);
    let mut g = CandidateGraph::default();
    g.nodes.insert(NodeType::A, 1);
    for (l, _) in phi.clauses.iter().enumerate() {
        g.nodes.insert(NodeType::C(l), 1);
    }
    for (i, &value) in valuation.iter().enumerate() {
        g.nodes.insert(NodeType::B(i), 1);
        let chosen = if value {
            NodeType::T(i)
        } else {
            NodeType::F(i)
        };
        g.nodes.insert(chosen, 1);
        // A --t_i/f_i--> chosen valuation node.
        let pred = if value { Pred::T(i) } else { Pred::F(i) };
        g.edges.push((NodeType::A, pred, chosen));
        // chosen --b_i--> B_i.
        g.edges.push((chosen, Pred::B(i), NodeType::B(i)));
        // chosen --c_l--> C_l for every clause the chosen literal satisfies.
        for (l, clause) in phi.clauses.iter().enumerate() {
            for lit in clause {
                if lit.var == i && lit.positive == value {
                    g.edges.push((chosen, Pred::C(l), NodeType::C(l)));
                }
            }
        }
    }
    g
}

impl Reduction {
    /// Checks whether a candidate graph satisfies the configuration `Gϕ`:
    /// node budget, fixed occurrence constraints, and all `ηϕ` entries
    /// (each `1`-macro source must have exactly one such outgoing edge,
    /// each `?`-macro source at most one, and no edges outside `ηϕ`).
    pub fn admits(&self, g: &CandidateGraph) -> bool {
        // Node budget.
        if g.nodes.values().sum::<usize>() != self.node_budget {
            return false;
        }
        // Fixed-one types.
        for t in &self.fixed_one {
            if g.nodes.get(t).copied().unwrap_or(0) != 1 {
                return false;
            }
        }
        // Every edge must be licensed by some η entry.
        for &(s, p, t) in &g.edges {
            if !self
                .eta
                .iter()
                .any(|&(es, ep, et, _)| es == s && ep == p && et == t)
            {
                return false;
            }
        }
        // Per-entry out-degree constraints over present source nodes.
        for &(s, p, t, m) in &self.eta {
            let present = g.nodes.get(&s).copied().unwrap_or(0);
            if present == 0 {
                continue;
            }
            let count = g
                .edges
                .iter()
                .filter(|&&(es, ep, et)| es == s && ep == p && et == t)
                .count();
            match m {
                Macro::ExactlyOne => {
                    if count != present {
                        return false;
                    }
                }
                Macro::AtMostOne => {
                    if count > present {
                        return false;
                    }
                }
            }
        }
        // In the intended reading, each present C_l / B_i node must actually
        // be "used": the total node budget forces exactly one T_i/F_i per
        // variable, and the C_l count constraint (one node) is what encodes
        // "exactly one literal per clause". Check the incoming-edge side:
        // each clause node receives exactly one c_l edge, each B_i exactly
        // one b_i edge.
        for (l, _) in self.formula.clauses.iter().enumerate() {
            let incoming = g
                .edges
                .iter()
                .filter(|&&(_, p, t)| p == Pred::C(l) && t == NodeType::C(l))
                .count();
            if incoming != 1 {
                return false;
            }
        }
        for i in 0..self.formula.vars {
            let incoming = g
                .edges
                .iter()
                .filter(|&&(_, p, t)| p == Pred::B(i) && t == NodeType::B(i))
                .count();
            if incoming != 1 {
                return false;
            }
        }
        true
    }

    /// Whether some valuation-induced graph satisfies the configuration
    /// (exhaustive over valuations; small formulas only).
    pub fn satisfiable(&self) -> Option<Vec<bool>> {
        assert!(self.formula.vars < 24);
        (0u32..(1 << self.formula.vars))
            .map(|bits| {
                (0..self.formula.vars)
                    .map(|i| bits & (1 << i) != 0)
                    .collect::<Vec<bool>>()
            })
            .find(|v| self.admits(&graph_for_valuation(&self.formula, v)))
    }
}

/// The paper's example formula
/// `ϕ0 = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4)` — recovered from the proof's
/// η-listing, which contains `η(F2, C1, c1)` (so `x2` occurs negatively in
/// clause 1) alongside `η(T1, C1, c1)` and `η(T3, C1, c1)`.
pub fn phi_zero() -> Cnf3 {
    let lit = |var: usize, positive: bool| Literal { var, positive };
    Cnf3 {
        vars: 4,
        clauses: vec![
            [lit(0, true), lit(1, false), lit(2, true)],
            [lit(0, false), lit(2, true), lit(3, false)],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_zero_fig_4_valuation_admits() {
        // x1, x2 true; x3, x4 false — the Fig. 4 witness.
        let phi = phi_zero();
        let val = vec![true, true, false, false];
        assert!(phi.one_in_three(&val));
        let red = reduce(&phi);
        let g = graph_for_valuation(&phi, &val);
        assert!(red.admits(&g));
        // Node budget 2n + k + 1 = 8 + 2 + 1 = 11.
        assert_eq!(red.node_budget, 11);
        assert_eq!(g.nodes.values().sum::<usize>(), 11);
    }

    #[test]
    fn phi_zero_bad_valuation_rejected() {
        let phi = phi_zero();
        // x1, x2, x3 all true satisfies two literals of clause 1.
        let val = vec![true, true, true, false];
        assert!(!phi.one_in_three(&val));
        let red = reduce(&phi);
        assert!(!red.admits(&graph_for_valuation(&phi, &val)));
    }

    #[test]
    fn reduction_iff_on_small_formulas() {
        // Theorem 3.6 (both directions) checked by enumeration on a family
        // of small formulas, including unsatisfiable ones.
        let lit = |var: usize, positive: bool| Literal { var, positive };
        let cases = vec![
            phi_zero(),
            // x1 ∨ x1 ∨ x1 — satisfiable 1-in-3 only with x1 = ... never:
            // exactly one of three identical true literals is impossible
            // unless x1 true makes all three true. So unsatisfiable.
            Cnf3 {
                vars: 1,
                clauses: vec![[lit(0, true), lit(0, true), lit(0, true)]],
            },
            // (x1 ∨ x2 ∨ x3) alone: satisfiable.
            Cnf3 {
                vars: 3,
                clauses: vec![[lit(0, true), lit(1, true), lit(2, true)]],
            },
            // (x1 ∨ x1 ∨ ¬x1): exactly one literal true whatever x1 is?
            // x1=true: two true; x1=false: one true (¬x1). Satisfiable.
            Cnf3 {
                vars: 1,
                clauses: vec![[lit(0, true), lit(0, true), lit(0, false)]],
            },
            // (x1∨x2∨x3) ∧ (¬x1∨¬x2∨¬x3): needs exactly one true and
            // exactly one false among the negations = exactly two true.
            // Contradiction — unsatisfiable.
            Cnf3 {
                vars: 3,
                clauses: vec![
                    [lit(0, true), lit(1, true), lit(2, true)],
                    [lit(0, false), lit(1, false), lit(2, false)],
                ],
            },
        ];
        for phi in cases {
            let red = reduce(&phi);
            let direct = phi.solve_one_in_three();
            let via_config = red.satisfiable();
            assert_eq!(
                direct.is_some(),
                via_config.is_some(),
                "iff fails for {phi:?}"
            );
            if let Some(v) = via_config {
                assert!(phi.one_in_three(&v), "config witness must be 1-in-3");
            }
        }
    }

    #[test]
    fn eta_structure_matches_proof() {
        let phi = phi_zero();
        let red = reduce(&phi);
        // 2n "?" entries from A.
        let from_a = red
            .eta
            .iter()
            .filter(|&&(s, _, _, m)| s == NodeType::A && m == Macro::AtMostOne);
        assert_eq!(from_a.count(), 8);
        // For ϕ0 the proof lists 14 "1"-entries:
        // t/f-per-variable picks + clause memberships (see the illustration
        // after the proof).
        let ones = red
            .eta
            .iter()
            .filter(|&&(_, _, _, m)| m == Macro::ExactlyOne)
            .count();
        assert_eq!(ones, 14);
        // Example entries: η(T1, C1, c1) = 1 and η(F1, C2, c2) = 1.
        assert!(red.eta.contains(&(
            NodeType::T(0),
            Pred::C(0),
            NodeType::C(0),
            Macro::ExactlyOne
        )));
        assert!(red.eta.contains(&(
            NodeType::F(0),
            Pred::C(1),
            NodeType::C(1),
            Macro::ExactlyOne
        )));
    }
}
