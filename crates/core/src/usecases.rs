//! The four evaluation scenarios of Section 6.1.
//!
//! * [`bib`] — the default bibliographical scenario of the motivating
//!   example (Section 3.1, Fig. 2): researchers author papers published in
//!   conferences held in cities, papers optionally extended to journals.
//! * [`lsn`] — the gMark encoding of the LDBC Social Network Benchmark
//!   schema: user activity in a social network.
//! * [`sp`] — the gMark encoding of the DBLP-based SP²Bench schema.
//! * [`wd`] — the gMark encoding of the WatDiv default schema (users and
//!   products). WD is deliberately much denser than the other scenarios —
//!   the paper observes WD instances carry about two orders of magnitude
//!   more edges than Bib instances of the same node count, which dominates
//!   its generation time in Table 3.
//!
//! As DESIGN.md documents, these encodings capture each benchmark's key
//! characteristics (node types, edge labels, associations, degree
//! distributions); features gMark deliberately does not support (subtyping,
//! hard-coded correlations) are not encoded, exactly as in the paper.

use crate::schema::{Distribution, Occurrence, Schema, SchemaBuilder};

/// The default bibliographical use case (Fig. 2).
///
/// Node types: `researcher` 50%, `paper` 30%, `journal` 10%, `conference`
/// 10%, `city` fixed at 100. Degree distributions follow Fig. 2(c):
/// the number of authors per paper is Gaussian while papers per researcher
/// is Zipfian; each paper appears in exactly one conference; a paper may be
/// extended to a journal; each conference is held in exactly one city with
/// a Zipfian number of conferences per city.
pub fn bib() -> Schema {
    let mut b = SchemaBuilder::new();
    let researcher = b.node_type("researcher", Occurrence::Proportion(0.5));
    let paper = b.node_type("paper", Occurrence::Proportion(0.3));
    let journal = b.node_type("journal", Occurrence::Proportion(0.1));
    let conference = b.node_type("conference", Occurrence::Proportion(0.1));
    let city = b.node_type("city", Occurrence::Fixed(100));

    let authors = b.predicate("authors", Some(Occurrence::Proportion(0.5)));
    let published_in = b.predicate("publishedIn", Some(Occurrence::Proportion(0.3)));
    let held_in = b.predicate("heldIn", Some(Occurrence::Proportion(0.1)));
    let extended_to = b.predicate("extendedTo", Some(Occurrence::Proportion(0.1)));

    // researcher --authors--> paper: in Gaussian, out Zipfian.
    b.edge(
        researcher,
        authors,
        paper,
        Distribution::gaussian(3.0, 1.0),
        Distribution::zipfian(2.5),
    );
    // paper --publishedIn--> conference: in Gaussian, out uniform [1,1].
    b.edge(
        paper,
        published_in,
        conference,
        Distribution::gaussian(3.0, 1.0),
        Distribution::uniform(1, 1),
    );
    // paper --extendedTo--> journal: in Gaussian, out uniform [0,1].
    b.edge(
        paper,
        extended_to,
        journal,
        Distribution::gaussian(2.0, 1.0),
        Distribution::uniform(0, 1),
    );
    // conference --heldIn--> city: in Zipfian, out uniform [1,1].
    b.edge(
        conference,
        held_in,
        city,
        Distribution::zipfian(2.5),
        Distribution::uniform(1, 1),
    );

    b.build().expect("bib schema is well-formed")
}

/// The LDBC Social Network encoding (`LSN`).
///
/// Persons know each other along power-law in- and out-distributions — the
/// paper's canonical quadratic-selectivity example (the transitive closure
/// of `knows` is quadratic, Section 5.2.1). Content (posts, comments) hangs
/// off persons and forums; tags, cities, companies, and universities are
/// fixed-size dimension types enabling constant-selectivity queries.
pub fn lsn() -> Schema {
    let mut b = SchemaBuilder::new();
    let person = b.node_type("person", Occurrence::Proportion(0.3));
    let forum = b.node_type("forum", Occurrence::Proportion(0.1));
    let post = b.node_type("post", Occurrence::Proportion(0.35));
    let comment = b.node_type("comment", Occurrence::Proportion(0.25));
    let tag = b.node_type("tag", Occurrence::Fixed(100));
    let city = b.node_type("city", Occurrence::Fixed(50));
    let company = b.node_type("company", Occurrence::Fixed(30));
    let university = b.node_type("university", Occurrence::Fixed(20));

    let knows = b.predicate("knows", None);
    let has_interest = b.predicate("hasInterest", None);
    let has_moderator = b.predicate("hasModerator", None);
    let container_of = b.predicate("containerOf", None);
    let has_creator = b.predicate("hasCreator", None);
    let likes = b.predicate("likes", None);
    let reply_of = b.predicate("replyOf", None);
    let is_located_in = b.predicate("isLocatedIn", None);
    let study_at = b.predicate("studyAt", None);
    let work_at = b.predicate("workAt", None);
    let has_tag = b.predicate("hasTag", None);

    // The social graph: power law both ways.
    b.edge(
        person,
        knows,
        person,
        Distribution::zipfian(2.5),
        Distribution::zipfian(2.5),
    );
    b.edge(
        person,
        has_interest,
        tag,
        Distribution::zipfian(2.0),
        Distribution::gaussian(5.0, 2.0),
    );
    b.edge(
        forum,
        has_moderator,
        person,
        Distribution::NonSpecified,
        Distribution::uniform(1, 1),
    );
    // Each post lives in exactly one forum; forum sizes are power-law.
    b.edge(
        forum,
        container_of,
        post,
        Distribution::uniform(1, 1),
        Distribution::zipfian(2.0),
    );
    b.edge(
        post,
        has_creator,
        person,
        Distribution::zipfian(2.0),
        Distribution::uniform(1, 1),
    );
    b.edge(
        comment,
        has_creator,
        person,
        Distribution::zipfian(2.0),
        Distribution::uniform(1, 1),
    );
    b.edge(
        person,
        likes,
        post,
        Distribution::zipfian(2.0),
        Distribution::gaussian(10.0, 5.0),
    );
    b.edge(
        comment,
        reply_of,
        post,
        Distribution::zipfian(2.0),
        Distribution::uniform(1, 1),
    );
    b.edge(
        person,
        is_located_in,
        city,
        Distribution::NonSpecified,
        Distribution::uniform(1, 1),
    );
    b.edge(
        person,
        study_at,
        university,
        Distribution::NonSpecified,
        Distribution::uniform(0, 1),
    );
    b.edge(
        person,
        work_at,
        company,
        Distribution::NonSpecified,
        Distribution::uniform(0, 1),
    );
    b.edge(
        post,
        has_tag,
        tag,
        Distribution::zipfian(2.0),
        Distribution::gaussian(2.0, 1.0),
    );

    b.build().expect("lsn schema is well-formed")
}

/// The SP²Bench/DBLP encoding (`SP`).
///
/// Articles and inproceedings with Zipfian authorship (prolific authors),
/// exactly-one venue membership, editorship, and a power-law citation
/// graph. `journal` is modeled as a fixed-size type (100 journals) so the
/// scenario exposes constant-selectivity queries, mirroring the fixed
/// document-class structure of DBLP.
pub fn sp() -> Schema {
    let mut b = SchemaBuilder::new();
    let person = b.node_type("person", Occurrence::Proportion(0.3));
    let article = b.node_type("article", Occurrence::Proportion(0.3));
    let inproceedings = b.node_type("inproceedings", Occurrence::Proportion(0.25));
    let proceedings = b.node_type("proceedings", Occurrence::Proportion(0.15));
    let journal = b.node_type("journal", Occurrence::Fixed(100));

    let creator = b.predicate("creator", None);
    let cites = b.predicate("cites", None);
    let part_of = b.predicate("partOf", None);
    let booktitle = b.predicate("booktitle", None);
    let editor = b.predicate("editor", None);

    // article --creator--> person: ~3 authors per paper, Zipfian output
    // per person (prolific authors).
    b.edge(
        article,
        creator,
        person,
        Distribution::zipfian(2.0),
        Distribution::gaussian(3.0, 1.0),
    );
    b.edge(
        inproceedings,
        creator,
        person,
        Distribution::zipfian(2.0),
        Distribution::gaussian(3.0, 1.0),
    );
    // Citation graph: power law in both directions.
    b.edge(
        article,
        cites,
        article,
        Distribution::zipfian(2.0),
        Distribution::zipfian(2.5),
    );
    // Venue membership: exactly one venue per paper.
    b.edge(
        article,
        part_of,
        journal,
        Distribution::gaussian(25.0, 10.0),
        Distribution::uniform(1, 1),
    );
    b.edge(
        inproceedings,
        booktitle,
        proceedings,
        Distribution::gaussian(30.0, 10.0),
        Distribution::uniform(1, 1),
    );
    // proceedings --editor--> person.
    b.edge(
        proceedings,
        editor,
        person,
        Distribution::zipfian(2.5),
        Distribution::gaussian(2.0, 1.0),
    );

    b.build().expect("sp schema is well-formed")
}

/// The WatDiv default-schema encoding (`WD`): users and products.
///
/// Substantially denser than the other scenarios (high-mean Gaussian
/// out-degrees on `likes`, `friendOf`, and `purchases`), reproducing the
/// paper's observation that WD generation is dominated by edge volume
/// (Table 3) and that WD instances carry orders of magnitude more edges
/// than Bib at equal node counts.
pub fn wd() -> Schema {
    let mut b = SchemaBuilder::new();
    let user = b.node_type("user", Occurrence::Proportion(0.4));
    let product = b.node_type("product", Occurrence::Proportion(0.3));
    let review = b.node_type("review", Occurrence::Proportion(0.3));
    let retailer = b.node_type("retailer", Occurrence::Fixed(50));
    let genre = b.node_type("genre", Occurrence::Fixed(25));
    let city = b.node_type("city", Occurrence::Fixed(100));

    let follows = b.predicate("follows", None);
    let friend_of = b.predicate("friendOf", None);
    let likes = b.predicate("likes", None);
    let purchases = b.predicate("purchases", None);
    let makes_review = b.predicate("makesReview", None);
    let reviews_product = b.predicate("reviewsProduct", None);
    let has_genre = b.predicate("hasGenre", None);
    let sells = b.predicate("sells", None);
    let located_in = b.predicate("locatedIn", None);

    // Dense social layer.
    b.edge(
        user,
        follows,
        user,
        Distribution::zipfian(1.8),
        Distribution::zipfian(1.8),
    );
    b.edge(
        user,
        friend_of,
        user,
        Distribution::gaussian(40.0, 10.0),
        Distribution::gaussian(40.0, 10.0),
    );
    // Dense engagement layer. The in-side is left non-specified so the
    // high-mean out-degrees are fully realized (the source of WD's
    // order-of-magnitude edge-density gap vs. Bib).
    b.edge(
        user,
        likes,
        product,
        Distribution::NonSpecified,
        Distribution::gaussian(60.0, 20.0),
    );
    b.edge(
        user,
        purchases,
        product,
        Distribution::NonSpecified,
        Distribution::gaussian(30.0, 10.0),
    );
    // Reviews: one author per review, one product per review.
    b.edge(
        user,
        makes_review,
        review,
        Distribution::uniform(1, 1),
        Distribution::zipfian(2.0),
    );
    b.edge(
        review,
        reviews_product,
        product,
        Distribution::zipfian(2.0),
        Distribution::uniform(1, 1),
    );
    // Dimensions.
    b.edge(
        product,
        has_genre,
        genre,
        Distribution::NonSpecified,
        Distribution::gaussian(2.0, 1.0),
    );
    b.edge(
        retailer,
        sells,
        product,
        Distribution::gaussian(2.0, 1.0),
        Distribution::NonSpecified,
    );
    b.edge(
        user,
        located_in,
        city,
        Distribution::NonSpecified,
        Distribution::uniform(1, 1),
    );

    b.build().expect("wd schema is well-formed")
}

/// Looks up a use case by its paper name (`bib`, `lsn`, `sp`, `wd`).
pub fn by_name(name: &str) -> Option<Schema> {
    match name.to_ascii_lowercase().as_str() {
        "bib" => Some(bib()),
        "lsn" => Some(lsn()),
        "sp" => Some(sp()),
        "wd" => Some(wd()),
        _ => None,
    }
}

/// All use cases with their paper names, in the paper's order.
pub fn all() -> Vec<(&'static str, Schema)> {
    vec![("Bib", bib()), ("LSN", lsn()), ("SP", sp()), ("WD", wd())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_graph, GeneratorOptions};
    use crate::schema::GraphConfig;
    use crate::selectivity::graph::{ChainSampler, SchemaGraph, SelectivityGraph};
    use crate::selectivity::SelectivityClass;
    use crate::workload::{generate_workload, WorkloadConfig};

    #[test]
    fn bib_matches_fig_2() {
        let s = bib();
        // 5 node types and 4 edge predicates (Section 3.1).
        assert_eq!(s.type_count(), 5);
        assert_eq!(s.predicate_count(), 4);
        // city is the fixed type (100 nodes).
        let city = s.type_by_name("city").unwrap();
        assert_eq!(s.type_constraint(city), Occurrence::Fixed(100));
        assert!(!s.type_grows(city));
        // researcher is 50% of nodes.
        let researcher = s.type_by_name("researcher").unwrap();
        assert_eq!(s.type_constraint(researcher), Occurrence::Proportion(0.5));
    }

    #[test]
    fn all_usecases_build_and_have_fixed_types() {
        for (name, schema) in all() {
            assert!(schema.type_count() >= 5, "{name} too small");
            assert!(
                schema.types().any(|t| !schema.type_grows(t)),
                "{name} needs a fixed type for constant-selectivity queries"
            );
            assert!(
                schema.types().any(|t| schema.type_grows(t)),
                "{name} needs growing types"
            );
        }
    }

    #[test]
    fn all_usecases_generate_graphs() {
        for (name, schema) in all() {
            let cfg = GraphConfig::new(2_000, schema);
            let (g, report) = generate_graph(&cfg, &GeneratorOptions::with_seed(42));
            assert!(
                g.node_count() >= 1_900,
                "{name}: node count {}",
                g.node_count()
            );
            assert!(report.total_edges > 0, "{name}: no edges");
        }
    }

    #[test]
    fn wd_is_much_denser_than_bib() {
        let n = 2_000;
        let (g_bib, _) =
            generate_graph(&GraphConfig::new(n, bib()), &GeneratorOptions::with_seed(1));
        let (g_wd, _) = generate_graph(&GraphConfig::new(n, wd()), &GeneratorOptions::with_seed(1));
        let bib_density = g_bib.edge_count() as f64 / n as f64;
        let wd_density = g_wd.edge_count() as f64 / n as f64;
        assert!(
            wd_density > 20.0 * bib_density,
            "WD should dwarf Bib in density: {wd_density:.1} vs {bib_density:.1}"
        );
    }

    #[test]
    fn every_usecase_reaches_all_selectivity_classes() {
        // Table 2 requires constant, linear AND quadratic queries on each
        // scenario; verify the selectivity machinery finds typings.
        for (name, schema) in all() {
            let gs = SchemaGraph::build(&schema);
            let gsel = SelectivityGraph::build(&gs, 1, 4);
            for class in SelectivityClass::ALL {
                let sampler = ChainSampler::new(&gs, &gsel, class, 3);
                let feasible = (1..=3).any(|l| sampler.feasible(l) > 0.0);
                assert!(feasible, "{name} cannot produce {class} chains");
            }
        }
    }

    #[test]
    fn workloads_generate_for_each_usecase() {
        for (name, schema) in all() {
            let cfg = WorkloadConfig::new(12).with_seed(7);
            let (w, report) = generate_workload(&schema, &cfg).expect("workload generates");
            assert_eq!(w.queries.len(), 12, "{name}");
            assert_eq!(
                report.unsatisfied_selectivity, 0,
                "{name}: all selectivity targets should be reachable"
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("bib").is_some());
        assert!(by_name("LSN").is_some());
        assert!(by_name("nope").is_none());
    }
}
