//! Schema extraction from an existing graph instance.
//!
//! The paper's concluding remarks envision "the query workload generation in
//! gMark applied to real graph data sets on top of which a schema extraction
//! tool has been run beforehand". This module is that tool for gMark's own
//! graph model: given a typed graph, it recovers a [`GraphConfig`] —
//! occurrence constraints per type and fitted degree distributions per
//! `(source type, predicate, target type)` — which can then drive
//! [`crate::workload::generate_workload`] or regenerate similar synthetic
//! graphs.
//!
//! Distribution fitting is a heuristic classifier (uniform / Gaussian /
//! Zipfian) based on moments: a point mass or a flat, narrow histogram is
//! uniform; a heavy right tail (high coefficient of variation with a
//! max ≫ mean) is Zipfian with a Hill-style exponent estimate; anything
//! else is Gaussian.

use crate::schema::{Distribution, GraphConfig, Occurrence, SchemaBuilder};
use gmark_store::Graph;

/// Options for [`extract_config`].
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Types whose node count is at most this many nodes — or at most
    /// `fixed_fraction` of the graph — are given `Fixed` occurrence
    /// constraints (they "do not grow with the graph").
    pub fixed_threshold: u64,
    /// See `fixed_threshold`.
    pub fixed_fraction: f64,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            fixed_threshold: 128,
            fixed_fraction: 0.01,
        }
    }
}

/// Extracts a graph configuration from a typed graph instance.
///
/// `type_names` and `predicate_names` give the vocabulary (lengths must
/// match the graph's partition and predicate count).
pub fn extract_config(
    graph: &Graph,
    type_names: &[String],
    predicate_names: &[String],
    opts: &ExtractOptions,
) -> GraphConfig {
    let partition = graph.partition();
    assert_eq!(
        type_names.len(),
        partition.type_count(),
        "type name count mismatch"
    );
    assert_eq!(
        predicate_names.len(),
        graph.predicate_count(),
        "predicate name count mismatch"
    );
    let n = graph.node_count() as u64;
    let mut b = SchemaBuilder::new();
    let mut type_ids = Vec::with_capacity(type_names.len());
    for (t, name) in type_names.iter().enumerate() {
        let count = partition.count(t) as u64;
        let occ = if count <= opts.fixed_threshold
            || (n > 0 && (count as f64 / n as f64) <= opts.fixed_fraction)
        {
            Occurrence::Fixed(count)
        } else {
            Occurrence::Proportion((count as f64 / n.max(1) as f64).clamp(1e-9, 1.0))
        };
        type_ids.push(b.node_type(name, occ));
    }
    let mut pred_ids = Vec::with_capacity(predicate_names.len());
    for name in predicate_names {
        pred_ids.push(b.predicate(name, None));
    }

    // Split each predicate's edges by (source type, target type) and fit
    // degree distributions on each block.
    #[allow(clippy::needless_range_loop)]
    for pred in 0..graph.predicate_count() {
        use std::collections::BTreeMap;
        let mut blocks: BTreeMap<(usize, usize), Vec<(u32, u32)>> = BTreeMap::new();
        for (s, t) in graph.edges(pred) {
            let st = partition.type_of(s);
            let tt = partition.type_of(t);
            blocks.entry((st, tt)).or_default().push((s, t));
        }
        for ((st, tt), edges) in blocks {
            let n_src = partition.count(st) as usize;
            let n_trg = partition.count(tt) as usize;
            let mut out_deg = vec![0usize; n_src];
            let mut in_deg = vec![0usize; n_trg];
            let src_base = partition.range(st).start;
            let trg_base = partition.range(tt).start;
            for (s, t) in edges {
                out_deg[(s - src_base) as usize] += 1;
                in_deg[(t - trg_base) as usize] += 1;
            }
            let dout = classify_degrees(&out_deg);
            let din = classify_degrees(&in_deg);
            b.edge(type_ids[st], pred_ids[pred], type_ids[tt], din, dout);
        }
    }
    GraphConfig::new(n, b.build().expect("extracted schema is well-formed"))
}

/// Classifies a degree sequence as uniform, Gaussian, or Zipfian.
pub fn classify_degrees(degrees: &[usize]) -> Distribution {
    if degrees.is_empty() {
        return Distribution::NonSpecified;
    }
    let min = *degrees.iter().min().expect("non-empty") as u64;
    let max = *degrees.iter().max().expect("non-empty") as u64;
    if min == max {
        return Distribution::uniform(min, max);
    }
    let n = degrees.len() as f64;
    let mean = degrees.iter().sum::<usize>() as f64 / n;
    let var = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    let cv = if mean > 0.0 { sd / mean } else { f64::INFINITY };

    // Heavy right tail ⇒ Zipfian. A Zipf degree sequence has its maximum
    // far above its mean and a large coefficient of variation.
    if cv > 1.5 && (max as f64) > 8.0 * mean.max(1.0) {
        return Distribution::zipfian(estimate_zipf_exponent(degrees));
    }

    // Flat narrow histogram ⇒ uniform: variance matches the discrete
    // uniform variance ((w² - 1) / 12 for width w) within 30%.
    let w = (max - min + 1) as f64;
    let uniform_var = (w * w - 1.0) / 12.0;
    if uniform_var > 0.0 && (var - uniform_var).abs() / uniform_var < 0.3 {
        return Distribution::uniform(min, max);
    }

    Distribution::gaussian(mean, sd)
}

/// Hill-style estimate of the Zipf exponent from the upper tail of the
/// degree sequence, clamped to a practical range.
fn estimate_zipf_exponent(degrees: &[usize]) -> f64 {
    let mut tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= 1)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 4 {
        return 2.5;
    }
    tail.sort_by(|a, b| b.partial_cmp(a).expect("degrees are finite"));
    let k = (tail.len() / 10).clamp(2, 200);
    let x_k = tail[k - 1];
    let hill: f64 = tail[..k].iter().map(|&x| (x / x_k).ln()).sum::<f64>() / k as f64;
    if hill <= 0.0 {
        return 2.5;
    }
    // Hill estimates the tail index γ of P(X > x) ~ x^-γ; for a Zipf pmf
    // with exponent s over ranks, degree tails give s ≈ 1 + 1/γ…1/γ + 1
    // depending on the sampling regime. Use s = 1 + 1/hill, clamped.
    (1.0 + 1.0 / hill).clamp(1.2, 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_graph, GeneratorOptions};
    use crate::schema::{Distribution, Occurrence, SchemaBuilder};
    use gmark_stats::{DegreeSampler, Prng, Zipf};

    #[test]
    fn classify_point_mass() {
        assert_eq!(classify_degrees(&[3, 3, 3, 3]), Distribution::uniform(3, 3));
    }

    #[test]
    fn classify_flat_uniform() {
        let mut rng = Prng::seed_from_u64(1);
        let degrees: Vec<usize> = (0..5000)
            .map(|_| rng.range_inclusive(2, 9) as usize)
            .collect();
        match classify_degrees(&degrees) {
            Distribution::Uniform { min, max } => {
                assert_eq!((min, max), (2, 9));
            }
            other => panic!("expected uniform, got {other:?}"),
        }
    }

    #[test]
    fn classify_gaussian() {
        let g = gmark_stats::Gaussian::new(20.0, 3.0);
        let mut rng = Prng::seed_from_u64(2);
        let degrees: Vec<usize> = (0..5000).map(|_| g.sample(&mut rng) as usize).collect();
        match classify_degrees(&degrees) {
            Distribution::Gaussian { mu, sigma } => {
                assert!((mu - 20.0).abs() < 1.0, "mu {mu}");
                assert!((sigma - 3.0).abs() < 1.0, "sigma {sigma}");
            }
            other => panic!("expected gaussian, got {other:?}"),
        }
    }

    #[test]
    fn classify_zipf() {
        let z = Zipf::new(100_000, 2.0);
        let mut rng = Prng::seed_from_u64(3);
        let degrees: Vec<usize> = (0..20_000).map(|_| z.sample(&mut rng) as usize).collect();
        match classify_degrees(&degrees) {
            Distribution::Zipfian { s } => {
                assert!((1.2..=4.0).contains(&s), "s {s}");
            }
            other => panic!("expected zipfian, got {other:?}"),
        }
    }

    #[test]
    fn classify_empty_is_nonspecified() {
        assert_eq!(classify_degrees(&[]), Distribution::NonSpecified);
    }

    fn source_schema() -> crate::schema::Schema {
        let mut b = SchemaBuilder::new();
        let big = b.node_type("big", Occurrence::Proportion(0.6));
        let other = b.node_type("other", Occurrence::Proportion(0.4));
        let small = b.node_type("small", Occurrence::Fixed(40));
        let p = b.predicate("p", None);
        let q = b.predicate("q", None);
        b.edge(
            big,
            p,
            other,
            Distribution::NonSpecified,
            Distribution::zipfian(2.0),
        );
        b.edge(
            other,
            q,
            small,
            Distribution::NonSpecified,
            Distribution::uniform(1, 1),
        );
        b.build().unwrap()
    }

    #[test]
    fn extraction_round_trip() {
        let schema = source_schema();
        let cfg = crate::schema::GraphConfig::new(20_000, schema.clone());
        let (graph, _) = generate_graph(&cfg, &GeneratorOptions::with_seed(7));
        let extracted = extract_config(
            &graph,
            &["big".into(), "other".into(), "small".into()],
            &["p".into(), "q".into()],
            &ExtractOptions::default(),
        );
        let s = &extracted.schema;
        assert_eq!(s.type_count(), 3);
        // small is fixed; big/other are proportional with ~right shares.
        let small = s.type_by_name("small").unwrap();
        assert_eq!(s.type_constraint(small), Occurrence::Fixed(40));
        let big = s.type_by_name("big").unwrap();
        match s.type_constraint(big) {
            Occurrence::Proportion(prop) => assert!((prop - 0.6).abs() < 0.02, "prop {prop}"),
            other => panic!("expected proportion, got {other:?}"),
        }
        // p out-degrees were Zipfian and must be re-detected as such.
        let p_constraint = s
            .constraints()
            .iter()
            .find(|c| s.predicate_name(c.predicate) == "p")
            .expect("p constraint extracted");
        assert!(
            p_constraint.dout.is_zipfian(),
            "p out-distribution should be Zipf, got {:?}",
            p_constraint.dout
        );
        // q out-degrees were exactly-one.
        let q_constraint = s
            .constraints()
            .iter()
            .find(|c| s.predicate_name(c.predicate) == "q")
            .expect("q constraint extracted");
        assert_eq!(q_constraint.dout, Distribution::uniform(1, 1));
    }

    #[test]
    fn extracted_config_can_regenerate() {
        let schema = source_schema();
        let cfg = crate::schema::GraphConfig::new(5_000, schema);
        let (graph, _) = generate_graph(&cfg, &GeneratorOptions::with_seed(8));
        let extracted = extract_config(
            &graph,
            &["big".into(), "other".into(), "small".into()],
            &["p".into(), "q".into()],
            &ExtractOptions::default(),
        );
        let (g2, report) = generate_graph(&extracted, &GeneratorOptions::with_seed(9));
        assert!(report.total_edges > 0);
        // Edge volume should be in the same ballpark (within 2x).
        let ratio = g2.edge_count() as f64 / graph.edge_count() as f64;
        assert!((0.5..2.0).contains(&ratio), "edge ratio {ratio}");
    }
}
