//! Graph schemas and configurations (Definitions 3.1 and 3.2).
//!
//! A *graph schema* is a tuple `S = (Σ, Θ, T, η)` where `Σ` is a finite
//! alphabet of predicates, `Θ` a finite set of node types, `T` associates to
//! each predicate and type either a proportion of its occurrences or a fixed
//! constant value, and `η` partially maps `(T1, T2, a)` to a pair
//! `(D_in, D_out)` of degree distributions. A *graph configuration*
//! `G = (n, S)` adds the requested number of nodes.
//!
//! This module also implements the consistency check discussed in Section 4:
//! the in- and out-distribution parameters of each constraint must be
//! compatible for the number of generated ingoing and outgoing edges to
//! match; incompatibilities are reported (not fatal — the generator always
//! returns a graph, by design).

use gmark_stats::sampler::{AnySampler, Gaussian, Uniform, Zipf};
use std::fmt;

/// Index of a node type in `Θ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub usize);

/// Index of an edge predicate in `Σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredicateId(pub usize);

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An occurrence constraint from `T`: either a fixed number of occurrences
/// or a proportion of the graph size (Fig. 2(a)/(b) of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Occurrence {
    /// Exactly this many occurrences, independent of graph size — e.g. the
    /// motivating example fixes 100 `city` nodes. Fixed types have
    /// `Type(T) = 1` in the selectivity algebra of Section 5.2.2.
    Fixed(u64),
    /// This fraction of the graph size `n` — e.g. 50% of nodes are
    /// `researcher`s. Proportional types have `Type(T) = N`.
    Proportion(f64),
}

impl Occurrence {
    /// Resolves the constraint against a graph size `n`.
    pub fn resolve(&self, n: u64) -> u64 {
        match *self {
            Occurrence::Fixed(c) => c,
            Occurrence::Proportion(p) => (p * n as f64).round() as u64,
        }
    }

    /// Whether this occurrence grows with the graph (`Type(T) = N`).
    pub fn grows(&self) -> bool {
        matches!(self, Occurrence::Proportion(_))
    }
}

/// A degree distribution of `η` (Definition 3.1). gMark supports uniform,
/// Gaussian, and Zipfian distributions, and a side may be left non-specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform over an integer interval `[min, max]`.
    Uniform {
        /// Smallest degree (inclusive).
        min: u64,
        /// Largest degree (inclusive).
        max: u64,
    },
    /// Gaussian (normal) with mean `mu` and standard deviation `sigma`.
    Gaussian {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// Zipfian (power-law) with exponent `s`; the support is bounded by the
    /// number of nodes on the opposite side of the constraint.
    Zipfian {
        /// Exponent `s > 0`. The original gMark implementation defaults to 2.5.
        s: f64,
    },
    /// Left unspecified: the generator lets the opposite side dictate the
    /// edge count and connects this side uniformly at random.
    NonSpecified,
}

impl Distribution {
    /// Shorthand for a uniform distribution.
    pub fn uniform(min: u64, max: u64) -> Self {
        Distribution::Uniform { min, max }
    }

    /// Shorthand for a Gaussian distribution.
    pub fn gaussian(mu: f64, sigma: f64) -> Self {
        Distribution::Gaussian { mu, sigma }
    }

    /// Shorthand for a Zipfian distribution.
    pub fn zipfian(s: f64) -> Self {
        Distribution::Zipfian { s }
    }

    /// Whether the distribution is specified.
    pub fn is_specified(&self) -> bool {
        !matches!(self, Distribution::NonSpecified)
    }

    /// Whether the distribution is Zipfian — the trigger for the `<` / `>`
    /// selectivity operations of Section 5.2.2.
    pub fn is_zipfian(&self) -> bool {
        matches!(self, Distribution::Zipfian { .. })
    }

    /// Whether the distribution is Gaussian — eligible for the generator's
    /// fast path (Section 4: "exploiting the average information of the
    /// Gaussian distributions").
    pub fn is_gaussian(&self) -> bool {
        matches!(self, Distribution::Gaussian { .. })
    }

    /// Builds a sampler, bounding Zipf's support by `support` (the number of
    /// nodes on the opposite side). `None` for non-specified distributions.
    pub fn sampler(&self, support: u64) -> Option<AnySampler> {
        match *self {
            Distribution::Uniform { min, max } => Some(AnySampler::Uniform(Uniform::new(min, max))),
            Distribution::Gaussian { mu, sigma } => {
                Some(AnySampler::Gaussian(Gaussian::new(mu, sigma)))
            }
            Distribution::Zipfian { s } => Some(AnySampler::Zipf(Zipf::new(support.max(1), s))),
            Distribution::NonSpecified => None,
        }
    }

    /// Expected degree under this distribution (`None` if non-specified).
    pub fn mean(&self, support: u64) -> Option<f64> {
        use gmark_stats::DegreeSampler;
        self.sampler(support).map(|s| s.mean())
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::Uniform { min, max } => write!(f, "uniform[{min},{max}]"),
            Distribution::Gaussian { mu, sigma } => {
                write!(f, "gaussian(\u{03BC}={mu},\u{03C3}={sigma})")
            }
            Distribution::Zipfian { s } => write!(f, "zipfian(s={s})"),
            Distribution::NonSpecified => write!(f, "nonspecified"),
        }
    }
}

/// One `η(T1, T2, a) = (D_in, D_out)` schema constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeConstraint {
    /// Source node type `T1`.
    pub source: TypeId,
    /// Edge predicate `a`.
    pub predicate: PredicateId,
    /// Target node type `T2`.
    pub target: TypeId,
    /// In-degree distribution `D_in` (degrees of `T2` nodes w.r.t. incoming
    /// `a`-edges from `T1` nodes).
    pub din: Distribution,
    /// Out-degree distribution `D_out` (degrees of `T1` nodes w.r.t.
    /// outgoing `a`-edges to `T2` nodes).
    pub dout: Distribution,
}

/// The paper's standard macros for common `(D_in, D_out)` pairs
/// (Section 3.4): `"1"`, `"?"`, and `"0"`.
impl EdgeConstraint {
    /// Macro `"1"`: non-specified in-distribution, uniform `[1, 1]`
    /// out-distribution — exactly one outgoing `a`-edge per source node.
    pub fn exactly_one(source: TypeId, predicate: PredicateId, target: TypeId) -> Self {
        EdgeConstraint {
            source,
            predicate,
            target,
            din: Distribution::NonSpecified,
            dout: Distribution::uniform(1, 1),
        }
    }

    /// Macro `"?"`: non-specified in-distribution, uniform `[0, 1]`
    /// out-distribution — at most one outgoing `a`-edge per source node.
    pub fn at_most_one(source: TypeId, predicate: PredicateId, target: TypeId) -> Self {
        EdgeConstraint {
            source,
            predicate,
            target,
            din: Distribution::NonSpecified,
            dout: Distribution::uniform(0, 1),
        }
    }

    /// Macro `"0"`: no `a`-edges from `T1` to `T2` (uniform `[0, 0]`).
    pub fn none(source: TypeId, predicate: PredicateId, target: TypeId) -> Self {
        EdgeConstraint {
            source,
            predicate,
            target,
            din: Distribution::NonSpecified,
            dout: Distribution::uniform(0, 0),
        }
    }
}

/// A graph schema `S = (Σ, Θ, T, η)` (Definition 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    type_names: Vec<String>,
    type_constraints: Vec<Occurrence>,
    predicate_names: Vec<String>,
    predicate_constraints: Vec<Option<Occurrence>>,
    constraints: Vec<EdgeConstraint>,
}

impl Schema {
    /// Number of node types `|Θ|`.
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Number of predicates `|Σ|`.
    pub fn predicate_count(&self) -> usize {
        self.predicate_names.len()
    }

    /// Name of a node type.
    pub fn type_name(&self, t: TypeId) -> &str {
        &self.type_names[t.0]
    }

    /// Name of a predicate.
    pub fn predicate_name(&self, p: PredicateId) -> &str {
        &self.predicate_names[p.0]
    }

    /// All predicate names (indexed by `PredicateId`).
    pub fn predicate_names(&self) -> Vec<String> {
        self.predicate_names.clone()
    }

    /// Looks up a node type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_names.iter().position(|n| n == name).map(TypeId)
    }

    /// Looks up a predicate by name.
    pub fn predicate_by_name(&self, name: &str) -> Option<PredicateId> {
        self.predicate_names
            .iter()
            .position(|n| n == name)
            .map(PredicateId)
    }

    /// The occurrence constraint `T(T)` of a node type.
    pub fn type_constraint(&self, t: TypeId) -> Occurrence {
        self.type_constraints[t.0]
    }

    /// The occurrence constraint `T(a)` of a predicate, if specified.
    pub fn predicate_constraint(&self, p: PredicateId) -> Option<Occurrence> {
        self.predicate_constraints[p.0]
    }

    /// The `η` constraints.
    pub fn constraints(&self) -> &[EdgeConstraint] {
        &self.constraints
    }

    /// Iterates types.
    pub fn types(&self) -> impl Iterator<Item = TypeId> {
        (0..self.type_count()).map(TypeId)
    }

    /// Iterates predicates.
    pub fn predicates(&self) -> impl Iterator<Item = PredicateId> {
        (0..self.predicate_count()).map(PredicateId)
    }

    /// Whether `Type(T) = N` (the type grows with the graph) in the algebra
    /// of Section 5.2.2.
    pub fn type_grows(&self, t: TypeId) -> bool {
        self.type_constraints[t.0].grows()
    }

    /// Per-type node counts for a graph of size `n` (the `n_T` of Fig. 5).
    pub fn node_counts(&self, n: u64) -> Vec<u64> {
        self.type_constraints.iter().map(|c| c.resolve(n)).collect()
    }

    /// A stable 64-bit fingerprint of the schema's alphabet: the type
    /// names followed by the predicate names, each length-prefixed
    /// (domain-separated, with a count separator between the two lists).
    ///
    /// The on-disk graph store records this next to the seed so a store
    /// file can be checked against the configuration a caller is about to
    /// evaluate with — it deliberately covers only the name lists (not
    /// distributions), because predicate *indices* are what stored
    /// segments are keyed by.
    pub fn schema_hash(&self) -> u64 {
        let mut h = gmark_store::paged::Fnv64::new();
        gmark_store::paged::fnv_strings(&mut h, &self.type_names);
        h.update(&(self.predicate_names.len() as u64).to_le_bytes());
        gmark_store::paged::fnv_strings(&mut h, &self.predicate_names);
        h.finish()
    }
}

/// A graph configuration `G = (n, S)` (Definition 3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// Requested number of nodes `n`.
    pub n: u64,
    /// The schema `S`.
    pub schema: Schema,
}

impl GraphConfig {
    /// Creates a configuration.
    pub fn new(n: u64, schema: Schema) -> Self {
        GraphConfig { n, schema }
    }

    /// Per-type node counts (see [`Schema::node_counts`]).
    pub fn node_counts(&self) -> Vec<u64> {
        self.schema.node_counts(self.n)
    }

    /// The realized total node count (sum of per-type counts; may deviate
    /// slightly from `n` through rounding and fixed-count types, as in the
    /// paper's motivating example where 100 `city` nodes are fixed).
    pub fn realized_nodes(&self) -> u64 {
        self.node_counts().iter().sum()
    }

    /// Runs the Section 4 consistency check; see [`Schema`] docs.
    pub fn validate(&self) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        let counts = self.node_counts();
        // Node proportions summing far from 1 distort the requested size.
        let prop_sum: f64 = self
            .schema
            .type_constraints
            .iter()
            .filter_map(|c| match c {
                Occurrence::Proportion(p) => Some(*p),
                Occurrence::Fixed(_) => None,
            })
            .sum();
        if prop_sum > 1.0 + 1e-9 {
            issues.push(ValidationIssue::TypeProportionsExceedOne { sum: prop_sum });
        }
        for (idx, c) in self.schema.constraints.iter().enumerate() {
            let n_src = counts[c.source.0];
            let n_trg = counts[c.target.0];
            let out_mean = c.dout.mean(n_trg.max(1));
            let in_mean = c.din.mean(n_src.max(1));
            if let (Some(om), Some(im)) = (out_mean, in_mean) {
                let supply = n_src as f64 * om;
                let demand = n_trg as f64 * im;
                let hi = supply.max(demand);
                let lo = supply.min(demand);
                // > 25% relative divergence means one side's distribution
                // parameters will necessarily be violated (Section 4).
                if hi > 0.0 && (hi - lo) / hi > 0.25 {
                    issues.push(ValidationIssue::InconsistentDegrees {
                        constraint: idx,
                        expected_out_edges: supply,
                        expected_in_edges: demand,
                    });
                }
            }
            if !c.din.is_specified() && !c.dout.is_specified() {
                let pc = self.schema.predicate_constraints[c.predicate.0];
                if pc.is_none() {
                    issues.push(ValidationIssue::NoEdgeBudget { constraint: idx });
                }
            }
        }
        issues
    }
}

/// A problem reported by [`GraphConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationIssue {
    /// Proportional type constraints sum to more than 1.
    TypeProportionsExceedOne {
        /// Sum of the proportions.
        sum: f64,
    },
    /// A constraint's expected outgoing and incoming edge totals diverge; the
    /// generator will truncate to the smaller side (Fig. 5, line 8).
    InconsistentDegrees {
        /// Index into [`Schema::constraints`].
        constraint: usize,
        /// `n_{T1} · E[D_out]`.
        expected_out_edges: f64,
        /// `n_{T2} · E[D_in]`.
        expected_in_edges: f64,
    },
    /// Both distributions are non-specified and the predicate carries no
    /// occurrence constraint, so the edge budget is undefined (the generator
    /// falls back to `min(n_{T1}, n_{T2})` edges).
    NoEdgeBudget {
        /// Index into [`Schema::constraints`].
        constraint: usize,
    },
}

/// Errors raised while assembling a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two types or two predicates share a name.
    DuplicateName(String),
    /// A constraint references an unknown type or predicate.
    UnknownReference(String),
    /// A proportion is outside `(0, 1]` or not finite.
    InvalidProportion(String),
    /// A distribution has invalid parameters.
    InvalidDistribution(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            SchemaError::UnknownReference(n) => write!(f, "unknown reference: {n}"),
            SchemaError::InvalidProportion(m) => write!(f, "invalid proportion: {m}"),
            SchemaError::InvalidDistribution(m) => write!(f, "invalid distribution: {m}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Fluent builder for [`Schema`].
///
/// ```
/// use gmark_core::schema::{Distribution, Occurrence, SchemaBuilder};
///
/// let mut b = SchemaBuilder::new();
/// let researcher = b.node_type("researcher", Occurrence::Proportion(0.5));
/// let paper = b.node_type("paper", Occurrence::Proportion(0.3));
/// let authors = b.predicate("authors", Some(Occurrence::Proportion(0.5)));
/// b.edge(
///     researcher,
///     authors,
///     paper,
///     Distribution::gaussian(3.0, 1.0),
///     Distribution::zipfian(2.5),
/// );
/// let schema = b.build().unwrap();
/// assert_eq!(schema.type_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    type_names: Vec<String>,
    type_constraints: Vec<Occurrence>,
    predicate_names: Vec<String>,
    predicate_constraints: Vec<Option<Occurrence>>,
    constraints: Vec<EdgeConstraint>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Declares a node type with its occurrence constraint, returning its id.
    pub fn node_type(&mut self, name: &str, occurrence: Occurrence) -> TypeId {
        self.type_names.push(name.to_owned());
        self.type_constraints.push(occurrence);
        TypeId(self.type_names.len() - 1)
    }

    /// Declares a predicate with an optional occurrence constraint.
    pub fn predicate(&mut self, name: &str, occurrence: Option<Occurrence>) -> PredicateId {
        self.predicate_names.push(name.to_owned());
        self.predicate_constraints.push(occurrence);
        PredicateId(self.predicate_names.len() - 1)
    }

    /// Adds a full `η(T1, T2, a) = (D_in, D_out)` constraint.
    pub fn edge(
        &mut self,
        source: TypeId,
        predicate: PredicateId,
        target: TypeId,
        din: Distribution,
        dout: Distribution,
    ) -> &mut Self {
        self.constraints.push(EdgeConstraint {
            source,
            predicate,
            target,
            din,
            dout,
        });
        self
    }

    /// Adds a pre-assembled constraint (used by the macro constructors).
    pub fn constraint(&mut self, c: EdgeConstraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Validates and assembles the schema.
    pub fn build(self) -> Result<Schema, SchemaError> {
        // Name uniqueness.
        for names in [&self.type_names, &self.predicate_names] {
            let mut seen = std::collections::HashSet::new();
            for n in names {
                if !seen.insert(n.as_str()) {
                    return Err(SchemaError::DuplicateName(n.clone()));
                }
            }
        }
        // Occurrence sanity.
        let check_occ = |o: &Occurrence, what: &str| -> Result<(), SchemaError> {
            if let Occurrence::Proportion(p) = o {
                if !p.is_finite() || *p <= 0.0 || *p > 1.0 {
                    return Err(SchemaError::InvalidProportion(format!("{what}: {p}")));
                }
            }
            Ok(())
        };
        for (name, occ) in self.type_names.iter().zip(&self.type_constraints) {
            check_occ(occ, name)?;
        }
        for (name, occ) in self.predicate_names.iter().zip(&self.predicate_constraints) {
            if let Some(o) = occ {
                check_occ(o, name)?;
            }
        }
        // Constraint references and distribution parameters.
        for c in &self.constraints {
            if c.source.0 >= self.type_names.len() || c.target.0 >= self.type_names.len() {
                return Err(SchemaError::UnknownReference(format!(
                    "constraint type {:?} / {:?}",
                    c.source, c.target
                )));
            }
            if c.predicate.0 >= self.predicate_names.len() {
                return Err(SchemaError::UnknownReference(format!(
                    "constraint predicate {:?}",
                    c.predicate
                )));
            }
            for d in [&c.din, &c.dout] {
                match *d {
                    Distribution::Uniform { min, max } if min > max => {
                        return Err(SchemaError::InvalidDistribution(format!(
                            "uniform[{min},{max}]"
                        )))
                    }
                    Distribution::Gaussian { mu, sigma }
                        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 =>
                    {
                        return Err(SchemaError::InvalidDistribution(format!(
                            "gaussian({mu},{sigma})"
                        )))
                    }
                    Distribution::Zipfian { s } if !s.is_finite() || s <= 0.0 => {
                        return Err(SchemaError::InvalidDistribution(format!("zipfian({s})")))
                    }
                    _ => {}
                }
            }
        }
        Ok(Schema {
            type_names: self.type_names,
            type_constraints: self.type_constraints,
            predicate_names: self.predicate_names,
            predicate_constraints: self.predicate_constraints,
            constraints: self.constraints,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The schema of Example 3.3: Σ = {a, b}, Θ = {T1, T2, T3},
    /// T(T1) = 60%, T(T2) = 20%, T(T3) = 1.
    pub(crate) fn example_3_3() -> Schema {
        let mut b = SchemaBuilder::new();
        let t1 = b.node_type("T1", Occurrence::Proportion(0.6));
        let t2 = b.node_type("T2", Occurrence::Proportion(0.2));
        let t3 = b.node_type("T3", Occurrence::Fixed(1));
        let a = b.predicate("a", None);
        let bb = b.predicate("b", None);
        b.edge(
            t1,
            a,
            t1,
            Distribution::gaussian(2.0, 1.0),
            Distribution::zipfian(2.5),
        );
        b.edge(
            t1,
            bb,
            t2,
            Distribution::uniform(1, 3),
            Distribution::gaussian(1.0, 0.5),
        );
        b.edge(
            t2,
            bb,
            t2,
            Distribution::gaussian(1.0, 0.5),
            Distribution::NonSpecified,
        );
        b.edge(
            t2,
            bb,
            t3,
            Distribution::NonSpecified,
            Distribution::uniform(1, 1),
        );
        b.build().unwrap()
    }

    #[test]
    fn example_schema_shape() {
        let s = example_3_3();
        assert_eq!(s.type_count(), 3);
        assert_eq!(s.predicate_count(), 2);
        assert_eq!(s.constraints().len(), 4);
        assert_eq!(s.type_by_name("T2"), Some(TypeId(1)));
        assert_eq!(s.predicate_by_name("b"), Some(PredicateId(1)));
        assert!(s.type_by_name("nope").is_none());
        assert!(s.type_grows(TypeId(0)));
        assert!(!s.type_grows(TypeId(2)));
    }

    #[test]
    fn node_counts_follow_example_3_3() {
        // n = 5: 60% -> 3 nodes of T1, 20% -> 1 node of T2, fixed 1 of T3.
        let cfg = GraphConfig::new(5, example_3_3());
        assert_eq!(cfg.node_counts(), vec![3, 1, 1]);
        assert_eq!(cfg.realized_nodes(), 5);
    }

    #[test]
    fn occurrence_resolution() {
        assert_eq!(Occurrence::Fixed(100).resolve(5), 100);
        assert_eq!(Occurrence::Proportion(0.5).resolve(1001), 501);
        assert!(Occurrence::Proportion(0.1).grows());
        assert!(!Occurrence::Fixed(3).grows());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = SchemaBuilder::new();
        b.node_type("x", Occurrence::Fixed(1));
        b.node_type("x", Occurrence::Fixed(1));
        assert!(matches!(b.build(), Err(SchemaError::DuplicateName(_))));
    }

    #[test]
    fn invalid_proportion_rejected() {
        let mut b = SchemaBuilder::new();
        b.node_type("x", Occurrence::Proportion(1.5));
        assert!(matches!(b.build(), Err(SchemaError::InvalidProportion(_))));
    }

    #[test]
    fn invalid_distributions_rejected() {
        let mut b = SchemaBuilder::new();
        let t = b.node_type("t", Occurrence::Fixed(1));
        let p = b.predicate("p", None);
        b.edge(
            t,
            p,
            t,
            Distribution::uniform(5, 2),
            Distribution::NonSpecified,
        );
        assert!(matches!(
            b.build(),
            Err(SchemaError::InvalidDistribution(_))
        ));

        let mut b = SchemaBuilder::new();
        let t = b.node_type("t", Occurrence::Fixed(1));
        let p = b.predicate("p", None);
        b.edge(
            t,
            p,
            t,
            Distribution::zipfian(-1.0),
            Distribution::NonSpecified,
        );
        assert!(matches!(
            b.build(),
            Err(SchemaError::InvalidDistribution(_))
        ));
    }

    #[test]
    fn unknown_reference_rejected() {
        let mut b = SchemaBuilder::new();
        let t = b.node_type("t", Occurrence::Fixed(1));
        b.edge(
            t,
            PredicateId(9),
            t,
            Distribution::NonSpecified,
            Distribution::uniform(1, 1),
        );
        assert!(matches!(b.build(), Err(SchemaError::UnknownReference(_))));
    }

    #[test]
    fn macros_match_paper_section_3_4() {
        let one = EdgeConstraint::exactly_one(TypeId(0), PredicateId(0), TypeId(1));
        assert_eq!(one.dout, Distribution::uniform(1, 1));
        assert_eq!(one.din, Distribution::NonSpecified);
        let opt = EdgeConstraint::at_most_one(TypeId(0), PredicateId(0), TypeId(1));
        assert_eq!(opt.dout, Distribution::uniform(0, 1));
        let zero = EdgeConstraint::none(TypeId(0), PredicateId(0), TypeId(1));
        assert_eq!(zero.dout, Distribution::uniform(0, 0));
    }

    #[test]
    fn validation_flags_inconsistent_degrees() {
        let mut b = SchemaBuilder::new();
        let t1 = b.node_type("t1", Occurrence::Proportion(0.5));
        let t2 = b.node_type("t2", Occurrence::Proportion(0.5));
        let p = b.predicate("p", None);
        // Sources supply ~10 edges/node, targets demand ~1 edge/node.
        b.edge(
            t1,
            p,
            t2,
            Distribution::uniform(1, 1),
            Distribution::uniform(10, 10),
        );
        let cfg = GraphConfig::new(1000, b.build().unwrap());
        let issues = cfg.validate();
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::InconsistentDegrees { .. })));
    }

    #[test]
    fn validation_flags_missing_edge_budget() {
        let mut b = SchemaBuilder::new();
        let t = b.node_type("t", Occurrence::Proportion(1.0));
        let p = b.predicate("p", None);
        b.edge(
            t,
            p,
            t,
            Distribution::NonSpecified,
            Distribution::NonSpecified,
        );
        let cfg = GraphConfig::new(100, b.build().unwrap());
        assert!(cfg
            .validate()
            .iter()
            .any(|i| matches!(i, ValidationIssue::NoEdgeBudget { .. })));
    }

    #[test]
    fn validation_accepts_consistent_config() {
        let cfg = GraphConfig::new(10_000, example_3_3());
        // The example schema is built to be roughly consistent; only the
        // Zipf/Gaussian pairing on `a` may drift, so just assert the check
        // runs and produces no proportion issues.
        let issues = cfg.validate();
        assert!(!issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::TypeProportionsExceedOne { .. })));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Distribution::uniform(1, 2).to_string(), "uniform[1,2]");
        assert_eq!(Distribution::NonSpecified.to_string(), "nonspecified");
        assert_eq!(TypeId(3).to_string(), "T3");
    }
}
