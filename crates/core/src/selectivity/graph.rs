//! The selectivity data structures of Section 5.2.3 and the `nb_path`
//! sampling algorithm of Section 5.2.4.
//!
//! * **Schema graph `G_S`** — nodes are pairs `(T, (t1, o, Type(T)))` of a
//!   node type and a selectivity triple; an edge labeled `a ∈ Σ±` connects
//!   `(T, tr)` to `(T', tr · sel_{T,T'}(a))` whenever the schema allows an
//!   `a`-edge between `T` and `T'`. A walk through `G_S` simultaneously
//!   tracks *where* a path can navigate and *how its selectivity class
//!   evolves*.
//! * **Distance matrix `D`** — all-pairs shortest path lengths in `G_S`.
//! * **Selectivity graph `G_sel`** — same nodes; an edge `u → v` exists iff
//!   `G_S` has a path from `u` to `v` of length within `[l_min, l_max]`
//!   (the query-size path-length interval). One `G_sel` edge therefore
//!   stands for one instantiable conjunct placeholder.
//! * **`nb_path` sampling** — `nb_path(n, i)` counts the accepted paths of
//!   length `i` starting at `n`; paths are then drawn uniformly by walking
//!   with draws weighted by the remaining counts (Section 5.2.4).

use crate::query::Symbol;
use crate::schema::{PredicateId, Schema, TypeId};
use crate::selectivity::algebra::{Card, Estimator, SelOp, SelTriple};
use crate::selectivity::SelectivityClass;
use gmark_stats::Prng;

/// Identifier of a schema-graph node: `type_index * 8 + triple_index` over
/// the eight permitted triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GsNodeId(pub usize);

const TRIPLES_PER_TYPE: usize = 8;

/// The canonical ordering of the eight permitted triples.
fn canonical_triples() -> [SelTriple; TRIPLES_PER_TYPE] {
    use Card::*;
    use SelOp::*;
    [
        SelTriple {
            left: One,
            op: Eq,
            right: One,
        },
        SelTriple {
            left: One,
            op: Less,
            right: Many,
        },
        SelTriple {
            left: Many,
            op: Greater,
            right: One,
        },
        SelTriple {
            left: Many,
            op: Eq,
            right: Many,
        },
        SelTriple {
            left: Many,
            op: Less,
            right: Many,
        },
        SelTriple {
            left: Many,
            op: Greater,
            right: Many,
        },
        SelTriple {
            left: Many,
            op: Diamond,
            right: Many,
        },
        SelTriple {
            left: Many,
            op: Cross,
            right: Many,
        },
    ]
}

fn triple_index(t: SelTriple) -> usize {
    canonical_triples()
        .iter()
        .position(|&c| c == t)
        .expect("normalized triples are always canonical")
}

/// The schema graph `G_S` (Section 5.2.3 (a), illustrated in Fig. 8).
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    type_count: usize,
    valid: Vec<bool>,
    adj: Vec<Vec<(Symbol, usize)>>,
    radj: Vec<Vec<(Symbol, usize)>>,
}

impl SchemaGraph {
    /// Derives the schema graph from a schema.
    pub fn build(schema: &Schema) -> SchemaGraph {
        let est = Estimator::new(schema);
        let triples = canonical_triples();
        let n = schema.type_count() * TRIPLES_PER_TYPE;
        let mut valid = vec![false; n];
        for t in schema.types() {
            let card = Card::of(schema, t);
            for (k, tr) in triples.iter().enumerate() {
                if tr.right == card {
                    valid[t.0 * TRIPLES_PER_TYPE + k] = true;
                }
            }
        }
        let mut adj: Vec<Vec<(Symbol, usize)>> = vec![Vec::new(); n];
        let mut radj: Vec<Vec<(Symbol, usize)>> = vec![Vec::new(); n];
        // All symbols of Σ±.
        let symbols: Vec<Symbol> = (0..schema.predicate_count())
            .flat_map(|p| {
                [
                    Symbol::forward(PredicateId(p)),
                    Symbol::inverse(PredicateId(p)),
                ]
            })
            .collect();
        for t in schema.types() {
            for (k, tr) in triples.iter().enumerate() {
                let u = t.0 * TRIPLES_PER_TYPE + k;
                if !valid[u] {
                    continue;
                }
                for t2 in schema.types() {
                    for &sym in &symbols {
                        if let Some(base) = est.symbol_class(t, t2, sym) {
                            let tr2 = tr.concat(base);
                            let v = t2.0 * TRIPLES_PER_TYPE + triple_index(tr2);
                            debug_assert!(valid[v], "concat lands on a valid node");
                            adj[u].push((sym, v));
                            radj[v].push((sym, u));
                        }
                    }
                }
            }
        }
        SchemaGraph {
            type_count: schema.type_count(),
            valid,
            adj,
            radj,
        }
    }

    /// Number of node slots (`|Θ| × 8`; not all are valid).
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// Whether there are no valid nodes.
    pub fn is_empty(&self) -> bool {
        !self.valid.iter().any(|&v| v)
    }

    /// Whether a node slot is a valid `G_S` node.
    pub fn is_valid(&self, n: GsNodeId) -> bool {
        self.valid[n.0]
    }

    /// The node for `(type, triple)`.
    pub fn node(&self, t: TypeId, triple: SelTriple) -> GsNodeId {
        GsNodeId(t.0 * TRIPLES_PER_TYPE + triple_index(triple.normalized()))
    }

    /// The type component of a node.
    pub fn type_of(&self, n: GsNodeId) -> TypeId {
        TypeId(n.0 / TRIPLES_PER_TYPE)
    }

    /// The triple component of a node.
    pub fn triple_of(&self, n: GsNodeId) -> SelTriple {
        canonical_triples()[n.0 % TRIPLES_PER_TYPE]
    }

    /// The identity node `(T, (Type(T), =, Type(T)))` — where every
    /// selectivity-typed walk begins ("a node with selectivity triple
    /// (?, =, ?)", Section 5.2.4).
    pub fn identity_node(&self, schema: &Schema, t: TypeId) -> GsNodeId {
        self.node(t, SelTriple::identity(Card::of(schema, t)))
    }

    /// Labeled successors of a node.
    pub fn successors(&self, n: GsNodeId) -> &[(Symbol, usize)] {
        &self.adj[n.0]
    }

    /// Labeled predecessors of a node.
    pub fn predecessors(&self, n: GsNodeId) -> &[(Symbol, usize)] {
        &self.radj[n.0]
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.type_count
    }

    /// All valid node ids.
    pub fn valid_nodes(&self) -> impl Iterator<Item = GsNodeId> + '_ {
        (0..self.len()).filter(|&i| self.valid[i]).map(GsNodeId)
    }

    /// The distance matrix `D` (Section 5.2.3 (b)): `D[u][v]` is the length
    /// of the shortest path from `u` to `v` in `G_S`, or `None` if
    /// unreachable. Computed by BFS from every node.
    pub fn distance_matrix(&self) -> Vec<Vec<Option<u32>>> {
        let n = self.len();
        let mut dist = vec![vec![None; n]; n];
        let mut queue = std::collections::VecDeque::new();
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            if !self.valid[s] {
                continue;
            }
            queue.clear();
            dist[s][s] = Some(0);
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                let du = dist[s][u].expect("queued nodes have distances");
                for &(_, v) in &self.adj[u] {
                    if dist[s][v].is_none() {
                        dist[s][v] = Some(du + 1);
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// `counts[l][x]` = number of `G_S` paths of length `l` from node `x`
    /// to `target` (as `f64`, for weighted sampling; counts can be huge).
    pub fn path_counts_to(&self, target: GsNodeId, max_len: usize) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut counts = vec![vec![0.0; n]; max_len + 1];
        counts[0][target.0] = 1.0;
        for l in 1..=max_len {
            for u in 0..n {
                if !self.valid[u] {
                    continue;
                }
                let mut c = 0.0;
                for &(_, v) in &self.adj[u] {
                    c += counts[l - 1][v];
                }
                counts[l][u] = c;
            }
        }
        counts
    }

    /// Samples, uniformly at random, a label path of exactly `len` symbols
    /// from `u` to `v` in `G_S`, using precomputed [`Self::path_counts_to`]
    /// for `v`. Returns `None` if no such path exists.
    pub fn sample_path(
        &self,
        rng: &mut Prng,
        u: GsNodeId,
        len: usize,
        counts_to_v: &[Vec<f64>],
    ) -> Option<Vec<Symbol>> {
        if counts_to_v[len][u.0] <= 0.0 {
            return None;
        }
        let mut path = Vec::with_capacity(len);
        let mut at = u.0;
        for remaining in (1..=len).rev() {
            let succs = &self.adj[at];
            let weights: Vec<f64> = succs
                .iter()
                .map(|&(_, v)| counts_to_v[remaining - 1][v])
                .collect();
            let pick = rng.choose_weighted(&weights)?;
            let (sym, v) = succs[pick];
            path.push(sym);
            at = v;
        }
        Some(path)
    }
}

/// The selectivity graph `G_sel` (Section 5.2.3 (c), illustrated in Fig. 9):
/// an unlabeled graph on the `G_S` nodes with an edge `u → v` iff `G_S`
/// contains a path from `u` to `v` of length within `[l_min, l_max]`.
#[derive(Debug, Clone)]
pub struct SelectivityGraph {
    adj: Vec<Vec<usize>>,
    lmin: usize,
    lmax: usize,
}

impl SelectivityGraph {
    /// Builds `G_sel` from the schema graph and the path-length interval of
    /// the workload's query-size tuple.
    pub fn build(gs: &SchemaGraph, lmin: usize, lmax: usize) -> SelectivityGraph {
        assert!(lmin >= 1, "conjunct paths have at least one symbol");
        assert!(lmin <= lmax, "invalid path-length interval [{lmin},{lmax}]");
        let n = gs.len();
        let mut adj = vec![Vec::new(); n];
        // Layered BFS-with-multiplicity from each node: reach[l] = set of
        // nodes at exactly l steps (as boolean DP — counts irrelevant here).
        for s in 0..n {
            if !gs.is_valid(GsNodeId(s)) {
                continue;
            }
            let mut cur = vec![false; n];
            let mut reachable = vec![false; n];
            cur[s] = true;
            for l in 1..=lmax {
                let mut next = vec![false; n];
                for (u, &inu) in cur.iter().enumerate() {
                    if inu {
                        for &(_, v) in gs.successors(GsNodeId(u)) {
                            next[v] = true;
                        }
                    }
                }
                if l >= lmin {
                    for (v, &inv) in next.iter().enumerate() {
                        if inv {
                            reachable[v] = true;
                        }
                    }
                }
                cur = next;
            }
            adj[s] = reachable
                .iter()
                .enumerate()
                .filter_map(|(v, &r)| r.then_some(v))
                .collect();
        }
        SelectivityGraph { adj, lmin, lmax }
    }

    /// `G_sel` successors of a node.
    pub fn successors(&self, n: GsNodeId) -> &[usize] {
        &self.adj[n.0]
    }

    /// Whether the edge `u → v` exists.
    pub fn has_edge(&self, u: GsNodeId, v: GsNodeId) -> bool {
        self.adj[u.0].binary_search(&v.0).is_ok()
    }

    /// The path-length interval this graph was built for.
    pub fn length_interval(&self) -> (usize, usize) {
        (self.lmin, self.lmax)
    }
}

/// Uniform sampling of selectivity-typed chains (Section 5.2.4).
///
/// `nb_path(n, i)` counts the `G_sel` paths of length `i` from `n` ending in
/// a node whose triple belongs to the `target` class. A chain typing of `c`
/// conjuncts is a `G_sel` path of length `c` starting from an identity node
/// (`(?, =, ?)`), drawn uniformly by weighting each step with the remaining
/// path counts — the "two-step algorithm" of the paper.
#[derive(Debug)]
pub struct ChainSampler {
    nb_path: Vec<Vec<f64>>,
    starts: Vec<usize>,
}

impl ChainSampler {
    /// Precomputes `nb_path` up to `max_conjuncts` for a target class.
    pub fn new(
        gs: &SchemaGraph,
        gsel: &SelectivityGraph,
        target: SelectivityClass,
        max_conjuncts: usize,
    ) -> ChainSampler {
        let n = gs.len();
        let mut nb_path = vec![vec![0.0; n]; max_conjuncts + 1];
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            if gs.is_valid(GsNodeId(u))
                && SelectivityClass::of_triple(gs.triple_of(GsNodeId(u))) == target
            {
                nb_path[0][u] = 1.0;
            }
        }
        for l in 1..=max_conjuncts {
            for u in 0..n {
                if !gs.is_valid(GsNodeId(u)) {
                    continue;
                }
                let mut c = 0.0;
                for &v in gsel.successors(GsNodeId(u)) {
                    c += nb_path[l - 1][v];
                }
                nb_path[l][u] = c;
            }
        }
        // Start nodes: identity triples (op =), per the paper "a node with
        // selectivity triple (?, =, ?)".
        let starts = (0..n)
            .filter(|&u| {
                gs.is_valid(GsNodeId(u)) && {
                    let t = gs.triple_of(GsNodeId(u));
                    t.op == SelOp::Eq && t.left == t.right
                }
            })
            .collect();
        ChainSampler { nb_path, starts }
    }

    /// Number of admissible typings of length `len` (0 means infeasible).
    pub fn feasible(&self, len: usize) -> f64 {
        self.starts.iter().map(|&s| self.nb_path[len][s]).sum()
    }

    /// Draws a uniformly random admissible typing: `len + 1` `G_S` nodes,
    /// the `i`-th conjunct connecting node `i` to node `i + 1`.
    pub fn sample(
        &self,
        gsel: &SelectivityGraph,
        rng: &mut Prng,
        len: usize,
    ) -> Option<Vec<GsNodeId>> {
        let weights: Vec<f64> = self.starts.iter().map(|&s| self.nb_path[len][s]).collect();
        let start = self.starts[rng.choose_weighted(&weights)?];
        let mut nodes = Vec::with_capacity(len + 1);
        nodes.push(GsNodeId(start));
        let mut at = start;
        for remaining in (1..=len).rev() {
            let succs = gsel.successors(GsNodeId(at));
            let w: Vec<f64> = succs
                .iter()
                .map(|&v| self.nb_path[remaining - 1][v])
                .collect();
            let pick = rng.choose_weighted(&w)?;
            at = succs[pick];
            nodes.push(GsNodeId(at));
        }
        Some(nodes)
    }
}

/// The plain type-adjacency graph over `Σ±`, used for instantiating
/// placeholders when no selectivity constraint applies (non-binary arities,
/// branch conjuncts of star-shaped skeletons). Walking it guarantees the
/// generated paths are realizable in the schema — the "tight coupling" of
/// queries to instances that Section 5 emphasizes.
#[derive(Debug, Clone)]
pub struct TypeGraph {
    adj: Vec<Vec<(Symbol, TypeId)>>,
}

impl TypeGraph {
    /// Builds the type graph from a schema.
    pub fn build(schema: &Schema) -> TypeGraph {
        let mut adj: Vec<Vec<(Symbol, TypeId)>> = vec![Vec::new(); schema.type_count()];
        for c in schema.constraints() {
            // Skip constraints that forbid edges (uniform [0,0], macro "0").
            if let crate::schema::Distribution::Uniform { min: 0, max: 0 } = c.dout {
                continue;
            }
            let fwd = Symbol::forward(c.predicate);
            adj[c.source.0].push((fwd, c.target));
            adj[c.target.0].push((fwd.flipped(), c.source));
        }
        for neighbors in &mut adj {
            neighbors.sort_by_key(|(s, t)| (s.predicate, s.inverse, t.0));
            neighbors.dedup();
        }
        TypeGraph { adj }
    }

    /// Labeled successors of a type.
    pub fn successors(&self, t: TypeId) -> &[(Symbol, TypeId)] {
        &self.adj[t.0]
    }

    /// Random walk of `len` symbols starting at `t`; returns the labels and
    /// the end type, or `None` if the walk dead-ends.
    pub fn random_walk(
        &self,
        rng: &mut Prng,
        t: TypeId,
        len: usize,
    ) -> Option<(Vec<Symbol>, TypeId)> {
        let mut at = t;
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            let succs = self.successors(at);
            if succs.is_empty() {
                return None;
            }
            let &(sym, next) = rng.choose(succs);
            path.push(sym);
            at = next;
        }
        Some((path, at))
    }

    /// `counts[l][t]` = number of type-level paths of length `l` from `t`
    /// to `target` (for sampling disjuncts that must share an end type, and
    /// starred-conjunct loops `T → T`).
    pub fn path_counts_to(&self, target: TypeId, max_len: usize) -> Vec<Vec<f64>> {
        let n = self.adj.len();
        let mut counts = vec![vec![0.0; n]; max_len + 1];
        counts[0][target.0] = 1.0;
        for l in 1..=max_len {
            for t in 0..n {
                let mut c = 0.0;
                for &(_, next) in &self.adj[t] {
                    c += counts[l - 1][next.0];
                }
                counts[l][t] = c;
            }
        }
        counts
    }

    /// Samples a uniformly random label path of exactly `len` symbols from
    /// `from` to the target of `counts_to` (see [`Self::path_counts_to`]).
    pub fn sample_path(
        &self,
        rng: &mut Prng,
        from: TypeId,
        len: usize,
        counts_to: &[Vec<f64>],
    ) -> Option<Vec<Symbol>> {
        if counts_to[len][from.0] <= 0.0 {
            return None;
        }
        let mut path = Vec::with_capacity(len);
        let mut at = from;
        for remaining in (1..=len).rev() {
            let succs = &self.adj[at.0];
            let weights: Vec<f64> = succs
                .iter()
                .map(|&(_, next)| counts_to[remaining - 1][next.0])
                .collect();
            let pick = rng.choose_weighted(&weights)?;
            let (sym, next) = succs[pick];
            path.push(sym);
            at = next;
        }
        Some(path)
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Distribution, Occurrence, SchemaBuilder};

    /// The running-example schema (Examples 3.3 / 5.1 / Fig. 8).
    fn example_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let t1 = b.node_type("T1", Occurrence::Proportion(0.6));
        let t2 = b.node_type("T2", Occurrence::Proportion(0.2));
        let t3 = b.node_type("T3", Occurrence::Fixed(1));
        let a = b.predicate("a", None);
        let bb = b.predicate("b", None);
        b.edge(
            t1,
            a,
            t1,
            Distribution::gaussian(2.0, 1.0),
            Distribution::zipfian(2.5),
        );
        b.edge(
            t1,
            bb,
            t2,
            Distribution::uniform(1, 2),
            Distribution::gaussian(1.0, 0.5),
        );
        b.edge(
            t2,
            bb,
            t2,
            Distribution::gaussian(1.0, 0.5),
            Distribution::NonSpecified,
        );
        b.edge(
            t2,
            bb,
            t3,
            Distribution::NonSpecified,
            Distribution::uniform(1, 1),
        );
        b.build().unwrap()
    }

    fn ids() -> (TypeId, TypeId, TypeId) {
        (TypeId(0), TypeId(1), TypeId(2))
    }

    #[test]
    fn schema_graph_validity() {
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (t1, _, t3) = ids();
        // T1 grows: (N,·,N) and (1,<,N) triples valid; (1,=,1) not.
        assert!(gs.is_valid(gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many))));
        assert!(gs.is_valid(gs.node(t1, SelTriple::new(Card::One, SelOp::Less, Card::Many))));
        assert!(!gs.is_valid(gs.node(t1, SelTriple::new(Card::One, SelOp::Eq, Card::One))));
        // T3 fixed: only (1,=,1) and (N,>,1).
        assert!(gs.is_valid(gs.node(t3, SelTriple::new(Card::One, SelOp::Eq, Card::One))));
        assert!(gs.is_valid(gs.node(t3, SelTriple::new(Card::Many, SelOp::Greater, Card::One))));
        assert!(!gs.is_valid(gs.node(t3, SelTriple::new(Card::Many, SelOp::Eq, Card::Many))));
    }

    #[test]
    fn fig_8_a_edge_from_identity_to_less() {
        // Fig. 8 / Example 5.2: (T1,(N,=,N)) --a--> (T1,(N,<,N)) because
        // (N,=,N)·(N,<,N) = (N,<,N).
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (t1, ..) = ids();
        let from = gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many));
        let to = gs.node(t1, SelTriple::new(Card::Many, SelOp::Less, Card::Many));
        let a = Symbol::forward(crate::schema::PredicateId(0));
        assert!(gs
            .successors(from)
            .iter()
            .any(|&(sym, v)| sym == a && v == to.0));
    }

    #[test]
    fn fig_8_diamond_via_a_inverse() {
        // (T1,(N,<,N)) --a⁻--> (T1,(N,◇,N)): < · > = ◇.
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (t1, ..) = ids();
        let from = gs.node(t1, SelTriple::new(Card::Many, SelOp::Less, Card::Many));
        let to = gs.node(t1, SelTriple::new(Card::Many, SelOp::Diamond, Card::Many));
        let a_inv = Symbol::inverse(crate::schema::PredicateId(0));
        assert!(gs
            .successors(from)
            .iter()
            .any(|&(sym, v)| sym == a_inv && v == to.0));
    }

    #[test]
    fn fig_8_cross_from_t3_back_into_t2() {
        // (T3,(N,>,1)) --b⁻--> (T2,(N,×,N)): (N,>,1)·(1,<,N) = (N,×,N).
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (_, t2, t3) = ids();
        let from = gs.node(t3, SelTriple::new(Card::Many, SelOp::Greater, Card::One));
        let to = gs.node(t2, SelTriple::new(Card::Many, SelOp::Cross, Card::Many));
        let b_inv = Symbol::inverse(crate::schema::PredicateId(1));
        assert!(gs
            .successors(from)
            .iter()
            .any(|&(sym, v)| sym == b_inv && v == to.0));
    }

    #[test]
    fn distance_matrix_shortest_paths() {
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (t1, t2, _) = ids();
        let d = gs.distance_matrix();
        let id1 = gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many));
        let cross2 = gs.node(t2, SelTriple::new(Card::Many, SelOp::Cross, Card::Many));
        // b·b·b⁻ realizes it in 3 steps (Example 5.3) and nothing shorter can.
        assert_eq!(d[id1.0][cross2.0], Some(3));
        assert_eq!(d[id1.0][id1.0], Some(0));
        // From a × node one can never return to the identity class.
        assert_eq!(d[cross2.0][id1.0], None);
    }

    #[test]
    fn fig_9_selectivity_graph_edges() {
        // Example 5.3 with l_max = 4: edge (T1,(N,=,N)) → (T2,(N,×,N))
        // exists; the reverse edge does not.
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let gsel = SelectivityGraph::build(&gs, 1, 4);
        let (t1, t2, _) = ids();
        let id1 = gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many));
        let cross2 = gs.node(t2, SelTriple::new(Card::Many, SelOp::Cross, Card::Many));
        assert!(gsel.has_edge(id1, cross2));
        assert!(!gsel.has_edge(cross2, id1));
    }

    #[test]
    fn gsel_respects_lmin() {
        // With l_min = l_max = 1, only single-symbol transitions survive, so
        // the (=) → (×) edge (which needs 2+ symbols) must vanish.
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let gsel = SelectivityGraph::build(&gs, 1, 1);
        let (t1, t2, _) = ids();
        let id1 = gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many));
        let cross2 = gs.node(t2, SelTriple::new(Card::Many, SelOp::Cross, Card::Many));
        assert!(!gsel.has_edge(id1, cross2));
        // But the single-symbol (=) → (<) edge via `a` survives.
        let less1 = gs.node(t1, SelTriple::new(Card::Many, SelOp::Less, Card::Many));
        assert!(gsel.has_edge(id1, less1));
    }

    #[test]
    fn chain_sampler_reaches_quadratic() {
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let gsel = SelectivityGraph::build(&gs, 1, 4);
        let sampler = ChainSampler::new(&gs, &gsel, SelectivityClass::Quadratic, 3);
        assert!(
            sampler.feasible(1) > 0.0,
            "one conjunct suffices with l_max=4"
        );
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..50 {
            let nodes = sampler.sample(&gsel, &mut rng, 2).expect("feasible");
            assert_eq!(nodes.len(), 3);
            let last = *nodes.last().unwrap();
            assert_eq!(
                SelectivityClass::of_triple(gs.triple_of(last)),
                SelectivityClass::Quadratic
            );
            let first = gs.triple_of(nodes[0]);
            assert_eq!(first.op, SelOp::Eq, "chains start at identity nodes");
            // Consecutive nodes are G_sel edges.
            for w in nodes.windows(2) {
                assert!(gsel.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn chain_sampler_constant_needs_fixed_types() {
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let gsel = SelectivityGraph::build(&gs, 1, 4);
        let sampler = ChainSampler::new(&gs, &gsel, SelectivityClass::Constant, 3);
        // Constant chains must start AND end at the fixed type T3's
        // (1,=,1)-node. T3 has no outgoing single-symbol moves that return
        // to a (1,·,1) class here, except via b⁻…b round trips of length 2.
        let mut rng = Prng::seed_from_u64(6);
        if sampler.feasible(1) > 0.0 {
            let nodes = sampler.sample(&gsel, &mut rng, 1).unwrap();
            let first = gs.triple_of(nodes[0]);
            assert_eq!(first, SelTriple::new(Card::One, SelOp::Eq, Card::One));
        }
    }

    #[test]
    fn path_counts_and_sampling_connect() {
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (t1, t2, _) = ids();
        let from = gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many));
        let to = gs.node(t2, SelTriple::new(Card::Many, SelOp::Cross, Card::Many));
        let counts = gs.path_counts_to(to, 4);
        assert!(counts[3][from.0] > 0.0, "b·b·b⁻ is a length-3 witness");
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..20 {
            let path = gs.sample_path(&mut rng, from, 3, &counts).expect("exists");
            assert_eq!(path.len(), 3);
            // A label may lead to several G_S successors (the same symbol
            // can reach different types), so walk the *set* of possible
            // nodes; the target must be among the final possibilities.
            let mut frontier = vec![from.0];
            for sym in &path {
                let mut next: Vec<usize> = frontier
                    .iter()
                    .flat_map(|&u| {
                        gs.successors(GsNodeId(u))
                            .iter()
                            .filter(|&&(s, _)| s == *sym)
                            .map(|&(_, v)| v)
                    })
                    .collect();
                next.sort_unstable();
                next.dedup();
                assert!(!next.is_empty(), "sampled symbol must be a valid move");
                frontier = next;
            }
            assert!(
                frontier.contains(&to.0),
                "target reachable via sampled labels"
            );
        }
    }

    #[test]
    fn sample_path_infeasible_is_none() {
        let schema = example_schema();
        let gs = SchemaGraph::build(&schema);
        let (t1, t2, _) = ids();
        let from = gs.node(t1, SelTriple::new(Card::Many, SelOp::Eq, Card::Many));
        let to = gs.node(t2, SelTriple::new(Card::Many, SelOp::Cross, Card::Many));
        let counts = gs.path_counts_to(to, 2);
        let mut rng = Prng::seed_from_u64(8);
        assert!(gs.sample_path(&mut rng, from, 1, &counts).is_none());
    }

    #[test]
    fn type_graph_walks_are_schema_consistent() {
        let schema = example_schema();
        let tg = TypeGraph::build(&schema);
        let (t1, ..) = ids();
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..50 {
            if let Some((path, end)) = tg.random_walk(&mut rng, t1, 3) {
                assert_eq!(path.len(), 3);
                // A symbol may admit several type transitions; track the
                // set of reachable types and check the reported end type.
                let mut frontier = vec![t1];
                for sym in path {
                    let mut next: Vec<TypeId> = frontier
                        .iter()
                        .flat_map(|&t| {
                            tg.successors(t)
                                .iter()
                                .filter(|&&(s, _)| s == sym)
                                .map(|&(_, t2)| t2)
                        })
                        .collect();
                    next.sort_unstable();
                    next.dedup();
                    assert!(!next.is_empty(), "walk steps must be type-graph edges");
                    frontier = next;
                }
                assert!(frontier.contains(&end));
            }
        }
    }

    #[test]
    fn type_graph_skips_forbidden_edges() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(5));
        let t = b.node_type("t", Occurrence::Fixed(5));
        let p = b.predicate("p", None);
        b.constraint(crate::schema::EdgeConstraint::none(s, p, t));
        let schema = b.build().unwrap();
        let tg = TypeGraph::build(&schema);
        assert!(tg.successors(s).is_empty());
        assert!(tg.successors(t).is_empty());
    }
}
