//! Schema-driven selectivity estimation (Section 5.2).
//!
//! The innovation at the core of gMark: estimating, *from the schema alone*,
//! whether a binary query's result size grows like `|G|^0` (constant),
//! `|G|^1` (linear), or `|G|^2` (quadratic) — and conversely, generating
//! queries that land in a requested class. The machinery:
//!
//! * [`algebra`] — selectivity classes `(t1, o, t2)` with
//!   `t ∈ {1, N}`, `o ∈ {=, <, >, ◇, ×}`, their disjunction/concatenation
//!   algebra (Fig. 7), base classes of schema predicates, and whole-query
//!   estimation;
//! * [`graph`] — the three data structures of Section 5.2.3: the schema
//!   graph `G_S`, the distance matrix `D`, and the selectivity graph
//!   `G_sel`, plus the `nb_path` saturation algorithm for drawing
//!   selectivity-respecting paths uniformly at random.

pub mod algebra;
pub mod graph;

pub use algebra::{Card, Estimator, SelOp, SelTriple};
pub use graph::{GsNodeId, SchemaGraph, SelectivityGraph};

/// The three practical query classes of Section 5.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SelectivityClass {
    /// `α ≈ 0`: the result barely grows with the graph.
    Constant,
    /// `α ≈ 1`: the result grows like the number of nodes.
    Linear,
    /// `α ≈ 2`: the result grows like the square of the number of nodes.
    Quadratic,
}

impl SelectivityClass {
    /// All classes, in the paper's order.
    pub const ALL: [SelectivityClass; 3] = [
        SelectivityClass::Constant,
        SelectivityClass::Linear,
        SelectivityClass::Quadratic,
    ];

    /// The target exponent `α` of this class.
    pub fn alpha(self) -> u8 {
        match self {
            SelectivityClass::Constant => 0,
            SelectivityClass::Linear => 1,
            SelectivityClass::Quadratic => 2,
        }
    }

    /// The class of an estimated selectivity triple (Section 5.2.2, last
    /// paragraph): `(1,=,1) → 0`, `(N,×,N) → 2`, all else `→ 1`.
    pub fn of_triple(triple: SelTriple) -> SelectivityClass {
        match triple.alpha() {
            0 => SelectivityClass::Constant,
            2 => SelectivityClass::Quadratic,
            _ => SelectivityClass::Linear,
        }
    }

    /// Parses the names used in configuration files.
    pub fn parse(s: &str) -> Option<SelectivityClass> {
        match s {
            "constant" => Some(SelectivityClass::Constant),
            "linear" => Some(SelectivityClass::Linear),
            "quadratic" => Some(SelectivityClass::Quadratic),
            _ => None,
        }
    }
}

impl std::fmt::Display for SelectivityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelectivityClass::Constant => "constant",
            SelectivityClass::Linear => "linear",
            SelectivityClass::Quadratic => "quadratic",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_alpha_values() {
        assert_eq!(SelectivityClass::Constant.alpha(), 0);
        assert_eq!(SelectivityClass::Linear.alpha(), 1);
        assert_eq!(SelectivityClass::Quadratic.alpha(), 2);
    }

    #[test]
    fn parse_round_trips() {
        for c in SelectivityClass::ALL {
            assert_eq!(SelectivityClass::parse(&c.to_string()), Some(c));
        }
        assert_eq!(SelectivityClass::parse("cubic"), None);
    }
}
