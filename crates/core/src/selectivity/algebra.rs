//! The selectivity-class algebra (Sections 5.2.1–5.2.2; Table 1 and Fig. 7).
//!
//! For a binary query `Q` and node types `A`, `B`, the *selectivity class*
//! `sel_{A,B}(Q)` is a triple `(t_A, o, t_B)` with `t = Type(·) ∈ {1, N}`
//! (does the type's population grow with the graph?) and an operation
//! `o ∈ {=, <, >, ◇, ×}` describing how result pairs fan out:
//!
//! | `o` | per-`n1` fan | per-`n2` fan | α |
//! |-----|--------------|--------------|---|
//! | `=` | bounded      | bounded      | 0 or 1 |
//! | `<` | bounded      | not bounded  | 1 |
//! | `>` | not bounded  | bounded      | 1 |
//! | `◇` | not bounded  | not bounded  | 1 |
//! | `×` | not bounded  | not bounded  | 2 |
//!
//! Classes compose under disjunction `+` and concatenation `·` according to
//! the two tables of Fig. 7, which this module encodes verbatim (the
//! concatenation table is read in *(column, row)* order, validated against
//! the paper's worked examples: `< · > = ◇`, `> · < = ×`, Example 5.4).

use crate::query::{PathExpr, Query, RegularExpr, Rule, Symbol, Var};
use crate::schema::{Schema, TypeId};
use rustc_hash::FxHashMap;

/// Cardinality side of a selectivity triple: `Type(T) = 1` (fixed) or `N`
/// (grows with the graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Card {
    /// `Type(T) = 1`: a fixed-size type (occurrence constraint is a constant).
    One,
    /// `Type(T) = N`: a type growing with the graph (proportional constraint).
    Many,
}

impl Card {
    /// The cardinality of a schema type.
    pub fn of(schema: &Schema, t: TypeId) -> Card {
        if schema.type_grows(t) {
            Card::Many
        } else {
            Card::One
        }
    }
}

impl std::fmt::Display for Card {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Card::One => write!(f, "1"),
            Card::Many => write!(f, "N"),
        }
    }
}

/// The five algebraic operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SelOp {
    /// `=` — both fans bounded.
    Eq,
    /// `<` — e.g. a Zipfian out-distribution (`(language, user)` pairs).
    Less,
    /// `>` — symmetric to `<`.
    Greater,
    /// `◇` — `<` followed by `>` ("pairs of users known by someone in
    /// common"): both fans unbounded but the result stays linear.
    Diamond,
    /// `×` — `>` followed by `<`: a Cartesian-product-like blow-up; α = 2.
    Cross,
}

impl SelOp {
    /// All operations in table order.
    pub const ALL: [SelOp; 5] = [
        SelOp::Eq,
        SelOp::Less,
        SelOp::Greater,
        SelOp::Diamond,
        SelOp::Cross,
    ];

    fn idx(self) -> usize {
        match self {
            SelOp::Eq => 0,
            SelOp::Less => 1,
            SelOp::Greater => 2,
            SelOp::Diamond => 3,
            SelOp::Cross => 4,
        }
    }

    /// Disjunction table, Fig. 7(a). Symmetric.
    pub fn disjoin(self, other: SelOp) -> SelOp {
        use SelOp::*;
        // Rows/columns ordered =, <, >, ◇, ×.
        const TABLE: [[SelOp; 5]; 5] = [
            [Eq, Less, Greater, Diamond, Cross],
            [Less, Less, Diamond, Diamond, Cross],
            [Greater, Diamond, Greater, Diamond, Cross],
            [Diamond, Diamond, Diamond, Diamond, Cross],
            [Cross, Cross, Cross, Cross, Cross],
        ];
        TABLE[self.idx()][other.idx()]
    }

    /// Concatenation table, Fig. 7(b), read in (column, row) order:
    /// `self` (the first operand) selects the column, `other` (the second)
    /// selects the row.
    pub fn concat(self, other: SelOp) -> SelOp {
        use SelOp::*;
        // TABLE[row = o2][col = o1], rows/cols ordered =, <, >, ◇, ×.
        const TABLE: [[SelOp; 5]; 5] = [
            [Eq, Less, Greater, Diamond, Cross],
            [Less, Less, Cross, Cross, Cross],
            [Greater, Diamond, Greater, Diamond, Cross],
            [Diamond, Diamond, Cross, Cross, Cross],
            [Cross, Cross, Cross, Cross, Cross],
        ];
        TABLE[other.idx()][self.idx()]
    }

    /// The operation of the inverse query: `<` and `>` swap; `=`, `◇`, `×`
    /// are direction-symmetric.
    pub fn inverse(self) -> SelOp {
        match self {
            SelOp::Less => SelOp::Greater,
            SelOp::Greater => SelOp::Less,
            o => o,
        }
    }
}

impl std::fmt::Display for SelOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelOp::Eq => "=",
            SelOp::Less => "<",
            SelOp::Greater => ">",
            SelOp::Diamond => "\u{25C7}",
            SelOp::Cross => "\u{00D7}",
        };
        write!(f, "{s}")
    }
}

/// A selectivity triple `(t1, o, t2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SelTriple {
    /// Left cardinality `t1`.
    pub left: Card,
    /// Operation `o`.
    pub op: SelOp,
    /// Right cardinality `t2`.
    pub right: Card,
}

impl SelTriple {
    /// Creates and normalizes a triple.
    pub fn new(left: Card, op: SelOp, right: Card) -> SelTriple {
        SelTriple { left, op, right }.normalized()
    }

    /// Normalization (Section 5.2.2, final remark): when an endpoint has
    /// cardinality 1, "the operator solely relies on the other one", making
    /// `(1,=,1)`, `(1,<,N)`, `(N,>,1)` the only permitted triples containing
    /// a 1; any other such triple produced by the algebra is coerced.
    pub fn normalized(self) -> SelTriple {
        match (self.left, self.right) {
            (Card::One, Card::One) => SelTriple {
                left: Card::One,
                op: SelOp::Eq,
                right: Card::One,
            },
            (Card::One, Card::Many) => SelTriple {
                left: Card::One,
                op: SelOp::Less,
                right: Card::Many,
            },
            (Card::Many, Card::One) => SelTriple {
                left: Card::Many,
                op: SelOp::Greater,
                right: Card::One,
            },
            (Card::Many, Card::Many) => self,
        }
    }

    /// The identity (ε) triple of a type: `sel_{A,A}(ε) = (Type(A), =, Type(A))`.
    pub fn identity(card: Card) -> SelTriple {
        SelTriple {
            left: card,
            op: SelOp::Eq,
            right: card,
        }
    }

    /// Whether this triple is already in normal form.
    pub fn is_permitted(self) -> bool {
        self == self.normalized()
    }

    /// All eight permitted triples.
    pub fn permitted() -> Vec<SelTriple> {
        let mut v = vec![
            SelTriple {
                left: Card::One,
                op: SelOp::Eq,
                right: Card::One,
            },
            SelTriple {
                left: Card::One,
                op: SelOp::Less,
                right: Card::Many,
            },
            SelTriple {
                left: Card::Many,
                op: SelOp::Greater,
                right: Card::One,
            },
        ];
        for op in SelOp::ALL {
            v.push(SelTriple {
                left: Card::Many,
                op,
                right: Card::Many,
            });
        }
        v
    }

    /// Concatenation of triples (middle cardinalities must agree).
    pub fn concat(self, other: SelTriple) -> SelTriple {
        debug_assert_eq!(
            self.right, other.left,
            "concat requires matching middle type card"
        );
        SelTriple::new(self.left, self.op.concat(other.op), other.right)
    }

    /// Disjunction of triples (endpoint cardinalities must agree).
    pub fn disjoin(self, other: SelTriple) -> SelTriple {
        debug_assert_eq!(self.left, other.left);
        debug_assert_eq!(self.right, other.right);
        SelTriple::new(self.left, self.op.disjoin(other.op), self.right)
    }

    /// The triple of the inverse query.
    pub fn inverse(self) -> SelTriple {
        SelTriple::new(self.right, self.op.inverse(), self.left)
    }

    /// The estimated exponent: `(1,=,1) → 0`, `(N,×,N) → 2`, else `1`.
    pub fn alpha(self) -> u8 {
        match (self.left, self.op, self.right) {
            (Card::One, SelOp::Eq, Card::One) => 0,
            (Card::Many, SelOp::Cross, Card::Many) => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for SelTriple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.left, self.op, self.right)
    }
}

/// Map from `(A, B)` node-type pairs to the selectivity class of a query
/// restricted to those endpoint types.
pub type ClassMap = FxHashMap<(TypeId, TypeId), SelTriple>;

/// Schema-driven selectivity estimator for UCRPQ queries.
///
/// Implements `sel_{A,B}(·)` for symbols, paths, disjunctions, stars
/// (Section 5.2.2) and whole binary chain rules, and the overall
/// `α̂(Q) = max_{A,B} α̂_{A,B}(Q)`.
pub struct Estimator<'a> {
    schema: &'a Schema,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator over a schema.
    pub fn new(schema: &'a Schema) -> Self {
        Estimator { schema }
    }

    /// Base class of a symbol between two types, when the schema allows the
    /// corresponding edge (Example 5.1):
    ///
    /// * Zipfian out-distribution ⇒ `<`; Zipfian in-distribution ⇒ `>`;
    ///   both ⇒ `◇`; neither ⇒ `=` — then normalized against the endpoint
    ///   cardinalities.
    /// * `sel_{A,B}(a⁻)` is the inverse of `sel_{B,A}(a)`.
    pub fn symbol_class(&self, a: TypeId, b: TypeId, s: Symbol) -> Option<SelTriple> {
        if s.inverse {
            return self.symbol_class(b, a, s.flipped()).map(SelTriple::inverse);
        }
        // Several constraints may connect A --a--> B (rare but legal);
        // disjoin their classes.
        let mut acc: Option<SelTriple> = None;
        for c in self.schema.constraints() {
            if c.source == a && c.target == b && c.predicate == s.predicate {
                let op = match (c.dout.is_zipfian(), c.din.is_zipfian()) {
                    (true, false) => SelOp::Less,
                    (false, true) => SelOp::Greater,
                    (true, true) => SelOp::Diamond,
                    (false, false) => SelOp::Eq,
                };
                let t = SelTriple::new(Card::of(self.schema, a), op, Card::of(self.schema, b));
                acc = Some(match acc {
                    None => t,
                    Some(prev) => prev.disjoin(t),
                });
            }
        }
        acc
    }

    /// Classes of a path expression for all endpoint type pairs:
    /// `sel_{A,B}(p1·p2) = Σ_C sel_{A,C}(p1) · sel_{C,B}(p2)` where the sum
    /// is the disjunction aggregation.
    pub fn path_classes(&self, path: &PathExpr) -> ClassMap {
        let mut acc: ClassMap = FxHashMap::default();
        // ε: identity on every type.
        for t in self.schema.types() {
            acc.insert((t, t), SelTriple::identity(Card::of(self.schema, t)));
        }
        for &sym in &path.0 {
            let mut next: ClassMap = FxHashMap::default();
            for (&(a, c), &t1) in &acc {
                for b in self.schema.types() {
                    if let Some(t2) = self.symbol_class(c, b, sym) {
                        let composed = t1.concat(t2);
                        next.entry((a, b))
                            .and_modify(|t| *t = t.disjoin(composed))
                            .or_insert(composed);
                    }
                }
            }
            acc = next;
            if acc.is_empty() {
                break; // path not realizable in the schema
            }
        }
        acc
    }

    /// Classes of a regular expression (Section 5.2.2):
    /// disjuncts are merged with `+`; a star keeps only the `(A, A)` entries
    /// and squares them (`sel_{A,A}(p*) = sel_{A,A}(p) · sel_{A,A}(p)`).
    pub fn expr_classes(&self, expr: &RegularExpr) -> ClassMap {
        let mut acc: ClassMap = FxHashMap::default();
        for d in &expr.disjuncts {
            for ((a, b), t) in self.path_classes(d) {
                acc.entry((a, b))
                    .and_modify(|prev| *prev = prev.disjoin(t))
                    .or_insert(t);
            }
        }
        if expr.starred {
            let mut starred: ClassMap = FxHashMap::default();
            for (&(a, b), &t) in &acc {
                if a == b {
                    starred.insert((a, b), t.concat(t));
                }
            }
            starred
        } else {
            acc
        }
    }

    /// Classes of a binary chain rule: the body must form a simple path from
    /// `head[0]` to `head[1]` (traversing conjuncts forward or reversed);
    /// conjunct classes are concatenation-composed along the chain.
    ///
    /// Returns `None` for rules that are not binary chains — the paper
    /// guarantees selectivity estimation only for binary queries, and its
    /// experiments use chains (Section 7.1, remark iii).
    pub fn rule_classes(&self, rule: &Rule) -> Option<ClassMap> {
        if rule.head.len() != 2 {
            return None;
        }
        let chain = order_as_chain(rule, rule.head[0], rule.head[1])?;
        let mut acc: Option<ClassMap> = None;
        for (conjunct_idx, reversed) in chain {
            let expr = &rule.body[conjunct_idx].expr;
            let classes = if reversed {
                let rev = RegularExpr {
                    disjuncts: expr.disjuncts.iter().map(PathExpr::reversed).collect(),
                    starred: expr.starred,
                };
                self.expr_classes(&rev)
            } else {
                self.expr_classes(expr)
            };
            acc = Some(match acc {
                None => classes,
                Some(prev) => {
                    let mut next: ClassMap = FxHashMap::default();
                    for (&(a, c), &t1) in &prev {
                        for (&(c2, b), &t2) in &classes {
                            if c == c2 {
                                let composed = t1.concat(t2);
                                next.entry((a, b))
                                    .and_modify(|t| *t = t.disjoin(composed))
                                    .or_insert(composed);
                            }
                        }
                    }
                    next
                }
            });
        }
        acc
    }

    /// Overall estimated exponent of a binary query:
    /// `α̂(Q) = max_{A,B} α̂_{A,B}(Q)` over all rules; `None` when no rule is
    /// a binary chain realizable in the schema.
    pub fn alpha(&self, query: &Query) -> Option<u8> {
        let mut best: Option<u8> = None;
        for rule in &query.rules {
            if let Some(classes) = self.rule_classes(rule) {
                for t in classes.values() {
                    let a = t.alpha();
                    best = Some(best.map_or(a, |b| b.max(a)));
                }
            }
        }
        best
    }

    /// The possible node types of each variable of a rule, inferred by
    /// intersecting the endpoint types its conjuncts admit.
    pub fn variable_types(&self, rule: &Rule) -> FxHashMap<Var, Vec<TypeId>> {
        let all: Vec<TypeId> = self.schema.types().collect();
        let mut possible: FxHashMap<Var, Vec<TypeId>> = FxHashMap::default();
        for v in rule.body_vars() {
            possible.insert(v, all.clone());
        }
        for c in &rule.body {
            let classes = self.expr_classes(&c.expr);
            let mut srcs: Vec<TypeId> = classes.keys().map(|&(a, _)| a).collect();
            let mut trgs: Vec<TypeId> = classes.keys().map(|&(_, b)| b).collect();
            srcs.sort_unstable();
            srcs.dedup();
            trgs.sort_unstable();
            trgs.dedup();
            if let Some(p) = possible.get_mut(&c.src) {
                p.retain(|t| srcs.contains(t));
            }
            if let Some(p) = possible.get_mut(&c.trg) {
                p.retain(|t| trgs.contains(t));
            }
        }
        possible
    }

    /// A conservative upper bound on the selectivity exponent of an
    /// **n-ary** rule — the extension the paper lists as future work
    /// ("extending the selectivity estimation to n-ary queries").
    ///
    /// Soundness argument: a projection variable whose possible types are
    /// all fixed (`Type = 1`) ranges over `O(1)` values, contributing 0 to
    /// the exponent; any other variable contributes at most 1 (it ranges
    /// over `O(n)` nodes). The result size is bounded by the product of
    /// per-variable ranges, so `α ≤ Σ contributions`. When two adjacent
    /// head variables are the endpoints of a chain whose binary class is
    /// not `×`, their joint contribution is at most 1 and the bound
    /// tightens accordingly.
    pub fn alpha_nary_bound(&self, rule: &Rule) -> u8 {
        let possible = self.variable_types(rule);
        let grows = |v: Var| -> u8 {
            match possible.get(&v) {
                Some(types) if !types.is_empty() => {
                    u8::from(types.iter().any(|&t| self.schema.type_grows(t)))
                }
                // Unconstrained or unrealizable: assume it can grow.
                _ => 1,
            }
        };
        let mut total: u8 = 0;
        let mut i = 0;
        while i < rule.head.len() {
            let v = rule.head[i];
            // Pairwise tightening: if this and the next head variable form
            // a non-× binary chain, they jointly contribute ≤ max(1, …).
            if i + 1 < rule.head.len() {
                let w = rule.head[i + 1];
                let pair_rule = Rule {
                    head: vec![v, w],
                    body: rule.body.clone(),
                };
                if let Some(classes) = self.rule_classes(&pair_rule) {
                    let pair_alpha = classes.values().map(|t| t.alpha()).max().unwrap_or(2);
                    if pair_alpha < grows(v) + grows(w) {
                        total = total.saturating_add(pair_alpha);
                        i += 2;
                        continue;
                    }
                }
            }
            total = total.saturating_add(grows(v));
            i += 1;
        }
        total
    }
}

/// Orders a binary rule's body as a chain from `from` to `to`; each element
/// is `(conjunct index, reversed?)`. Returns `None` if the body is not a
/// simple path between the two variables using every conjunct exactly once.
fn order_as_chain(rule: &Rule, from: Var, to: Var) -> Option<Vec<(usize, bool)>> {
    let n = rule.body.len();
    let mut used = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut at = from;
    for _ in 0..n {
        let mut found = None;
        for (i, c) in rule.body.iter().enumerate() {
            if used[i] {
                continue;
            }
            if c.src == at {
                found = Some((i, false, c.trg));
                break;
            }
            if c.trg == at {
                found = Some((i, true, c.src));
                break;
            }
        }
        let (i, rev, next) = found?;
        used[i] = true;
        order.push((i, rev));
        at = next;
    }
    if at == to {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Conjunct;
    use crate::schema::{Distribution, Occurrence, PredicateId, SchemaBuilder};

    use Card::*;
    use SelOp::*;

    #[test]
    fn disjunction_table_matches_fig_7a() {
        // Spot checks straight from the printed table.
        assert_eq!(Eq.disjoin(Eq), Eq);
        assert_eq!(Eq.disjoin(Less), Less);
        assert_eq!(Less.disjoin(Greater), Diamond);
        assert_eq!(Less.disjoin(Diamond), Diamond);
        assert_eq!(Greater.disjoin(Greater), Greater);
        assert_eq!(Diamond.disjoin(Diamond), Diamond);
        assert_eq!(Cross.disjoin(Eq), Cross);
        assert_eq!(Diamond.disjoin(Cross), Cross);
    }

    #[test]
    fn disjunction_is_commutative_and_idempotent() {
        for a in SelOp::ALL {
            assert_eq!(a.disjoin(a), a, "idempotence of {a}");
            for b in SelOp::ALL {
                assert_eq!(a.disjoin(b), b.disjoin(a), "commutativity {a},{b}");
            }
        }
    }

    #[test]
    fn concatenation_table_matches_fig_7b() {
        // The paper's own reading hints:
        // "× is the result of a > followed by a <"
        assert_eq!(Greater.concat(Less), Cross);
        // "◇ is the result of a < followed by a >"
        assert_eq!(Less.concat(Greater), Diamond);
        // Identity row/column.
        for o in SelOp::ALL {
            assert_eq!(Eq.concat(o), o);
            assert_eq!(o.concat(Eq), o);
        }
        // Remaining entries of the printed table.
        assert_eq!(Less.concat(Less), Less);
        assert_eq!(Less.concat(Diamond), Diamond);
        assert_eq!(Less.concat(Cross), Cross);
        assert_eq!(Greater.concat(Greater), Greater);
        assert_eq!(Greater.concat(Diamond), Cross);
        assert_eq!(Diamond.concat(Less), Cross);
        assert_eq!(Diamond.concat(Greater), Diamond);
        assert_eq!(Diamond.concat(Diamond), Cross);
        for o in SelOp::ALL {
            assert_eq!(Cross.concat(o), Cross);
            assert_eq!(o.concat(Cross), Cross);
        }
    }

    #[test]
    fn example_5_4_composition() {
        // (N,=,N) · (N,>,N) · (N,=,N) = (N,>,N): a linear query.
        let e = SelTriple::new(Many, Eq, Many);
        let g = SelTriple::new(Many, Greater, Many);
        let result = e.concat(g).concat(e);
        assert_eq!(result, SelTriple::new(Many, Greater, Many));
        assert_eq!(result.alpha(), 1);
    }

    #[test]
    fn normalization_rules() {
        // (1,×,1) and (1,◇,1) must normalize to (1,=,1).
        assert_eq!(
            SelTriple {
                left: One,
                op: Cross,
                right: One
            }
            .normalized(),
            SelTriple {
                left: One,
                op: Eq,
                right: One
            }
        );
        assert_eq!(
            SelTriple {
                left: One,
                op: Diamond,
                right: One
            }
            .normalized(),
            SelTriple {
                left: One,
                op: Eq,
                right: One
            }
        );
        // Any (1,·,N) coerces to (1,<,N); any (N,·,1) to (N,>,1).
        assert_eq!(
            SelTriple {
                left: One,
                op: Cross,
                right: Many
            }
            .normalized(),
            SelTriple {
                left: One,
                op: Less,
                right: Many
            }
        );
        assert_eq!(
            SelTriple {
                left: Many,
                op: Diamond,
                right: One
            }
            .normalized(),
            SelTriple {
                left: Many,
                op: Greater,
                right: One
            }
        );
        // (N,·,N) is untouched.
        let t = SelTriple {
            left: Many,
            op: Diamond,
            right: Many,
        };
        assert_eq!(t.normalized(), t);
    }

    #[test]
    fn permitted_triples_are_exactly_eight() {
        let p = SelTriple::permitted();
        assert_eq!(p.len(), 8);
        assert!(p.iter().all(|t| t.is_permitted()));
    }

    #[test]
    fn alpha_of_triples() {
        assert_eq!(SelTriple::new(One, Eq, One).alpha(), 0);
        assert_eq!(SelTriple::new(Many, Cross, Many).alpha(), 2);
        assert_eq!(SelTriple::new(Many, Eq, Many).alpha(), 1);
        assert_eq!(SelTriple::new(One, Less, Many).alpha(), 1);
        assert_eq!(SelTriple::new(Many, Diamond, Many).alpha(), 1);
    }

    #[test]
    fn inverse_of_triples() {
        assert_eq!(
            SelTriple::new(Many, Less, Many).inverse(),
            SelTriple::new(Many, Greater, Many)
        );
        assert_eq!(
            SelTriple::new(One, Less, Many).inverse(),
            SelTriple::new(Many, Greater, One)
        );
        let d = SelTriple::new(Many, Diamond, Many);
        assert_eq!(d.inverse(), d);
    }

    /// The schema of Example 3.3 with the distributions of Example 5.1:
    /// η(T1,T1,a) = (gaussian, zipfian), η(T1,T2,b) = (uniform, gaussian),
    /// η(T2,T2,b) = (gaussian, ns), η(T2,T3,b) = (ns, uniform).
    fn example_5_1_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let t1 = b.node_type("T1", Occurrence::Proportion(0.6));
        let t2 = b.node_type("T2", Occurrence::Proportion(0.2));
        let t3 = b.node_type("T3", Occurrence::Fixed(1));
        let a = b.predicate("a", None);
        let bb = b.predicate("b", None);
        b.edge(
            t1,
            a,
            t1,
            Distribution::gaussian(2.0, 1.0),
            Distribution::zipfian(2.5),
        );
        b.edge(
            t1,
            bb,
            t2,
            Distribution::uniform(1, 2),
            Distribution::gaussian(1.0, 0.5),
        );
        b.edge(
            t2,
            bb,
            t2,
            Distribution::gaussian(1.0, 0.5),
            Distribution::NonSpecified,
        );
        b.edge(
            t2,
            bb,
            t3,
            Distribution::NonSpecified,
            Distribution::uniform(1, 1),
        );
        b.build().unwrap()
    }

    #[test]
    fn example_5_1_base_classes() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let t1 = TypeId(0);
        let t2 = TypeId(1);
        let t3 = TypeId(2);
        let a = Symbol::forward(PredicateId(0));
        let b = Symbol::forward(PredicateId(1));
        // sel_{T1,T1}(a) = (N,<,N), sel_{T1,T1}(a⁻) = (N,>,N)
        assert_eq!(
            est.symbol_class(t1, t1, a),
            Some(SelTriple::new(Many, Less, Many))
        );
        assert_eq!(
            est.symbol_class(t1, t1, a.flipped()),
            Some(SelTriple::new(Many, Greater, Many))
        );
        // sel_{T1,T2}(b) = (N,=,N) and its inverse
        assert_eq!(
            est.symbol_class(t1, t2, b),
            Some(SelTriple::new(Many, Eq, Many))
        );
        assert_eq!(
            est.symbol_class(t2, t1, b.flipped()),
            Some(SelTriple::new(Many, Eq, Many))
        );
        // sel_{T2,T2}(b) = (N,=,N)
        assert_eq!(
            est.symbol_class(t2, t2, b),
            Some(SelTriple::new(Many, Eq, Many))
        );
        // sel_{T2,T3}(b) = (N,>,1); sel_{T3,T2}(b⁻) = (1,<,N)
        assert_eq!(
            est.symbol_class(t2, t3, b),
            Some(SelTriple::new(Many, Greater, One))
        );
        assert_eq!(
            est.symbol_class(t3, t2, b.flipped()),
            Some(SelTriple::new(One, Less, Many))
        );
        // No a-edges from T2.
        assert_eq!(est.symbol_class(t2, t2, a), None);
    }

    #[test]
    fn path_classes_compose() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // a⁻ · a from T1 to T1: (N,>,N)·(N,<,N) = (N,×,N) — quadratic.
        let p = PathExpr(vec![a.flipped(), a]);
        let classes = est.path_classes(&p);
        assert_eq!(
            classes.get(&(TypeId(0), TypeId(0))),
            Some(&SelTriple::new(Many, Cross, Many))
        );
        // a · a⁻: (N,<,N)·(N,>,N) = (N,◇,N) — the "co-author" diamond.
        let p2 = PathExpr(vec![a, a.flipped()]);
        let classes2 = est.path_classes(&p2);
        assert_eq!(
            classes2.get(&(TypeId(0), TypeId(0))),
            Some(&SelTriple::new(Many, Diamond, Many))
        );
    }

    #[test]
    fn unrealizable_path_has_no_classes() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        let b = Symbol::forward(PredicateId(1));
        // b then a: b leads to T2/T3, but a only leaves T1 — impossible.
        let p = PathExpr(vec![b, a]);
        assert!(est.path_classes(&p).is_empty());
    }

    #[test]
    fn star_squares_the_loop_class() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // (a)* on T1: sel(a) = (N,<,N); squared: < · < = < (still linear).
        let e = RegularExpr::star(vec![PathExpr::single(a)]);
        let classes = est.expr_classes(&e);
        assert_eq!(
            classes.get(&(TypeId(0), TypeId(0))),
            Some(&SelTriple::new(Many, Less, Many))
        );
        // (a·a⁻)* : diamond squared = cross — the paper's quadratic
        // transitive-closure example (knows hubs).
        let e2 = RegularExpr::star(vec![PathExpr(vec![a, a.flipped()])]);
        let classes2 = est.expr_classes(&e2);
        assert_eq!(
            classes2.get(&(TypeId(0), TypeId(0))),
            Some(&SelTriple::new(Many, Cross, Many))
        );
    }

    #[test]
    fn star_drops_non_loop_entries() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let b = Symbol::forward(PredicateId(1));
        // b navigates T1→T2, T2→T2, T2→T3; under a star only the T2→T2
        // entry survives (input and output types must be equal).
        let e = RegularExpr::star(vec![PathExpr::single(b)]);
        let classes = est.expr_classes(&e);
        assert!(classes.contains_key(&(TypeId(1), TypeId(1))));
        assert!(!classes.contains_key(&(TypeId(0), TypeId(1))));
        assert!(!classes.contains_key(&(TypeId(1), TypeId(2))));
    }

    fn chain_rule(exprs: Vec<RegularExpr>) -> Rule {
        let n = exprs.len() as u32;
        Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        }
    }

    #[test]
    fn rule_alpha_quadratic_chain() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // (?x0, a⁻, ?x1), (?x1, a, ?x2): > then < = × ⇒ α = 2.
        let rule = chain_rule(vec![
            RegularExpr::symbol(a.flipped()),
            RegularExpr::symbol(a),
        ]);
        let q = Query::single(rule).unwrap();
        assert_eq!(est.alpha(&q), Some(2));
    }

    #[test]
    fn rule_alpha_constant_chain() {
        // Schema: two fixed types linked by a predicate — the
        // (country, language) example of Section 5.2.1.
        let mut b = SchemaBuilder::new();
        let country = b.node_type("country", Occurrence::Fixed(50));
        let language = b.node_type("language", Occurrence::Fixed(20));
        let spoken = b.predicate("spokenIn", None);
        b.edge(
            language,
            spoken,
            country,
            Distribution::uniform(0, 3),
            Distribution::uniform(1, 2),
        );
        let schema = b.build().unwrap();
        let est = Estimator::new(&schema);
        let rule = chain_rule(vec![RegularExpr::symbol(Symbol::forward(PredicateId(0)))]);
        let q = Query::single(rule).unwrap();
        assert_eq!(est.alpha(&q), Some(0));
    }

    #[test]
    fn rule_with_reversed_conjunct() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // Body lists (?x1, a, ?x0): traversed reversed from ?x0.
        let rule = Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(1),
                expr: RegularExpr::symbol(a),
                trg: Var(0),
            }],
        };
        let q = Query::single(rule).unwrap();
        // Reversed a is a⁻: (N,>,N) ⇒ α = 1.
        assert_eq!(est.alpha(&q), Some(1));
    }

    #[test]
    fn two_branch_star_is_still_a_chain() {
        // A 2-branch star *is* a path between its two leaves, so it can be
        // typed by traversing the first conjunct in reverse.
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        let rule = Rule {
            head: vec![Var(1), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(a),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(a),
                    trg: Var(2),
                },
            ],
        };
        // a⁻ then a: (N,>,N)·(N,<,N) = (N,×,N) — quadratic.
        let classes = est.rule_classes(&rule).expect("path between leaves");
        assert_eq!(
            classes.get(&(TypeId(0), TypeId(0))),
            Some(&SelTriple::new(Many, Cross, Many))
        );
    }

    #[test]
    fn non_chain_rule_is_unestimated() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // Three branches from a shared center: the body is not a simple
        // path between the two head variables (one conjunct stays unused).
        let rule = Rule {
            head: vec![Var(1), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(a),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(a),
                    trg: Var(2),
                },
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(a),
                    trg: Var(3),
                },
            ],
        };
        assert!(est.rule_classes(&rule).is_none());
    }

    #[test]
    fn variable_types_are_inferred() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // (?x0, a, ?x1): both ends can only be T1.
        let rule = chain_rule(vec![RegularExpr::symbol(a)]);
        let types = est.variable_types(&rule);
        assert_eq!(types[&Var(0)], vec![TypeId(0)]);
        assert_eq!(types[&Var(1)], vec![TypeId(0)]);
        // (?x0, b, ?x1): sources are T1 or T2, targets T2 or T3.
        let b = Symbol::forward(PredicateId(1));
        let rule = chain_rule(vec![RegularExpr::symbol(b)]);
        let types = est.variable_types(&rule);
        assert_eq!(types[&Var(0)], vec![TypeId(0), TypeId(1)]);
        assert_eq!(types[&Var(1)], vec![TypeId(1), TypeId(2)]);
    }

    #[test]
    fn nary_bound_counts_growing_variables() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        // Ternary head (?x0, ?x1, ?x2) over a 2-conjunct a-chain: all three
        // variables range over the growing T1 — bound 3, tightened to ≤ 2+1
        // by the pairwise chain refinement when applicable.
        let rule = Rule {
            head: vec![Var(0), Var(1), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(a),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(1),
                    expr: RegularExpr::symbol(a),
                    trg: Var(2),
                },
            ],
        };
        let bound = est.alpha_nary_bound(&rule);
        assert!((1..=3).contains(&bound), "bound {bound}");
        // The bound must dominate the true binary alpha of any projection
        // pair: (x0, x2) via a·a is (N,<,N)·(N,<,N) = < (alpha 1).
        assert!(bound >= 1);
    }

    #[test]
    fn nary_bound_zero_for_all_fixed_heads() {
        // All head variables over fixed types: bound 0.
        let mut b = SchemaBuilder::new();
        let c1 = b.node_type("c1", Occurrence::Fixed(5));
        let c2 = b.node_type("c2", Occurrence::Fixed(5));
        let p = b.predicate("p", None);
        b.edge(
            c1,
            p,
            c2,
            Distribution::uniform(0, 2),
            Distribution::uniform(0, 2),
        );
        let schema = b.build().unwrap();
        let est = Estimator::new(&schema);
        let rule = Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(Symbol::forward(PredicateId(0))),
                trg: Var(1),
            }],
        };
        assert_eq!(est.alpha_nary_bound(&rule), 0);
    }

    #[test]
    fn nary_bound_dominates_binary_alpha() {
        let schema = example_5_1_schema();
        let est = Estimator::new(&schema);
        let a = Symbol::forward(PredicateId(0));
        let rule = chain_rule(vec![
            RegularExpr::symbol(a.flipped()),
            RegularExpr::symbol(a),
        ]);
        let binary = est
            .rule_classes(&rule)
            .unwrap()
            .values()
            .map(|t| t.alpha())
            .max()
            .unwrap();
        assert!(est.alpha_nary_bound(&rule) >= binary);
    }

    #[test]
    fn concat_associativity_on_triples() {
        // The operation algebra should be associative on (N,·,N) triples —
        // a property the path composition relies on.
        for a in SelOp::ALL {
            for b in SelOp::ALL {
                for c in SelOp::ALL {
                    let left = a.concat(b).concat(c);
                    let right = a.concat(b.concat(c));
                    assert_eq!(left, right, "({a}·{b})·{c} != {a}·({b}·{c})");
                }
            }
        }
    }
}
