//! gMark core: schema-driven generation of graphs and query workloads.
//!
//! This crate implements the primary contribution of *gMark: Schema-Driven
//! Generation of Graphs and Queries* (Bagan, Bonifati, Ciucanu, Fletcher,
//! Lemay, Advokaat — ICDE 2017):
//!
//! * [`schema`] — graph schemas `S = (Σ, Θ, T, η)` and graph configurations
//!   `G = (n, S)` (Definitions 3.1–3.2), including the in/out-degree
//!   consistency check of Section 4;
//! * [`gen`] — the linear-time heuristic graph generator of Fig. 5;
//! * [`query`] — the UCRPQ query model of Section 3.3 (rules, conjuncts,
//!   disjuncts, outermost-star regular expressions);
//! * [`selectivity`] — the schema-driven selectivity estimation machinery of
//!   Section 5.2: the class algebra (Table 1, Fig. 7), the schema graph
//!   `G_S`, distance matrix, selectivity graph `G_sel`, and the `nb_path`
//!   weighted path sampler;
//! * [`workload`] — the query workload generator of Fig. 6 with arity,
//!   shape, recursion, size, and selectivity control;
//! * [`usecases`] — the four scenarios of Section 6.1 (`Bib`, `LSN`, `SP`,
//!   `WD`) as ready-made configurations;
//! * [`sat1in3`] — the constructive SAT-1-in-3 reduction of Theorem 3.6;
//! * [`extract`] — schema extraction from an existing graph (the
//!   "schema extraction tool" envisioned in the paper's concluding remarks).

#![warn(missing_docs)]

pub mod extract;
pub mod gen;
pub mod query;
pub mod sat1in3;
pub mod schema;
pub mod selectivity;
pub mod usecases;
pub mod workload;

pub use gen::{
    generate_graph, generate_into, generate_streamed, generate_streamed_spooled, GenReport,
    GeneratorOptions, StreamOptions,
};
pub use query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
pub use schema::{
    Distribution, EdgeConstraint, GraphConfig, Occurrence, PredicateId, Schema, SchemaBuilder,
    TypeId,
};
pub use selectivity::{Card, SelOp, SelTriple, SelectivityClass};
pub use workload::{
    cypher_degradations, generate_workload, generate_workload_with_threads, CypherDegradations,
    QuerySize, Shape, Workload, WorkloadConfig, WorkloadContext, WorkloadError, WorkloadReport,
};
