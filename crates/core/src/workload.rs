//! Query workload generation (Section 5, Fig. 6).
//!
//! The algorithm, per query:
//!
//! 1. `get_query_skeleton(f, t)` — build a shape skeleton (chain, star,
//!    cycle, or star-chain) of placeholder conjuncts `(?x, P, ?y)` (line 2);
//! 2. `add_projection_variables(skeleton, ar)` — pick head variables
//!    matching the arity constraint (line 3);
//! 3. `instantiate_placeholders(skeleton, S, p_r, t)` — fill each
//!    placeholder with a regular expression satisfying the recursion
//!    probability and size constraints (line 4).
//!
//! For binary queries with a selectivity target, step 3 is driven by the
//! machinery of Section 5.2.4: a uniformly random path through the
//! selectivity graph `G_sel` types the chain's *spine* (one `G_sel` edge per
//! non-starred conjunct, starting from an identity-class node and ending in
//! the target class); each conjunct is then instantiated by sampling label
//! paths in the schema graph `G_S` between its two endpoint nodes. Starred
//! conjuncts inherit the neighboring types with the `=` operator, exactly as
//! the paper prescribes. When a required length is infeasible the generator
//! *relaxes the path length* rather than backtracking (Section 5.2.4, final
//! paragraph).
//!
//! # Parallel pipeline
//!
//! Workload generation mirrors the graph pipeline's architecture
//! ([`crate::gen::generate_graph`]): the shared selectivity context —
//! schema graph `G_S`, type graph, and the per-(relaxation, class)
//! `G_sel`/`ChainSampler` tables — is built **once** as an immutable
//! [`WorkloadContext`] snapshot; worker threads then claim query indices
//! from a shared counter and draw from per-query RNG streams split off the
//! master seed by query index ([`gmark_stats::Prng::split2`], domain-
//! separated from the graph generator's constraint streams). Query `i` is
//! therefore a pure function of `(schema, config, i)`, so the assembled
//! [`Workload`] and [`WorkloadReport`] are bit-identical at every thread
//! count — `generate_workload_with_threads(.., 1)`, `2`, and `8` agree
//! exactly, and `tests/workload_determinism.rs` pins the guarantee.

use crate::query::{Conjunct, PathExpr, Query, QueryError, RegularExpr, Rule, Var};
use crate::schema::{Schema, TypeId};
use crate::selectivity::graph::{ChainSampler, GsNodeId, SchemaGraph, SelectivityGraph, TypeGraph};
use crate::selectivity::{Estimator, SelectivityClass};
use gmark_stats::Prng;

/// Query shapes supported by gMark (Section 3.3): chain, star, cycle, and
/// star-chain. The non-chain shapes are built from chains, exactly as
/// Section 5.1 describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// A simple path of conjuncts.
    Chain,
    /// Conjuncts sharing one central source variable.
    Star,
    /// Two chains sharing both endpoint variables.
    Cycle,
    /// A chain with star branches attached.
    StarChain,
}

impl Shape {
    /// All shapes.
    pub const ALL: [Shape; 4] = [Shape::Chain, Shape::Star, Shape::Cycle, Shape::StarChain];

    /// Parses configuration-file names.
    pub fn parse(s: &str) -> Option<Shape> {
        match s {
            "chain" => Some(Shape::Chain),
            "star" => Some(Shape::Star),
            "cycle" => Some(Shape::Cycle),
            "starchain" | "star-chain" => Some(Shape::StarChain),
            _ => None,
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Shape::Chain => "chain",
            Shape::Star => "star",
            Shape::Cycle => "cycle",
            Shape::StarChain => "starchain",
        };
        write!(f, "{s}")
    }
}

/// The query-size tuple `t` of Section 3.3 (without the rule count, held in
/// [`WorkloadConfig::rules`]): inclusive `[min, max]` intervals for the
/// number of conjuncts, number of disjuncts, and path length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySize {
    /// `[c_min, c_max]` conjuncts per rule.
    pub conjuncts: (usize, usize),
    /// `[d_min, d_max]` disjuncts per conjunct.
    pub disjuncts: (usize, usize),
    /// `[l_min, l_max]` symbols per disjunct path.
    pub length: (usize, usize),
}

impl Default for QuerySize {
    fn default() -> Self {
        QuerySize {
            conjuncts: (1, 3),
            disjuncts: (1, 1),
            length: (1, 3),
        }
    }
}

/// A query workload configuration `Q = (G, #q, ar, f, e, p_r, t)`
/// (Definition 3.5). The graph configuration `G` is supplied separately as
/// the schema when calling [`generate_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Workload size `#q`.
    pub size: usize,
    /// Allowed arities `ar` (0 = Boolean).
    pub arity: Vec<usize>,
    /// Shape constraint `f`.
    pub shapes: Vec<Shape>,
    /// Selectivity constraint `e`; empty disables selectivity control.
    pub selectivities: Vec<SelectivityClass>,
    /// Probability of recursion `p_r`: the chance each conjunct carries a
    /// Kleene star.
    pub recursion_probability: f64,
    /// `[r_min, r_max]` rules per query.
    pub rules: (usize, usize),
    /// The size tuple `t`.
    pub query_size: QuerySize,
    /// Master seed (workloads are deterministic).
    pub seed: u64,
}

impl WorkloadConfig {
    /// A configuration with the paper's common defaults: binary chain
    /// queries over all three selectivity classes, no recursion.
    pub fn new(size: usize) -> Self {
        WorkloadConfig {
            size,
            arity: vec![2],
            shapes: vec![Shape::Chain],
            selectivities: SelectivityClass::ALL.to_vec(),
            recursion_probability: 0.0,
            rules: (1, 1),
            query_size: QuerySize::default(),
            seed: 0x514D_61726B,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One generated query with its generation metadata.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The UCRPQ.
    pub query: Query,
    /// The skeleton shape used.
    pub shape: Shape,
    /// The selectivity class requested for this query slot (round-robin
    /// over [`WorkloadConfig::selectivities`]), if any.
    pub requested: Option<SelectivityClass>,
    /// The selectivity class the query actually satisfies, if any. `None`
    /// with `requested = Some(..)` means the target had to be abandoned.
    pub target: Option<SelectivityClass>,
    /// The estimator's α̂ for the generated query (binary chains only).
    pub estimated_alpha: Option<u8>,
    /// Number of relaxation steps applied during instantiation.
    pub relaxations: u32,
}

impl GeneratedQuery {
    /// A compact, deterministic metadata label for evaluation reports:
    /// target selectivity class, skeleton shape, arity, and recursion —
    /// the per-query context Section 7's tables annotate their rows with.
    /// Pure function of the generated query, so reports embedding it stay
    /// byte-identical across thread counts.
    pub fn eval_label(&self) -> String {
        format!(
            "class={} shape={} arity={} recursive={}",
            self.target
                .map_or_else(|| "-".to_owned(), |t| t.to_string()),
            self.shape,
            self.query.arity(),
            if self.query.is_recursive() {
                "yes"
            } else {
                "no"
            },
        )
    }
}

/// An error raised while constructing one workload query, tagged with the
/// failing query index so callers (the CLI in particular) can point at the
/// exact slot. In a parallel run the **lowest** failing index is reported,
/// independent of scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// Index of the query that failed (0-based generation order).
    pub index: usize,
    /// The underlying query-construction failure.
    pub source: QueryError,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query {}: {}", self.index, self.source)
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// How often a query would be *degraded* by the openCypher translator
/// (Section 7.1): openCypher's variable-length patterns support neither
/// concatenation nor inverse traversal under a Kleene star, so the
/// translator keeps the first usable symbol. These counters make the loss
/// visible as data (the translator additionally marks each occurrence with
/// a `// LOSSY:` comment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CypherDegradations {
    /// Starred disjunct paths of length > 1 (concatenation under `*`
    /// reduced to a single symbol).
    pub star_concat: u64,
    /// Starred disjunct paths containing an inverse symbol (inversion
    /// dropped under `*`).
    pub star_inverse: u64,
}

impl CypherDegradations {
    /// Whether any degradation would occur.
    pub fn any(&self) -> bool {
        self.star_concat > 0 || self.star_inverse > 0
    }
}

/// Counts the openCypher degradations of Section 7.1 for one query: one
/// `star_concat` per starred disjunct path longer than one symbol, one
/// `star_inverse` per starred disjunct path containing an inverse symbol.
/// These conditions mirror `gmark_translate::cypher` exactly (a test there
/// pins the agreement against the emitted `// LOSSY:` notes).
pub fn cypher_degradations(query: &Query) -> CypherDegradations {
    let mut d = CypherDegradations::default();
    for rule in &query.rules {
        for c in &rule.body {
            if !c.expr.starred {
                continue;
            }
            for p in &c.expr.disjuncts {
                if p.len() > 1 {
                    d.star_concat += 1;
                }
                if p.0.iter().any(|s| s.inverse) {
                    d.star_inverse += 1;
                }
            }
        }
    }
    d
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries, in generation order.
    pub queries: Vec<GeneratedQuery>,
}

impl Workload {
    /// Queries targeted at a particular selectivity class.
    pub fn of_class(&self, class: SelectivityClass) -> impl Iterator<Item = &GeneratedQuery> {
        self.queries.iter().filter(move |q| q.target == Some(class))
    }

    /// Diversity summary of the workload — the paper's Section 1 design
    /// goal ("controlled instance and workload diversity"), made
    /// inspectable: how the generated queries distribute over shapes,
    /// selectivity classes, arities, and recursion, plus size extremes.
    pub fn diversity(&self) -> DiversitySummary {
        let mut s = DiversitySummary::default();
        for gq in &self.queries {
            s.add(gq);
        }
        s
    }
}

/// See [`Workload::diversity`].
#[derive(Debug, Clone, Default)]
pub struct DiversitySummary {
    /// Total queries.
    pub total: usize,
    /// Count per skeleton shape.
    pub by_shape: std::collections::BTreeMap<Shape, usize>,
    /// Count per honored selectivity class.
    pub by_class: std::collections::BTreeMap<SelectivityClass, usize>,
    /// Count per arity.
    pub by_arity: std::collections::BTreeMap<usize, usize>,
    /// Queries containing a Kleene star.
    pub recursive: usize,
    /// Largest rule count.
    pub max_rules: usize,
    /// Largest conjunct count.
    pub max_conjuncts: usize,
    /// Largest disjunct count.
    pub max_disjuncts: usize,
    /// Longest disjunct path.
    pub max_path_length: usize,
}

impl DiversitySummary {
    /// Folds one query into the summary (streaming counterpart of
    /// [`Workload::diversity`]).
    pub fn add(&mut self, gq: &GeneratedQuery) {
        self.total += 1;
        *self.by_shape.entry(gq.shape).or_insert(0) += 1;
        if let Some(t) = gq.target {
            *self.by_class.entry(t).or_insert(0) += 1;
        }
        *self.by_arity.entry(gq.query.arity()).or_insert(0) += 1;
        if gq.query.is_recursive() {
            self.recursive += 1;
        }
        let (rules, conjuncts, disjuncts, length) = gq.query.size();
        self.max_rules = self.max_rules.max(rules);
        self.max_conjuncts = self.max_conjuncts.max(conjuncts);
        self.max_disjuncts = self.max_disjuncts.max(disjuncts);
        self.max_path_length = self.max_path_length.max(length);
    }

    /// Merges another summary in. Counts add and maxima combine, so merging
    /// per-worker partial summaries yields the same result in any grouping —
    /// what keeps the parallel streaming pipeline's summary deterministic.
    pub fn merge(&mut self, other: &DiversitySummary) {
        self.total += other.total;
        for (&k, &v) in &other.by_shape {
            *self.by_shape.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.by_class {
            *self.by_class.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.by_arity {
            *self.by_arity.entry(k).or_insert(0) += v;
        }
        self.recursive += other.recursive;
        self.max_rules = self.max_rules.max(other.max_rules);
        self.max_conjuncts = self.max_conjuncts.max(other.max_conjuncts);
        self.max_disjuncts = self.max_disjuncts.max(other.max_disjuncts);
        self.max_path_length = self.max_path_length.max(other.max_path_length);
    }
}

impl std::fmt::Display for DiversitySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} queries ({} recursive)", self.total, self.recursive)?;
        write!(f, "shapes:")?;
        for (shape, n) in &self.by_shape {
            write!(f, " {shape}={n}")?;
        }
        writeln!(f)?;
        write!(f, "classes:")?;
        for (class, n) in &self.by_class {
            write!(f, " {class}={n}")?;
        }
        writeln!(f)?;
        write!(f, "arities:")?;
        for (arity, n) in &self.by_arity {
            write!(f, " {arity}={n}")?;
        }
        writeln!(f)?;
        write!(
            f,
            "size maxima: rules={} conjuncts={} disjuncts={} path-length={}",
            self.max_rules, self.max_conjuncts, self.max_disjuncts, self.max_path_length
        )
    }
}

/// Summary of a workload generation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Queries produced.
    pub produced: usize,
    /// Queries whose selectivity target had to be abandoned (the class was
    /// unreachable in this schema even after relaxation).
    pub unsatisfied_selectivity: usize,
    /// Total relaxation steps applied across the workload.
    pub relaxations: u32,
    /// openCypher degradations (Section 7.1) summed over the workload.
    pub cypher: CypherDegradations,
}

impl WorkloadReport {
    /// Folds one generated query into the report. Every counter is derived
    /// from the query itself (the requested-vs-satisfied target and the
    /// structural cypher degradations), so folding in any order — or
    /// merging per-worker partial reports — produces identical totals.
    pub fn absorb(&mut self, gq: &GeneratedQuery) {
        self.produced += 1;
        if gq.requested.is_some() && gq.target.is_none() {
            self.unsatisfied_selectivity += 1;
        }
        self.relaxations += gq.relaxations;
        let d = cypher_degradations(&gq.query);
        self.cypher.star_concat += d.star_concat;
        self.cypher.star_inverse += d.star_inverse;
    }

    /// Merges another report in (see [`WorkloadReport::absorb`]).
    pub fn merge(&mut self, other: &WorkloadReport) {
        self.produced += other.produced;
        self.unsatisfied_selectivity += other.unsatisfied_selectivity;
        self.relaxations += other.relaxations;
        self.cypher.star_concat += other.cypher.star_concat;
        self.cypher.star_inverse += other.cypher.star_inverse;
    }
}

/// Maximum extra widening of `[l_min, l_max]` when relaxing (Section 5.2.4:
/// "we choose to relax the path length").
const MAX_RELAX: usize = 4;

/// RNG domain tag separating workload query streams from the graph
/// generator's constraint streams (see [`gmark_stats::Prng::split2`]):
/// with a shared `--seed`, query `i` and constraint `i` must not read the
/// same child stream.
const RNG_DOMAIN_WORKLOAD: u64 = 0x574B_4C44; // "WKLD"

/// Generates a query workload from a schema (Fig. 6), single-threaded.
///
/// Equivalent to [`generate_workload_with_threads`] with one thread (any
/// thread count produces bit-identical output; this entry point just skips
/// the worker machinery).
pub fn generate_workload(
    schema: &Schema,
    config: &WorkloadConfig,
) -> Result<(Workload, WorkloadReport), WorkloadError> {
    WorkloadContext::new(schema, config).generate_all(1)
}

/// Generates a query workload on `threads` worker threads (Fig. 6, the
/// parallel pipeline of the module docs). `0` auto-detects via
/// [`std::thread::available_parallelism`]. Output is **bit-identical for
/// every thread count**: each query draws from an RNG stream split off the
/// master seed by query index, and results are assembled in ascending
/// index order.
pub fn generate_workload_with_threads(
    schema: &Schema,
    config: &WorkloadConfig,
    threads: usize,
) -> Result<(Workload, WorkloadReport), WorkloadError> {
    WorkloadContext::new(schema, config).generate_all(threads)
}

/// The immutable shared snapshot of the workload pipeline: schema graph
/// `G_S`, type graph, and the `G_sel`/`ChainSampler` tables per
/// (relaxation level, selectivity class) — built once, then read
/// concurrently by worker threads ([`WorkloadContext::generate`] takes
/// `&self`).
pub struct WorkloadContext<'a> {
    schema: &'a Schema,
    config: &'a WorkloadConfig,
    master: Prng,
    gs: SchemaGraph,
    type_graph: TypeGraph,
    /// `G_sel` + `ChainSampler` per (relaxation level, selectivity class).
    samplers: Vec<Vec<(SelectivityGraph, ChainSampler)>>,
}

impl<'a> WorkloadContext<'a> {
    /// Builds the shared selectivity context for `(schema, config)`.
    pub fn new(schema: &'a Schema, config: &'a WorkloadConfig) -> Self {
        let gs = SchemaGraph::build(schema);
        let type_graph = TypeGraph::build(schema);
        let (lmin, lmax) = config.query_size.length;
        let lmin = lmin.max(1);
        let lmax = lmax.max(lmin);
        let max_conj = config.query_size.conjuncts.1.max(1);
        let mut samplers = Vec::new();
        if !config.selectivities.is_empty() {
            for relax in 0..=MAX_RELAX {
                let level_lmin = if relax == 0 { lmin } else { 1 };
                let level_lmax = lmax + relax;
                let gsel = SelectivityGraph::build(&gs, level_lmin, level_lmax);
                let per_class: Vec<(SelectivityGraph, ChainSampler)> = SelectivityClass::ALL
                    .iter()
                    .map(|&class| {
                        let sampler = ChainSampler::new(&gs, &gsel, class, max_conj);
                        (gsel.clone(), sampler)
                    })
                    .collect();
                samplers.push(per_class);
            }
        }
        WorkloadContext {
            schema,
            config,
            master: Prng::seed_from_u64(config.seed),
            gs,
            type_graph,
            samplers,
        }
    }

    /// The selectivity class requested for query slot `i` (round-robin over
    /// the configuration's classes, which yields the balanced workloads the
    /// experiments need — e.g. 10/10/10 in Section 6.2).
    pub fn requested_target(&self, i: usize) -> Option<SelectivityClass> {
        if self.config.selectivities.is_empty() {
            None
        } else {
            Some(self.config.selectivities[i % self.config.selectivities.len()])
        }
    }

    /// Generates query `i` — a pure function of `(schema, config, i)`:
    /// the RNG stream is split off the master seed by query index, so the
    /// result is independent of which thread runs the call and in what
    /// order.
    pub fn generate(&self, i: usize) -> Result<GeneratedQuery, WorkloadError> {
        let mut rng = self.master.split2(RNG_DOMAIN_WORKLOAD, i as u64);
        let target = self.requested_target(i);
        let shape = self.config.shapes[i % self.config.shapes.len()];
        let arity = self.config.arity[i % self.config.arity.len()];
        self.generate_query(&mut rng, shape, arity, target)
            .map_err(|source| WorkloadError { index: i, source })
    }

    /// Resolves a thread-count knob (`0` = auto-detect) against the
    /// workload size: never more workers than queries, never fewer than 1.
    /// The single authority for this policy — the streaming pipeline in
    /// `gmark-translate` resolves its worker count through here too.
    pub fn effective_threads(&self, threads: usize) -> usize {
        let t = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        t.clamp(1, self.config.size.max(1))
    }

    /// Generates the whole workload on `threads` workers (see
    /// [`generate_workload_with_threads`]).
    pub fn generate_all(
        &self,
        threads: usize,
    ) -> Result<(Workload, WorkloadReport), WorkloadError> {
        let size = self.config.size;
        let threads = self.effective_threads(threads);
        let mut queries: Vec<GeneratedQuery> = Vec::with_capacity(size);
        if threads <= 1 {
            for i in 0..size {
                queries.push(self.generate(i)?);
            }
        } else {
            // Workers claim query indices from a shared counter (dynamic
            // load balance: per-query cost varies with relaxation retries)
            // and results are re-assembled in ascending index order, which
            // also makes the reported error — the lowest failing index —
            // independent of scheduling.
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut batches: Vec<(usize, Result<GeneratedQuery, WorkloadError>)> =
                std::thread::scope(|scope| {
                    let next = &next;
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if i >= size {
                                        break;
                                    }
                                    out.push((i, self.generate(i)));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("workload worker panicked"))
                        .collect()
                });
            batches.sort_by_key(|(i, _)| *i);
            for (_, result) in batches {
                queries.push(result?);
            }
        }
        let mut report = WorkloadReport::default();
        for gq in &queries {
            report.absorb(gq);
        }
        Ok((Workload { queries }, report))
    }

    fn generate_query(
        &self,
        rng: &mut Prng,
        shape: Shape,
        arity: usize,
        target: Option<SelectivityClass>,
    ) -> Result<GeneratedQuery, QueryError> {
        let n_rules = rng.range_inclusive(
            self.config.rules.0.max(1) as u64,
            self.config.rules.1.max(1) as u64,
        ) as usize;
        let mut relaxations = 0;
        let mut rules = Vec::with_capacity(n_rules);
        let mut satisfied_target = target;
        for _ in 0..n_rules {
            let (rule, relax, ok) = self.generate_rule(rng, shape, arity, target);
            relaxations += relax;
            if !ok {
                satisfied_target = None;
            }
            rules.push(rule);
        }
        let query = Query::new(rules)?;
        let estimated_alpha = Estimator::new(self.schema).alpha(&query);
        Ok(GeneratedQuery {
            query,
            shape,
            requested: target,
            target: satisfied_target,
            estimated_alpha,
            relaxations,
        })
    }

    /// Generates one rule; returns `(rule, relaxation steps, selectivity
    /// target honored?)`.
    fn generate_rule(
        &self,
        rng: &mut Prng,
        shape: Shape,
        arity: usize,
        target: Option<SelectivityClass>,
    ) -> (Rule, u32, bool) {
        let (cmin, cmax) = self.config.query_size.conjuncts;
        let c = rng.range_inclusive(cmin.max(1) as u64, cmax.max(1) as u64) as usize;
        let skeleton = build_skeleton(shape, c);

        // Decide which conjuncts carry a Kleene star (probability p_r).
        let starred: Vec<bool> = (0..c)
            .map(|_| rng.chance(self.config.recursion_probability))
            .collect();

        // Selectivity-guided typing applies to binary queries (the paper's
        // guarantee) whose spine exists.
        if let (2, Some(target)) = (arity, target) {
            if let Some((rule, relax)) =
                self.instantiate_with_selectivity(rng, &skeleton, &starred, target)
            {
                return (rule, relax, true);
            }
            // Target unreachable: fall through to unconstrained
            // instantiation (reported by the caller).
            let rule = self.instantiate_unconstrained(rng, &skeleton, &starred, arity);
            return (rule, MAX_RELAX as u32, false);
        }
        let rule = self.instantiate_unconstrained(rng, &skeleton, &starred, arity);
        (rule, 0, true)
    }

    /// Section 5.2.4: type the spine with a `G_sel` walk, instantiate each
    /// spine conjunct with `G_S` paths, branches with type-graph walks.
    fn instantiate_with_selectivity(
        &self,
        rng: &mut Prng,
        skeleton: &Skeleton,
        starred: &[bool],
        target: SelectivityClass,
    ) -> Option<(Rule, u32)> {
        // Starred spine conjuncts become identity transitions; the G_sel
        // walk only needs one edge per non-starred spine conjunct. A fully
        // starred spine is pure identity, which can never realize the
        // Quadratic class (and Constant only when the schema has a fixed
        // type) — in that case un-star conjuncts until a walk exists,
        // another instance of the paper's relax-don't-backtrack policy.
        let mut starred = starred.to_vec();
        while skeleton.spine.iter().all(|&(ci, _)| starred[ci])
            && self.identity_node_of_class(target).is_none()
        {
            let &(ci, _) = skeleton
                .spine
                .iter()
                .find(|&&(ci, _)| starred[ci])
                .expect("loop condition guarantees a starred conjunct");
            starred[ci] = false;
        }
        let starred = &starred[..];
        let spine_starred: Vec<bool> = skeleton.spine.iter().map(|&(ci, _)| starred[ci]).collect();
        let walk_len = spine_starred.iter().filter(|&&s| !s).count();

        for relax in 0..self.samplers.len() {
            let class_idx = SelectivityClass::ALL
                .iter()
                .position(|&cl| cl == target)
                .unwrap();
            let (gsel, sampler) = &self.samplers[relax][class_idx];
            if walk_len == 0 {
                // All spine conjuncts starred: the chain class is the
                // identity — only achievable for the Linear/Constant
                // classes via a single identity node of matching card.
                // Type everything at one identity node of the right class.
                let node = self.identity_node_of_class(target)?;
                let nodes = vec![node; skeleton.spine.len() + 1];
                if let Some(rule) =
                    self.build_rule_from_typing(rng, skeleton, starred, &nodes, gsel, relax)
                {
                    return Some((rule, relax as u32));
                }
                continue;
            }
            if sampler.feasible(walk_len) <= 0.0 {
                continue;
            }
            // The G_sel typing guarantees the class along the *sampled*
            // typing; the same label paths may also be realizable through
            // other type combinations, whose class contributes to the true
            // α̂ = max over all endpoint types (Section 5.2.2). Verify the
            // finished rule with the static estimator and resample on
            // leakage — only checkable for non-recursive chains (the
            // estimator squares starred loops where generation used the
            // paper's `=`-inheritance, so recursive rules keep the
            // typing-level guarantee, exactly like the paper).
            for _attempt in 0..4 {
                let walk = sampler.sample(gsel, rng, walk_len)?;
                // Splice starred conjuncts back in as repeated nodes.
                let mut nodes = Vec::with_capacity(skeleton.spine.len() + 1);
                let mut w = 0;
                nodes.push(walk[0]);
                for &s in &spine_starred {
                    if s {
                        nodes.push(*nodes.last().unwrap());
                    } else {
                        w += 1;
                        nodes.push(walk[w]);
                    }
                }
                let Some(rule) =
                    self.build_rule_from_typing(rng, skeleton, starred, &nodes, gsel, relax)
                else {
                    continue;
                };
                let verifiable = !rule.body.iter().any(|c| c.expr.is_recursive());
                if verifiable {
                    let est = Estimator::new(self.schema);
                    // `None` = non-chain shape: keep the typing guarantee.
                    if let Some(classes) = est.rule_classes(&rule) {
                        let alpha = classes.values().map(|t| t.alpha()).max().unwrap_or(0);
                        if alpha != target.alpha() {
                            continue; // leakage: resample the typing
                        }
                    }
                }
                return Some((rule, relax as u32));
            }
        }
        None
    }

    /// An identity-class `G_S` node whose triple matches `target` (only
    /// Constant → (1,=,1) and Linear → (N,=,N) are identities).
    fn identity_node_of_class(&self, target: SelectivityClass) -> Option<GsNodeId> {
        self.gs.valid_nodes().find(|&n| {
            let t = self.gs.triple_of(n);
            t.op == crate::selectivity::SelOp::Eq
                && t.left == t.right
                && SelectivityClass::of_triple(t) == target
                && !self.type_graph.successors(self.gs.type_of(n)).is_empty()
        })
    }

    /// Builds the full rule once the spine typing (a `G_S` node per spine
    /// position) is fixed.
    fn build_rule_from_typing(
        &self,
        rng: &mut Prng,
        skeleton: &Skeleton,
        starred: &[bool],
        nodes: &[GsNodeId],
        gsel: &SelectivityGraph,
        relax: usize,
    ) -> Option<Rule> {
        let (lmin, lmax) = effective_lengths(self.config.query_size.length, relax);
        let (dmin, dmax) = self.config.query_size.disjuncts;
        let mut exprs: Vec<Option<RegularExpr>> = vec![None; skeleton.conjuncts.len()];
        let mut var_types: Vec<Option<TypeId>> = vec![None; skeleton.var_count];

        // Spine conjuncts.
        for (pos, &(ci, reversed)) in skeleton.spine.iter().enumerate() {
            let (u, v) = (nodes[pos], nodes[pos + 1]);
            let (src_var, trg_var) = skeleton.conjuncts[ci];
            let (from_var, to_var) = if reversed {
                (trg_var, src_var)
            } else {
                (src_var, trg_var)
            };
            var_types[from_var as usize] = Some(self.gs.type_of(u));
            var_types[to_var as usize] = Some(self.gs.type_of(v));
            let d = rng.range_inclusive(dmin.max(1) as u64, dmax.max(1) as u64) as usize;
            let expr = if starred[ci] {
                // Identity transition: loops on the node's type.
                self.star_loop_expr(rng, self.gs.type_of(u), d, lmin, lmax)?
            } else {
                self.gs_path_expr(rng, u, v, d, lmin, lmax)?
            };
            // Orient the expression with the conjunct's declared direction.
            exprs[ci] = Some(if reversed { reverse_expr(&expr) } else { expr });
        }
        let _ = gsel; // typing already validated against G_sel

        // Branch conjuncts (star/star-chain arms): type-graph walks anchored
        // at a variable whose type is already known.
        for &(ci, reversed) in &skeleton.branches {
            let (src_var, trg_var) = skeleton.conjuncts[ci];
            let (anchor, other) = if reversed {
                (trg_var, src_var)
            } else {
                (src_var, trg_var)
            };
            let anchor_type = var_types[anchor as usize]?;
            let d = rng.range_inclusive(dmin.max(1) as u64, dmax.max(1) as u64) as usize;
            let expr = if starred[ci] {
                self.star_loop_expr(rng, anchor_type, d, lmin, lmax)
                    .or_else(|| {
                        // No loop at this type: degrade to a non-recursive walk.
                        self.walk_expr(rng, anchor_type, d, lmin, lmax)
                            .map(|(e, _)| e)
                    })?
            } else {
                let (e, end) = self.walk_expr(rng, anchor_type, d, lmin, lmax)?;
                var_types[other as usize] = Some(end);
                e
            };
            exprs[ci] = Some(if reversed { reverse_expr(&expr) } else { expr });
        }

        let body: Vec<Conjunct> = skeleton
            .conjuncts
            .iter()
            .zip(exprs)
            .map(|(&(s, t), e)| {
                Some(Conjunct {
                    src: Var(s),
                    expr: e?,
                    trg: Var(t),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Rule {
            head: vec![Var(skeleton.endpoints.0), Var(skeleton.endpoints.1)],
            body,
        })
    }

    /// A (possibly multi-disjunct) expression of `G_S` paths `u → v` with
    /// lengths in `[lmin, lmax]`.
    fn gs_path_expr(
        &self,
        rng: &mut Prng,
        u: GsNodeId,
        v: GsNodeId,
        disjuncts: usize,
        lmin: usize,
        lmax: usize,
    ) -> Option<RegularExpr> {
        let counts = self.gs.path_counts_to(v, lmax);
        let weights: Vec<f64> = (0..=lmax)
            .map(|l| if l >= lmin { counts[l][u.0] } else { 0.0 })
            .collect();
        let mut paths: Vec<PathExpr> = Vec::with_capacity(disjuncts);
        // Prefer distinct disjuncts; the schema may only admit fewer
        // distinct paths than requested, so retries are bounded.
        let mut attempts = 0;
        while paths.len() < disjuncts && attempts < disjuncts * 6 {
            attempts += 1;
            let l = rng.choose_weighted(&weights)?;
            let path = PathExpr(self.gs.sample_path(rng, u, l, &counts)?);
            if !paths.contains(&path) {
                paths.push(path);
            }
        }
        if paths.is_empty() {
            return None;
        }
        Some(RegularExpr::union(paths))
    }

    /// A starred expression of type-level loops `T → T`.
    fn star_loop_expr(
        &self,
        rng: &mut Prng,
        t: TypeId,
        disjuncts: usize,
        lmin: usize,
        lmax: usize,
    ) -> Option<RegularExpr> {
        let counts = self.type_graph.path_counts_to(t, lmax);
        let weights: Vec<f64> = (0..=lmax)
            .map(|l| if l >= lmin { counts[l][t.0] } else { 0.0 })
            .collect();
        let mut paths: Vec<PathExpr> = Vec::with_capacity(disjuncts);
        let mut attempts = 0;
        while paths.len() < disjuncts && attempts < disjuncts * 6 {
            attempts += 1;
            let l = rng.choose_weighted(&weights)?;
            let path = PathExpr(self.type_graph.sample_path(rng, t, l, &counts)?);
            if !paths.contains(&path) {
                paths.push(path);
            }
        }
        if paths.is_empty() {
            return None;
        }
        Some(RegularExpr::star(paths))
    }

    /// A walk-based expression from `from`; all disjuncts share the end
    /// type. Returns the expression and the end type.
    fn walk_expr(
        &self,
        rng: &mut Prng,
        from: TypeId,
        disjuncts: usize,
        lmin: usize,
        lmax: usize,
    ) -> Option<(RegularExpr, TypeId)> {
        let l0 = rng.range_inclusive(lmin.max(1) as u64, lmax.max(1) as u64) as usize;
        let (first, end) = self.type_graph.random_walk(rng, from, l0)?;
        let mut paths = vec![PathExpr(first)];
        if disjuncts > 1 {
            let counts = self.type_graph.path_counts_to(end, lmax);
            let weights: Vec<f64> = (0..=lmax)
                .map(|l| if l >= lmin { counts[l][from.0] } else { 0.0 })
                .collect();
            let mut attempts = 0;
            while paths.len() < disjuncts && attempts < disjuncts * 6 {
                attempts += 1;
                if let Some(l) = rng.choose_weighted(&weights) {
                    if let Some(p) = self.type_graph.sample_path(rng, from, l, &counts) {
                        let p = PathExpr(p);
                        if !paths.contains(&p) {
                            paths.push(p);
                        }
                    }
                } else {
                    break;
                }
            }
        }
        Some((RegularExpr::union(paths), end))
    }

    /// Instantiation without selectivity control: type-graph walks along the
    /// skeleton (still schema-coupled), random projection variables.
    fn instantiate_unconstrained(
        &self,
        rng: &mut Prng,
        skeleton: &Skeleton,
        starred: &[bool],
        arity: usize,
    ) -> Rule {
        let (lmin, lmax) = self.config.query_size.length;
        let (lmin, lmax) = (lmin.max(1), lmax.max(lmin.max(1)));
        let (dmin, dmax) = self.config.query_size.disjuncts;
        let mut var_types: Vec<Option<TypeId>> = vec![None; skeleton.var_count];
        // Start type: one that has outgoing moves.
        let start_types: Vec<TypeId> = (0..self.schema.type_count())
            .map(TypeId)
            .filter(|&t| !self.type_graph.successors(t).is_empty())
            .collect();

        let mut exprs: Vec<RegularExpr> = Vec::with_capacity(skeleton.conjuncts.len());
        for (order_idx, &(ci, reversed)) in skeleton
            .spine
            .iter()
            .chain(skeleton.branches.iter())
            .enumerate()
        {
            let (src_var, trg_var) = skeleton.conjuncts[ci];
            let (anchor, other) = if reversed {
                (trg_var, src_var)
            } else {
                (src_var, trg_var)
            };
            let anchor_type = var_types[anchor as usize].unwrap_or_else(|| {
                if start_types.is_empty() {
                    TypeId(0)
                } else {
                    *rng.choose(&start_types)
                }
            });
            var_types[anchor as usize] = Some(anchor_type);
            let d = rng.range_inclusive(dmin.max(1) as u64, dmax.max(1) as u64) as usize;
            let expr = if starred[ci] {
                self.star_loop_expr(rng, anchor_type, d, lmin, lmax)
                    .unwrap_or_else(|| {
                        // No loops at this type: fall back to a single symbol
                        // star if any move exists, else an ε-star.
                        let succs = self.type_graph.successors(anchor_type);
                        if succs.is_empty() {
                            RegularExpr::star(vec![PathExpr::epsilon()])
                        } else {
                            let &(sym, _) = rng.choose(succs);
                            RegularExpr::star(vec![PathExpr::single(sym)])
                        }
                    })
            } else {
                match self.walk_expr(rng, anchor_type, d, lmin, lmax) {
                    Some((e, end)) => {
                        var_types[other as usize] = Some(end);
                        e
                    }
                    None => {
                        // Dead-end type: emit an ε conjunct to stay
                        // well-formed (degenerate schemas only).
                        RegularExpr::path(PathExpr::epsilon())
                    }
                }
            };
            let expr = if reversed { reverse_expr(&expr) } else { expr };
            // Maintain positional alignment via index ordering.
            let _ = order_idx;
            exprs.push(expr);
        }
        // Reorder expressions back to conjunct order.
        let mut by_conjunct: Vec<Option<RegularExpr>> = vec![None; skeleton.conjuncts.len()];
        for (slot, &(ci, _)) in skeleton
            .spine
            .iter()
            .chain(skeleton.branches.iter())
            .enumerate()
        {
            by_conjunct[ci] = Some(exprs[slot].clone());
        }
        let body: Vec<Conjunct> = skeleton
            .conjuncts
            .iter()
            .zip(by_conjunct)
            .map(|(&(s, t), e)| Conjunct {
                src: Var(s),
                expr: e.expect("all conjuncts visited"),
                trg: Var(t),
            })
            .collect();

        // Projection: endpoints first (binary default), then random extras.
        let mut head = Vec::with_capacity(arity);
        let mut candidates: Vec<u32> = (0..skeleton.var_count as u32).collect();
        if arity >= 1 {
            head.push(Var(skeleton.endpoints.0));
            candidates.retain(|&v| v != skeleton.endpoints.0);
        }
        if arity >= 2 && skeleton.endpoints.1 != skeleton.endpoints.0 {
            head.push(Var(skeleton.endpoints.1));
            candidates.retain(|&v| v != skeleton.endpoints.1);
        }
        while head.len() < arity && !candidates.is_empty() {
            let i = rng.below(candidates.len() as u64) as usize;
            head.push(Var(candidates.swap_remove(i)));
        }
        Rule { head, body }
    }
}

fn effective_lengths(base: (usize, usize), relax: usize) -> (usize, usize) {
    let lmin = if relax == 0 { base.0.max(1) } else { 1 };
    let lmax = base.1.max(base.0.max(1)) + relax;
    (lmin, lmax)
}

/// Reverses an expression's direction (used when a conjunct is traversed
/// against its declared orientation).
fn reverse_expr(e: &RegularExpr) -> RegularExpr {
    RegularExpr {
        disjuncts: e.disjuncts.iter().map(PathExpr::reversed).collect(),
        starred: e.starred,
    }
}

/// A query skeleton (Fig. 6, line 2): conjuncts over numbered variables,
/// partitioned into the *spine* (the path between the two endpoint
/// variables, traversal direction included) and *branches* (the remaining
/// conjuncts, anchored at spine variables).
#[derive(Debug, Clone)]
struct Skeleton {
    conjuncts: Vec<(u32, u32)>,
    var_count: usize,
    /// `(conjunct index, reversed?)` along the endpoint-to-endpoint path.
    spine: Vec<(usize, bool)>,
    /// `(conjunct index, reversed?)`, anchored at an already-typed variable.
    branches: Vec<(usize, bool)>,
    endpoints: (u32, u32),
}

/// Builds the shape skeletons of Section 5.1: cycles are two chains sharing
/// their endpoints, stars are chains sharing the starting variable, and
/// star-chains combine chains and stars.
fn build_skeleton(shape: Shape, c: usize) -> Skeleton {
    let c = c.max(1);
    match shape {
        Shape::Chain => Skeleton {
            conjuncts: (0..c).map(|i| (i as u32, i as u32 + 1)).collect(),
            var_count: c + 1,
            spine: (0..c).map(|i| (i, false)).collect(),
            branches: Vec::new(),
            endpoints: (0, c as u32),
        },
        Shape::Star => {
            // Conjuncts (x0, Pi, xi). Spine: leaf 1 ← center → leaf 2
            // (first conjunct reversed) when c ≥ 2.
            let conjuncts: Vec<(u32, u32)> = (0..c).map(|i| (0, i as u32 + 1)).collect();
            if c == 1 {
                Skeleton {
                    conjuncts,
                    var_count: 2,
                    spine: vec![(0, false)],
                    branches: Vec::new(),
                    endpoints: (0, 1),
                }
            } else {
                Skeleton {
                    conjuncts,
                    var_count: c + 1,
                    spine: vec![(0, true), (1, false)],
                    branches: (2..c).map(|i| (i, false)).collect(),
                    endpoints: (1, 2),
                }
            }
        }
        Shape::Cycle => {
            // Two chains from x0 to x_mid sharing both endpoints.
            let c1 = c.div_ceil(2);
            let c2 = c - c1;
            let mut conjuncts = Vec::with_capacity(c);
            // Chain A: 0 -> 1 -> … -> c1.
            for i in 0..c1 {
                conjuncts.push((i as u32, i as u32 + 1));
            }
            // Chain B: 0 -> c1+1 -> … -> c1.
            let mut prev = 0u32;
            for j in 0..c2 {
                let next = if j + 1 == c2 {
                    c1 as u32
                } else {
                    (c1 + 1 + j) as u32
                };
                conjuncts.push((prev, next));
                prev = next;
            }
            let var_count = if c2 > 1 { c1 + c2 } else { c1 + 1 };
            Skeleton {
                conjuncts,
                var_count,
                spine: (0..c1).map(|i| (i, false)).collect(),
                branches: (c1..c).map(|i| (i, false)).collect(),
                endpoints: (0, c1 as u32),
            }
        }
        Shape::StarChain => {
            // A chain spine of ⌈c/2⌉ conjuncts with the remaining conjuncts
            // attached as branches to spine variables (round-robin).
            let spine_len = c.div_ceil(2);
            let mut conjuncts: Vec<(u32, u32)> =
                (0..spine_len).map(|i| (i as u32, i as u32 + 1)).collect();
            let mut var_count = spine_len + 1;
            let mut branches = Vec::new();
            for (b, _) in (spine_len..c).enumerate() {
                let anchor = (b % (spine_len + 1)) as u32;
                conjuncts.push((anchor, var_count as u32));
                branches.push((spine_len + b, false));
                var_count += 1;
            }
            Skeleton {
                conjuncts,
                var_count,
                spine: (0..spine_len).map(|i| (i, false)).collect(),
                branches,
                endpoints: (0, spine_len as u32),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Distribution, Occurrence, SchemaBuilder};

    /// Bib-flavoured schema rich enough to reach all three classes.
    fn test_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let researcher = b.node_type("researcher", Occurrence::Proportion(0.5));
        let paper = b.node_type("paper", Occurrence::Proportion(0.3));
        let conference = b.node_type("conference", Occurrence::Proportion(0.1));
        let city = b.node_type("city", Occurrence::Fixed(100));
        let authors = b.predicate("authors", Some(Occurrence::Proportion(0.5)));
        let published = b.predicate("publishedIn", Some(Occurrence::Proportion(0.3)));
        let held = b.predicate("heldIn", Some(Occurrence::Proportion(0.1)));
        b.edge(
            researcher,
            authors,
            paper,
            Distribution::gaussian(3.0, 1.0),
            Distribution::zipfian(2.5),
        );
        b.edge(
            paper,
            published,
            conference,
            Distribution::gaussian(30.0, 10.0),
            Distribution::uniform(1, 1),
        );
        b.edge(
            conference,
            held,
            city,
            Distribution::zipfian(2.5),
            Distribution::uniform(1, 1),
        );
        b.build().unwrap()
    }

    #[test]
    fn skeleton_chain() {
        let s = build_skeleton(Shape::Chain, 3);
        assert_eq!(s.conjuncts, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(s.var_count, 4);
        assert_eq!(s.endpoints, (0, 3));
        assert_eq!(s.spine.len(), 3);
        assert!(s.branches.is_empty());
    }

    #[test]
    fn skeleton_star() {
        let s = build_skeleton(Shape::Star, 3);
        assert_eq!(s.conjuncts, vec![(0, 1), (0, 2), (0, 3)]);
        // Spine goes leaf1 ← center → leaf2; third conjunct is a branch.
        assert_eq!(s.spine, vec![(0, true), (1, false)]);
        assert_eq!(s.branches, vec![(2, false)]);
        assert_eq!(s.endpoints, (1, 2));
    }

    #[test]
    fn skeleton_cycle() {
        let s = build_skeleton(Shape::Cycle, 4);
        // Two chains 0→1→2 and 0→3→2.
        assert_eq!(s.conjuncts, vec![(0, 1), (1, 2), (0, 3), (3, 2)]);
        assert_eq!(s.var_count, 4);
        assert_eq!(s.endpoints, (0, 2));
    }

    #[test]
    fn skeleton_cycle_small() {
        // c = 2: both chains are single conjuncts 0→1.
        let s = build_skeleton(Shape::Cycle, 2);
        assert_eq!(s.conjuncts, vec![(0, 1), (0, 1)]);
        assert_eq!(s.var_count, 2);
    }

    #[test]
    fn skeleton_star_chain() {
        let s = build_skeleton(Shape::StarChain, 4);
        assert_eq!(s.spine.len(), 2);
        assert_eq!(s.branches.len(), 2);
        // All variables distinct, branch anchors lie on the spine (0..=2).
        for &(ci, _) in &s.branches {
            let (src, _) = s.conjuncts[ci];
            assert!(src <= 2);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let schema = test_schema();
        let cfg = WorkloadConfig::new(12).with_seed(99);
        let (w1, _) = generate_workload(&schema, &cfg).unwrap();
        let (w2, _) = generate_workload(&schema, &cfg).unwrap();
        assert_eq!(w1.queries.len(), 12);
        for (a, b) in w1.queries.iter().zip(&w2.queries) {
            assert_eq!(a.query, b.query);
        }
    }

    #[test]
    fn workload_balances_selectivity_classes() {
        let schema = test_schema();
        let cfg = WorkloadConfig::new(30).with_seed(1);
        let (w, report) = generate_workload(&schema, &cfg).unwrap();
        assert_eq!(report.produced, 30);
        let constant = w.of_class(SelectivityClass::Constant).count();
        let linear = w.of_class(SelectivityClass::Linear).count();
        let quadratic = w.of_class(SelectivityClass::Quadratic).count();
        // Round-robin: 10 of each, minus any unsatisfied.
        assert_eq!(
            constant + linear + quadratic + report.unsatisfied_selectivity,
            30
        );
        assert!(linear == 10, "linear {linear}");
        assert!(quadratic == 10, "quadratic {quadratic}");
    }

    #[test]
    fn generated_alpha_matches_target() {
        let schema = test_schema();
        let cfg = WorkloadConfig::new(30).with_seed(3);
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        for gq in &w.queries {
            if let (Some(target), Some(alpha)) = (gq.target, gq.estimated_alpha) {
                assert_eq!(
                    alpha,
                    target.alpha(),
                    "query {} should be {target}",
                    gq.query.display(&schema)
                );
            }
        }
    }

    #[test]
    fn size_constraints_respected() {
        let schema = test_schema();
        let mut cfg = WorkloadConfig::new(20).with_seed(4);
        cfg.query_size = QuerySize {
            conjuncts: (2, 3),
            disjuncts: (1, 2),
            length: (1, 2),
        };
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        for gq in &w.queries {
            let (_, conjuncts, disjuncts, length) = gq.query.size();
            assert!((2..=3).contains(&conjuncts), "conjuncts {conjuncts}");
            assert!(disjuncts <= 2, "disjuncts {disjuncts}");
            // Relaxation may extend lengths, but never below 1.
            assert!((1..=2 + MAX_RELAX).contains(&length), "length {length}");
        }
    }

    #[test]
    fn recursion_probability_one_stars_every_conjunct() {
        let schema = test_schema();
        let mut cfg = WorkloadConfig::new(10).with_seed(5);
        cfg.recursion_probability = 1.0;
        cfg.selectivities = vec![SelectivityClass::Linear];
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        for gq in &w.queries {
            assert!(gq.query.is_recursive(), "{}", gq.query.display(&schema));
        }
    }

    #[test]
    fn recursion_probability_zero_stars_nothing() {
        let schema = test_schema();
        let cfg = WorkloadConfig::new(10).with_seed(6);
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        assert!(w.queries.iter().all(|gq| !gq.query.is_recursive()));
    }

    #[test]
    fn boolean_and_nary_arities() {
        let schema = test_schema();
        let mut cfg = WorkloadConfig::new(9).with_seed(7);
        cfg.arity = vec![0, 1, 3];
        cfg.selectivities = Vec::new(); // arity != 2: no selectivity control
        cfg.query_size.conjuncts = (3, 3);
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        let arities: Vec<usize> = w.queries.iter().map(|g| g.query.arity()).collect();
        assert!(arities.contains(&0));
        assert!(arities.contains(&1));
        assert!(arities.contains(&3));
    }

    #[test]
    fn all_shapes_generate_well_formed_queries() {
        let schema = test_schema();
        let mut cfg = WorkloadConfig::new(16).with_seed(8);
        cfg.shapes = Shape::ALL.to_vec();
        cfg.query_size.conjuncts = (3, 4);
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        assert_eq!(w.queries.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for gq in &w.queries {
            seen.insert(gq.shape);
            // Query::new already validated well-formedness at build time.
            assert!(gq.query.rules[0].well_formed().is_ok());
        }
        assert_eq!(seen.len(), 4, "all four shapes exercised");
    }

    #[test]
    fn diversity_summary_counts() {
        let schema = test_schema();
        let mut cfg = WorkloadConfig::new(12).with_seed(20);
        cfg.shapes = vec![Shape::Chain, Shape::Star];
        cfg.recursion_probability = 0.4;
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        let d = w.diversity();
        assert_eq!(d.total, 12);
        assert_eq!(d.by_shape.values().sum::<usize>(), 12);
        assert_eq!(d.by_shape.get(&Shape::Chain), Some(&6));
        assert_eq!(d.by_shape.get(&Shape::Star), Some(&6));
        assert_eq!(d.by_arity.get(&2), Some(&12));
        assert!(d.max_conjuncts >= 1 && d.max_conjuncts <= 3);
        let text = d.to_string();
        assert!(text.contains("12 queries"), "{text}");
        assert!(text.contains("chain=6"), "{text}");
    }

    #[test]
    fn multi_rule_queries() {
        let schema = test_schema();
        let mut cfg = WorkloadConfig::new(6).with_seed(9);
        cfg.rules = (2, 3);
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        for gq in &w.queries {
            assert!(gq.query.rules.len() >= 2);
            assert!(gq.query.rules.len() <= 3);
        }
    }

    #[test]
    fn symbols_reference_real_predicates() {
        let schema = test_schema();
        let cfg = WorkloadConfig::new(20).with_seed(10);
        let (w, _) = generate_workload(&schema, &cfg).unwrap();
        for gq in &w.queries {
            for rule in &gq.query.rules {
                for c in &rule.body {
                    for s in c.expr.symbols() {
                        assert!(s.predicate.0 < schema.predicate_count());
                    }
                }
            }
        }
    }
}
