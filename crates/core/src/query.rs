//! Unions of conjunctions of regular path queries (UCRPQ, Section 3.3).
//!
//! A *query rule* has the form
//!
//! ```text
//! (?v) <- (?x1, r1, ?y1), …, (?xn, rn, ?yn)
//! ```
//!
//! where each `ri` is a regular expression over `Σ± = {a, a⁻ | a ∈ Σ}`
//! using concatenation, disjunction, and Kleene star. Without loss of
//! generality (and exactly as the paper restricts), recursion appears only
//! at the outermost level: every expression has the shape
//! `(P1 + … + Pk)` or `(P1 + … + Pk)*` where each `Pi` is a concatenation
//! of symbols — modeled by [`RegularExpr`] holding [`PathExpr`] disjuncts
//! and a `starred` flag.
//!
//! A [`Query`] is a non-empty set of rules of equal arity; its semantics is
//! that of unions of conjunctive Datalog queries under set semantics.

use crate::schema::{PredicateId, Schema};
use std::fmt;

/// A query variable `?x_i`. Variables are numbered within a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?x{}", self.0)
    }
}

/// One symbol of `Σ±`: a predicate, optionally inverted (`a` or `a⁻`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// The underlying predicate `a ∈ Σ`.
    pub predicate: PredicateId,
    /// Whether this occurrence is the inverse `a⁻`.
    pub inverse: bool,
}

impl Symbol {
    /// A forward symbol `a`.
    pub fn forward(predicate: PredicateId) -> Self {
        Symbol {
            predicate,
            inverse: false,
        }
    }

    /// An inverse symbol `a⁻`.
    pub fn inverse(predicate: PredicateId) -> Self {
        Symbol {
            predicate,
            inverse: true,
        }
    }

    /// The symbol with traversal direction flipped.
    pub fn flipped(self) -> Self {
        Symbol {
            predicate: self.predicate,
            inverse: !self.inverse,
        }
    }
}

/// A path expression: a concatenation of zero or more symbols of `Σ±`.
/// The empty path is the regular expression `ε`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PathExpr(pub Vec<Symbol>);

impl PathExpr {
    /// The empty path `ε`.
    pub fn epsilon() -> Self {
        PathExpr(Vec::new())
    }

    /// A single-symbol path.
    pub fn single(symbol: Symbol) -> Self {
        PathExpr(vec![symbol])
    }

    /// Path length (number of symbols).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The reverse path: symbols reversed and each flipped, so that
    /// `p.reversed()` navigates `y → x` whenever `p` navigates `x → y`.
    pub fn reversed(&self) -> PathExpr {
        PathExpr(self.0.iter().rev().map(|s| s.flipped()).collect())
    }
}

/// A regular expression in the paper's outermost-star normal form:
/// `(P1 + … + Pk)` or `(P1 + … + Pk)*` with `k ≥ 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegularExpr {
    /// The disjuncts `P1 … Pk`.
    pub disjuncts: Vec<PathExpr>,
    /// Whether the whole disjunction is under a Kleene star.
    pub starred: bool,
}

impl RegularExpr {
    /// A plain (non-starred) disjunction of paths.
    pub fn union(disjuncts: Vec<PathExpr>) -> Self {
        RegularExpr {
            disjuncts,
            starred: false,
        }
    }

    /// A starred disjunction `(P1 + … + Pk)*`.
    pub fn star(disjuncts: Vec<PathExpr>) -> Self {
        RegularExpr {
            disjuncts,
            starred: true,
        }
    }

    /// A single-path expression.
    pub fn path(p: PathExpr) -> Self {
        RegularExpr {
            disjuncts: vec![p],
            starred: false,
        }
    }

    /// A single-symbol expression.
    pub fn symbol(s: Symbol) -> Self {
        RegularExpr::path(PathExpr::single(s))
    }

    /// Number of disjuncts.
    pub fn disjunct_count(&self) -> usize {
        self.disjuncts.len()
    }

    /// Length of the longest disjunct path.
    pub fn max_path_len(&self) -> usize {
        self.disjuncts.iter().map(PathExpr::len).max().unwrap_or(0)
    }

    /// Whether the expression is recursive (contains a Kleene star).
    pub fn is_recursive(&self) -> bool {
        self.starred
    }

    /// All symbols occurring in the expression.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.disjuncts.iter().flat_map(|p| p.0.iter().copied())
    }
}

/// A conjunct (subgoal) `(?x, r, ?y)` of a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunct {
    /// The source variable `?x`.
    pub src: Var,
    /// The regular expression `r`.
    pub expr: RegularExpr,
    /// The target variable `?y`.
    pub trg: Var,
}

/// A query rule `(?v) <- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The projection (head) variables `?v`; the rule's arity is their count.
    pub head: Vec<Var>,
    /// The body conjuncts.
    pub body: Vec<Conjunct>,
}

impl Rule {
    /// The rule's arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// All distinct variables of the body, in order of first occurrence.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        for c in &self.body {
            for v in [c.src, c.trg] {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// Checks well-formedness: non-empty body, head variables appear in the
    /// body (safety), and every expression has at least one disjunct.
    pub fn well_formed(&self) -> Result<(), QueryError> {
        if self.body.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let vars = self.body_vars();
        for v in &self.head {
            if !vars.contains(v) {
                return Err(QueryError::UnsafeHeadVar(*v));
            }
        }
        for c in &self.body {
            if c.expr.disjuncts.is_empty() {
                return Err(QueryError::EmptyExpression);
            }
        }
        Ok(())
    }
}

/// A UCRPQ query: a non-empty set of rules of identical arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The rules; their union defines the query.
    pub rules: Vec<Rule>,
}

impl Query {
    /// Builds a query from rules, checking non-emptiness, arity agreement,
    /// and per-rule well-formedness.
    pub fn new(rules: Vec<Rule>) -> Result<Self, QueryError> {
        if rules.is_empty() {
            return Err(QueryError::NoRules);
        }
        let arity = rules[0].arity();
        for r in &rules {
            if r.arity() != arity {
                return Err(QueryError::MixedArity);
            }
            r.well_formed()?;
        }
        Ok(Query { rules })
    }

    /// Builds a single-rule query.
    pub fn single(rule: Rule) -> Result<Self, QueryError> {
        Query::new(vec![rule])
    }

    /// The query's arity (0 for Boolean queries).
    pub fn arity(&self) -> usize {
        self.rules[0].arity()
    }

    /// Whether any conjunct of any rule is recursive.
    pub fn is_recursive(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(|c| c.expr.is_recursive()))
    }

    /// The query-size tuple `(#rules, max #conjuncts, max #disjuncts,
    /// max path length)` as defined in Section 3.3.
    pub fn size(&self) -> (usize, usize, usize, usize) {
        let rules = self.rules.len();
        let conjuncts = self.rules.iter().map(|r| r.body.len()).max().unwrap_or(0);
        let disjuncts = self
            .rules
            .iter()
            .flat_map(|r| r.body.iter().map(|c| c.expr.disjunct_count()))
            .max()
            .unwrap_or(0);
        let length = self
            .rules
            .iter()
            .flat_map(|r| r.body.iter().map(|c| c.expr.max_path_len()))
            .max()
            .unwrap_or(0);
        (rules, conjuncts, disjuncts, length)
    }

    /// Renders the query in the paper's rule notation using schema names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            schema,
        }
    }
}

/// Errors raised by [`Query::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No rules supplied.
    NoRules,
    /// Rules disagree on arity.
    MixedArity,
    /// A rule has an empty body.
    EmptyBody,
    /// A head variable does not occur in the body.
    UnsafeHeadVar(Var),
    /// A conjunct has no disjuncts.
    EmptyExpression,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoRules => write!(f, "query has no rules"),
            QueryError::MixedArity => write!(f, "rules have different arities"),
            QueryError::EmptyBody => write!(f, "rule has an empty body"),
            QueryError::UnsafeHeadVar(v) => write!(f, "head variable {v} not in body"),
            QueryError::EmptyExpression => write!(f, "conjunct has no disjuncts"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Pretty-printer for [`Query`] in the paper's notation, e.g.
/// `(?x0, ?x1) <- (?x0, (a·b + c)*, ?x1)`.
pub struct QueryDisplay<'a> {
    query: &'a Query,
    schema: &'a Schema,
}

impl QueryDisplay<'_> {
    fn fmt_symbol(&self, s: Symbol, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.schema.predicate_name(s.predicate))?;
        if s.inverse {
            write!(f, "\u{207B}")?; // superscript minus
        }
        Ok(())
    }

    fn fmt_path(&self, p: &PathExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if p.is_empty() {
            return write!(f, "\u{03B5}"); // ε
        }
        for (i, s) in p.0.iter().enumerate() {
            if i > 0 {
                write!(f, "\u{00B7}")?; // ·
            }
            self.fmt_symbol(*s, f)?;
        }
        Ok(())
    }

    fn fmt_expr(&self, e: &RegularExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let needs_parens = e.starred || e.disjuncts.len() > 1;
        if needs_parens {
            write!(f, "(")?;
        }
        for (i, p) in e.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            self.fmt_path(p, f)?;
        }
        if needs_parens {
            write!(f, ")")?;
        }
        if e.starred {
            write!(f, "*")?;
        }
        Ok(())
    }
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.query.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "(")?;
            for (j, v) in rule.head.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ") <- ")?;
            for (j, c) in rule.body.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "({}, ", c.src)?;
                self.fmt_expr(&c.expr, f)?;
                write!(f, ", {})", c.trg)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Occurrence, SchemaBuilder};

    fn abc_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.predicate("c", None);
        b.build().unwrap()
    }

    /// The first rule of Example 3.4:
    /// `(?x,?y,?z) <- (?x, (a·b + c)*, ?y), (?y, a, ?w), (?w, b⁻, ?z)`.
    fn example_3_4_rule1() -> Rule {
        let a = PredicateId(0);
        let b = PredicateId(1);
        let c = PredicateId(2);
        let x = Var(0);
        let y = Var(1);
        let w = Var(2);
        let z = Var(3);
        Rule {
            head: vec![x, y, z],
            body: vec![
                Conjunct {
                    src: x,
                    expr: RegularExpr::star(vec![
                        PathExpr(vec![Symbol::forward(a), Symbol::forward(b)]),
                        PathExpr::single(Symbol::forward(c)),
                    ]),
                    trg: y,
                },
                Conjunct {
                    src: y,
                    expr: RegularExpr::symbol(Symbol::forward(a)),
                    trg: w,
                },
                Conjunct {
                    src: w,
                    expr: RegularExpr::symbol(Symbol::inverse(b)),
                    trg: z,
                },
            ],
        }
    }

    fn example_3_4_rule2() -> Rule {
        let a = PredicateId(0);
        let b = PredicateId(1);
        let c = PredicateId(2);
        let (x, y, z) = (Var(0), Var(1), Var(3));
        Rule {
            head: vec![x, y, z],
            body: vec![
                Conjunct {
                    src: x,
                    expr: RegularExpr::star(vec![
                        PathExpr(vec![Symbol::forward(a), Symbol::forward(b)]),
                        PathExpr::single(Symbol::forward(c)),
                    ]),
                    trg: y,
                },
                Conjunct {
                    src: y,
                    expr: RegularExpr::symbol(Symbol::forward(a)),
                    trg: z,
                },
            ],
        }
    }

    #[test]
    fn example_3_4_size_tuple() {
        // The paper states this query has size ([2,2],[2,3],[1,2],[1,2]).
        let q = Query::new(vec![example_3_4_rule1(), example_3_4_rule2()]).unwrap();
        assert_eq!(q.size(), (2, 3, 2, 2));
        assert_eq!(q.arity(), 3);
        assert!(q.is_recursive());
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = Query::single(example_3_4_rule1()).unwrap();
        let s = q.display(&abc_schema()).to_string();
        assert_eq!(
            s,
            "(?x0, ?x1, ?x3) <- (?x0, (a\u{00B7}b + c)*, ?x1), \
             (?x1, a, ?x2), (?x2, b\u{207B}, ?x3)"
        );
    }

    #[test]
    fn epsilon_displays() {
        let q = Query::single(Rule {
            head: vec![Var(0)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::path(PathExpr::epsilon()),
                trg: Var(1),
            }],
        })
        .unwrap();
        assert!(q.display(&abc_schema()).to_string().contains('\u{03B5}'));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r1 = Rule {
            head: vec![Var(0)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(Symbol::forward(PredicateId(0))),
                trg: Var(1),
            }],
        };
        let r2 = Rule {
            head: vec![],
            body: r1.body.clone(),
        };
        assert_eq!(
            Query::new(vec![r1, r2]).unwrap_err(),
            QueryError::MixedArity
        );
    }

    #[test]
    fn unsafe_head_rejected() {
        let r = Rule {
            head: vec![Var(9)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(Symbol::forward(PredicateId(0))),
                trg: Var(1),
            }],
        };
        assert_eq!(
            Query::single(r).unwrap_err(),
            QueryError::UnsafeHeadVar(Var(9))
        );
    }

    #[test]
    fn empty_body_and_rules_rejected() {
        assert_eq!(Query::new(vec![]).unwrap_err(), QueryError::NoRules);
        let r = Rule {
            head: vec![],
            body: vec![],
        };
        assert_eq!(Query::single(r).unwrap_err(), QueryError::EmptyBody);
    }

    #[test]
    fn boolean_query_is_arity_zero() {
        let r = Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(Symbol::forward(PredicateId(0))),
                trg: Var(1),
            }],
        };
        let q = Query::single(r).unwrap();
        assert_eq!(q.arity(), 0);
        assert!(!q.is_recursive());
    }

    #[test]
    fn path_reversal() {
        let a = Symbol::forward(PredicateId(0));
        let b_inv = Symbol::inverse(PredicateId(1));
        let p = PathExpr(vec![a, b_inv]);
        let r = p.reversed();
        assert_eq!(
            r.0,
            vec![
                Symbol::forward(PredicateId(1)),
                Symbol::inverse(PredicateId(0))
            ]
        );
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn body_vars_in_first_occurrence_order() {
        let r = example_3_4_rule1();
        assert_eq!(r.body_vars(), vec![Var(0), Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn symbol_flip_is_involution() {
        let s = Symbol::forward(PredicateId(2));
        assert_eq!(s.flipped().flipped(), s);
        assert!(s.flipped().inverse);
    }
}
