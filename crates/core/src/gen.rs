//! The linear-time graph generation algorithm (Fig. 5 of the paper).
//!
//! For each constraint `η(T1, T2, a) = (D_in, D_out)` the algorithm
//!
//! 1. builds a vector `v_src` containing each node of type `T1` repeated
//!    `draw(D_out)` times, and a vector `v_trg` containing each node of type
//!    `T2` repeated `draw(D_in)` times (lines 2–6),
//! 2. shuffles both vectors (line 7),
//! 3. zips them, emitting `min(|v_src|, |v_trg|)` `a`-labeled edges
//!    (lines 8–9).
//!
//! The generator never backtracks and always returns a graph: when the two
//! vectors disagree in length the longer side is truncated, which is exactly
//! the heuristic relaxation the paper argues for (Section 4). Non-specified
//! distributions are handled by letting the specified side dictate the edge
//! count and connecting the unspecified side uniformly at random.
//!
//! The paper notes an optimization "exploiting the average information of
//! the Gaussian distributions to avoid entirely constructing the vectors":
//! because the zip of two shuffled vectors is an exchangeable random
//! matching, a Gaussian side with mean `μ` can be replaced by uniform node
//! sampling with an edge budget of `n_T · μ` — Gaussian degrees concentrate
//! around `μ`, so the matching distribution is nearly identical while the
//! memory for that side's vector (and its shuffle) disappears. The fast path
//! is on by default and measured as an ablation in `gmark-bench`.
//!
//! These entry points are the graph half of the pipeline; the `gmark`
//! facade crate's `run` module orchestrates them (plan → options → sink)
//! behind one API and one error type — prefer that surface unless you
//! need this layer in isolation.

use crate::schema::{Distribution, GraphConfig};
use gmark_stats::{DegreeSampler, Prng, Zipf};
use gmark_store::{
    EdgeSink, EdgeSpool, ForwardingSink, Graph, GraphBuilder, NodeId, ShardSet, TypePartition,
};

/// Options controlling graph generation.
#[derive(Debug, Clone)]
pub struct GeneratorOptions {
    /// Master seed; everything generated is a deterministic function of the
    /// configuration and this value.
    pub seed: u64,
    /// Enables the Gaussian fast path described in the module docs.
    pub gaussian_fast_path: bool,
    /// Number of worker threads for [`generate_graph`] /
    /// [`generate_streamed`]; constraints are sharded across threads with
    /// per-constraint RNG splitting, so the result is identical for any
    /// thread count. `0` means auto-detect via
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            seed: 0x674D_61726B,
            gaussian_fast_path: true,
            threads: 1,
        }
    }
}

impl GeneratorOptions {
    /// Options with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        GeneratorOptions {
            seed,
            ..Default::default()
        }
    }

    /// Resolves the configured thread count: `0` auto-detects via
    /// [`std::thread::available_parallelism`] (falling back to 1 when the
    /// parallelism is unknown). Output never depends on this value.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Per-constraint generation outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintReport {
    /// Length of the (possibly virtual) source vector.
    pub src_slots: u64,
    /// Length of the (possibly virtual) target vector.
    pub trg_slots: u64,
    /// Edges actually emitted: `min(src_slots, trg_slots)`.
    pub edges: u64,
}

/// Summary of one generation run.
#[derive(Debug, Clone, Default)]
pub struct GenReport {
    /// Outcome per schema constraint, in declaration order.
    pub constraints: Vec<ConstraintReport>,
    /// Total edges emitted.
    pub total_edges: u64,
}

/// Generates all edges for `config`, streaming them into `sink`.
///
/// Node ids are assigned contiguously per type (see
/// [`TypePartition`]); the sink receives global node ids.
pub fn generate_into<S: EdgeSink>(
    config: &GraphConfig,
    opts: &GeneratorOptions,
    sink: &mut S,
) -> GenReport {
    let counts = config.node_counts();
    let partition = TypePartition::from_counts(&counts);
    let master = Prng::seed_from_u64(opts.seed);
    let mut report = GenReport::default();
    for (idx, _) in config.schema.constraints().iter().enumerate() {
        let mut rng = master.split(idx as u64);
        let cr = generate_constraint(config, opts, idx, &partition, &mut rng, sink);
        report.total_edges += cr.edges;
        report.constraints.push(cr);
    }
    report
}

/// Generates a full in-memory [`Graph`] (optionally in parallel).
///
/// With `opts.threads > 1` the pipeline is parallel end to end: edge
/// generation fans constraints out over worker threads (each constraint
/// draws from an RNG split keyed by its index, so assignment order is
/// irrelevant), the per-constraint shards are then merged in ascending
/// constraint order — reproducing the exact builder state of a sequential
/// run — and CSR finalization fans `(predicate, direction)` items out over
/// the same number of workers. The resulting graph and report are
/// bit-identical for every thread count.
pub fn generate_graph(config: &GraphConfig, opts: &GeneratorOptions) -> (Graph, GenReport) {
    let counts = config.node_counts();
    let partition = TypePartition::from_counts(&counts);
    let pred_count = config.schema.predicate_count();
    let n_constraints = config.schema.constraints().len();
    let threads = opts.effective_threads().max(1);
    let gen_threads = threads.min(n_constraints.max(1));

    if threads <= 1 {
        let mut builder = GraphBuilder::new(partition, pred_count);
        let report = generate_into(config, opts, &mut builder);
        return (builder.build(), report);
    }

    // Phase 1 — parallel edge generation. Workers claim constraints from a
    // shared counter (dynamic load balance: constraint costs are skewed by
    // type sizes) and keep one builder per constraint so the merge below
    // can replay them in declaration order.
    let master = Prng::seed_from_u64(opts.seed);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut batches: Vec<(usize, GraphBuilder, ConstraintReport)> = std::thread::scope(|scope| {
        let (next, partition, master) = (&next, &partition, &master);
        let handles: Vec<_> = (0..gen_threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= n_constraints {
                            break;
                        }
                        let mut rng = master.split(idx as u64);
                        let mut builder = GraphBuilder::new(partition.clone(), pred_count);
                        let cr = generate_constraint(
                            config,
                            opts,
                            idx,
                            partition,
                            &mut rng,
                            &mut builder,
                        );
                        out.push((idx, builder, cr));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("generator thread panicked"))
            .collect()
    });

    // Phase 2 — deterministic merge: absorb shards in constraint order so
    // the root builder's per-predicate edge lists are byte-identical to a
    // sequential run's.
    batches.sort_by_key(|(idx, _, _)| *idx);
    let mut root = GraphBuilder::new(partition, pred_count);
    let mut report = GenReport::default();
    for (_, shard, cr) in batches {
        root.absorb(shard);
        report.total_edges += cr.edges;
        report.constraints.push(cr);
    }

    // Phase 3 — CSR finalization on worker threads.
    (root.build_with_threads(threads), report)
}

/// Options for [`generate_streamed`]: where the N-Triples go and where the
/// temporary per-constraint shards live.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Base IRI of the N-Triples output (no trailing slash needed).
    pub base: String,
    /// Parent directory for the temporary shard files. Pick one on the
    /// same filesystem as the final output so the concatenation is a plain
    /// sequential copy. Defaults to [`std::env::temp_dir`].
    pub scratch_dir: std::path::PathBuf,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            base: "http://gmark.example.org".to_owned(),
            scratch_dir: std::env::temp_dir(),
        }
    }
}

/// Generates the graph as N-Triples straight into `out` without ever
/// materializing it: the memory-bounded counterpart of [`generate_graph`].
///
/// Constraints fan out over `opts.threads` workers (0 = auto-detect), each
/// writing the edges of the constraints it claims into that constraint's
/// own shard file ([`ShardSet`]); shards are then concatenated in
/// ascending constraint order. Peak memory is bounded by the slot vectors
/// of the largest single constraint (`O(max type size · mean degree)` per
/// worker), not by the total edge count — this is what makes the paper's
/// Table 3 scale (10⁹ edges) reachable.
///
/// Because each constraint draws from an RNG stream split off the master
/// seed by constraint index, shard bytes are independent of scheduling,
/// and the output is **byte-identical for every thread count, including
/// 1** (single-threaded runs skip the temp files and stream constraints in
/// order directly into `out`, which is the same byte sequence by
/// construction). Unlike [`generate_graph`]'s serialization, the stream
/// preserves generation order and keeps duplicate triples (RDF set
/// semantics make the data equivalent).
///
/// Returns the generation report and the number of triples written.
pub fn generate_streamed<W: std::io::Write>(
    config: &GraphConfig,
    opts: &GeneratorOptions,
    stream: &StreamOptions,
    out: &mut W,
) -> std::io::Result<(GenReport, u64)> {
    generate_streamed_impl(config, opts, stream, out, None)
}

/// [`generate_streamed`] with a second output: every edge is also teed,
/// as raw `(src, trg)` records, into the per-constraint [`EdgeSpool`] that
/// feeds the on-disk store builder
/// ([`gmark_store::build_store_from_spool`]). The N-Triples bytes written
/// to `out` are identical to a plain streamed run, and the spool contents
/// are a pure function of `(config, seed)` like everything else — workers
/// write only the spool files of constraints they claimed, so thread
/// scheduling never reorders records within a file.
pub fn generate_streamed_spooled<W: std::io::Write>(
    config: &GraphConfig,
    opts: &GeneratorOptions,
    stream: &StreamOptions,
    out: &mut W,
    spool: &EdgeSpool,
) -> std::io::Result<(GenReport, u64)> {
    generate_streamed_impl(config, opts, stream, out, Some(spool))
}

fn generate_streamed_impl<W: std::io::Write>(
    config: &GraphConfig,
    opts: &GeneratorOptions,
    stream: &StreamOptions,
    out: &mut W,
    spool: Option<&EdgeSpool>,
) -> std::io::Result<(GenReport, u64)> {
    let names = config.schema.predicate_names();
    let n_constraints = config.schema.constraints().len();
    let threads = opts.effective_threads().max(1).min(n_constraints.max(1));
    // Encode the predicate alphabet once; every shard writer shares it.
    let format = std::sync::Arc::new(gmark_store::NTriplesFormat::new(&names, &stream.base));
    let counts = config.node_counts();
    let partition = TypePartition::from_counts(&counts);
    let master = Prng::seed_from_u64(opts.seed);

    if threads <= 1 {
        // Constraint order equals concat order, so the plain sequential
        // stream emits the same bytes as the sharded path without touching
        // disk twice. (This loop is [`generate_into`] with a per-constraint
        // spool tee spliced in.)
        let mut writer = gmark_store::NTriplesWriter::with_format(&mut *out, format);
        let mut report = GenReport::default();
        for idx in 0..n_constraints {
            let mut rng = master.split(idx as u64);
            let cr = match spool {
                None => generate_constraint(config, opts, idx, &partition, &mut rng, &mut writer),
                Some(spool) => {
                    let mut raw = spool.writer(idx)?;
                    let mut tee = ForwardingSink::new(&mut writer, &mut raw);
                    let cr = generate_constraint(config, opts, idx, &partition, &mut rng, &mut tee);
                    raw.finish()?;
                    cr
                }
            };
            report.total_edges += cr.edges;
            report.constraints.push(cr);
        }
        let written = writer.finish()?;
        return Ok((report, written));
    }

    let shards = ShardSet::create(&stream.scratch_dir, n_constraints)?;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<std::io::Result<Vec<(usize, ConstraintReport, u64)>>> =
        std::thread::scope(|scope| {
            let (next, partition, master, shards, format) =
                (&next, &partition, &master, &shards, &format);
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if idx >= n_constraints {
                                break;
                            }
                            let mut sink = shards.writer(idx, format.clone())?;
                            let mut rng = master.split(idx as u64);
                            let cr = match spool {
                                None => generate_constraint(
                                    config, opts, idx, partition, &mut rng, &mut sink,
                                ),
                                Some(spool) => {
                                    let mut raw = spool.writer(idx)?;
                                    let mut tee = ForwardingSink::new(&mut sink, &mut raw);
                                    let cr = generate_constraint(
                                        config, opts, idx, partition, &mut rng, &mut tee,
                                    );
                                    raw.finish()?;
                                    cr
                                }
                            };
                            let written = sink.finish()?;
                            done.push((idx, cr, written));
                        }
                        Ok(done)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("streaming generator thread panicked"))
                .collect()
        });

    let mut batches = Vec::with_capacity(n_constraints);
    for result in per_worker {
        batches.extend(result?);
    }
    batches.sort_by_key(|(idx, _, _)| *idx);
    let mut report = GenReport::default();
    let mut written = 0u64;
    for (_, cr, w) in batches {
        report.total_edges += cr.edges;
        report.constraints.push(cr);
        written += w;
    }
    shards.concat_into(out)?;
    out.flush()?;
    Ok((report, written))
}

/// How one side of a constraint contributes edge endpoints.
enum SidePlan {
    /// Materialized, shuffled slot vector (Fig. 5's `v_src` / `v_trg`).
    Slots(Vec<NodeId>),
    /// `budget` endpoints drawn uniformly at random (non-specified sides
    /// and the Gaussian fast path).
    UniformDraws(u64),
}

impl SidePlan {
    fn total(&self) -> u64 {
        match self {
            SidePlan::Slots(v) => v.len() as u64,
            SidePlan::UniformDraws(b) => *b,
        }
    }
}

fn generate_constraint<S: EdgeSink>(
    config: &GraphConfig,
    opts: &GeneratorOptions,
    idx: usize,
    partition: &TypePartition,
    rng: &mut Prng,
    sink: &mut S,
) -> ConstraintReport {
    let c = &config.schema.constraints()[idx];
    let n_src = partition.count(c.source.0) as u64;
    let n_trg = partition.count(c.target.0) as u64;
    if n_src == 0 || n_trg == 0 {
        return ConstraintReport {
            src_slots: 0,
            trg_slots: 0,
            edges: 0,
        };
    }
    let pred = c.predicate.0;
    let src_base = partition.range(c.source.0).start;
    let trg_base = partition.range(c.target.0).start;

    // Phase 1 — the non-Zipf sides fix their slot totals independently:
    // uniform/Gaussian sides draw per-node degrees (Fig. 5 lines 3–6); a
    // Gaussian side under the fast path contributes its expected total with
    // uniform endpoint draws; non-specified sides adapt to the other side.
    let fast_out = opts.gaussian_fast_path && c.dout.is_gaussian();
    let fast_in = opts.gaussian_fast_path && c.din.is_gaussian();
    let expected = |d: &Distribution, n_own: u64, n_other: u64| -> u64 {
        d.mean(n_other)
            .map(|m| (m * n_own as f64).round() as u64)
            .unwrap_or(0)
    };
    // `None` = side total still open (Zipf awaiting scaling, or
    // non-specified awaiting the opposite side).
    let mut src_total: Option<u64> = None;
    let mut trg_total: Option<u64> = None;
    let mut src_slots: Option<Vec<NodeId>> = None;
    let mut trg_slots: Option<Vec<NodeId>> = None;
    match &c.dout {
        Distribution::Zipfian { .. } | Distribution::NonSpecified => {}
        d if fast_out => src_total = Some(expected(d, n_src, n_trg)),
        d => {
            let v = fill_slots(n_src, &d.sampler(n_trg).expect("specified"), rng);
            src_total = Some(v.len() as u64);
            src_slots = Some(v);
        }
    }
    match &c.din {
        Distribution::Zipfian { .. } | Distribution::NonSpecified => {}
        d if fast_in => trg_total = Some(expected(d, n_trg, n_src)),
        d => {
            let v = fill_slots(n_trg, &d.sampler(n_src).expect("specified"), rng);
            trg_total = Some(v.len() as u64);
            trg_slots = Some(v);
        }
    }

    // Phase 2 — Zipfian sides. gMark's Zipfian constrains the *shape* of
    // the degree distribution, not its absolute mean (Section 4: "our
    // method relies on the types of distributions and not on the actual
    // parameters"). A Zipf side therefore scales its edge supply to match
    // the opposite side's total (or the predicate's occurrence budget),
    // apportioning that many slots across its nodes proportionally to iid
    // Zipf weights — keeping hubs heavy while never starving the opposite
    // side. Without this scaling, a fixed-size type (e.g. the 100 cities of
    // Fig. 2) could absorb only O(1) of a growing type's edges.
    let zipf_budget = |other: Option<u64>, own_natural: u64| -> u64 {
        other
            .or_else(|| {
                config
                    .schema
                    .predicate_constraint(c.predicate)
                    .map(|o| o.resolve(config.n))
            })
            .unwrap_or(own_natural)
    };
    if let Distribution::Zipfian { s } = c.dout {
        let sampler = Zipf::new(n_trg.max(1), s);
        let weights: Vec<u64> = (0..n_src).map(|_| sampler.sample(rng)).collect();
        let natural: u64 = weights.iter().sum();
        let m = zipf_budget(trg_total, natural);
        let v = apportion_slots(&weights, m);
        src_total = Some(v.len() as u64);
        src_slots = Some(v);
    }
    if let Distribution::Zipfian { s } = c.din {
        let sampler = Zipf::new(n_src.max(1), s);
        let weights: Vec<u64> = (0..n_trg).map(|_| sampler.sample(rng)).collect();
        let natural: u64 = weights.iter().sum();
        let m = zipf_budget(src_total, natural);
        let v = apportion_slots(&weights, m);
        trg_total = Some(v.len() as u64);
        trg_slots = Some(v);
    }

    // Phase 3 — non-specified sides adopt the opposite side's total; with
    // both sides non-specified, the predicate's occurrence constraint
    // provides the budget (shared among that predicate's fully-unspecified
    // constraints), falling back to min(n_src, n_trg).
    if src_total.is_none() && trg_total.is_none() {
        let peers = config
            .schema
            .constraints()
            .iter()
            .filter(|o| {
                o.predicate == c.predicate && !o.din.is_specified() && !o.dout.is_specified()
            })
            .count()
            .max(1) as u64;
        let budget = config
            .schema
            .predicate_constraint(c.predicate)
            .map(|occ| occ.resolve(config.n) / peers)
            .unwrap_or_else(|| n_src.min(n_trg));
        src_total = Some(budget);
        trg_total = Some(budget);
    } else {
        if src_total.is_none() {
            src_total = trg_total;
        }
        if trg_total.is_none() {
            trg_total = src_total;
        }
    }
    let src_total = src_total.expect("resolved above");
    let trg_total = trg_total.expect("resolved above");

    // Phase 4 — Fig. 5 lines 7–9: shuffle, zip, truncate to the minimum.
    let mut src_plan = match src_slots {
        Some(mut v) => {
            rng.shuffle(&mut v);
            SidePlan::Slots(v)
        }
        None => SidePlan::UniformDraws(src_total),
    };
    let mut trg_plan = match trg_slots {
        Some(mut v) => {
            rng.shuffle(&mut v);
            SidePlan::Slots(v)
        }
        None => SidePlan::UniformDraws(trg_total),
    };
    let edges = src_plan.total().min(trg_plan.total());
    for i in 0..edges as usize {
        let s = match &mut src_plan {
            SidePlan::Slots(v) => v[i],
            SidePlan::UniformDraws(_) => rng.below(n_src) as NodeId,
        };
        let t = match &mut trg_plan {
            SidePlan::Slots(v) => v[i],
            SidePlan::UniformDraws(_) => rng.below(n_trg) as NodeId,
        };
        sink.edge(src_base + s, pred, trg_base + t);
    }
    ConstraintReport {
        src_slots: src_total,
        trg_slots: trg_total,
        edges,
    }
}

/// Lines 3–6 of Fig. 5: node `j` (within its type) appears `draw(D)` times.
fn fill_slots<D: DegreeSampler>(n: u64, dist: &D, rng: &mut Prng) -> Vec<NodeId> {
    let mut v = Vec::with_capacity((n as f64 * dist.mean()).ceil() as usize);
    for j in 0..n {
        let d = dist.sample(rng);
        for _ in 0..d {
            v.push(j as NodeId);
        }
    }
    v
}

/// Distributes exactly `total` slots across nodes proportionally to
/// `weights` (largest-remainder apportionment), returning the slot vector
/// in node order (callers shuffle).
fn apportion_slots(weights: &[u64], total: u64) -> Vec<NodeId> {
    let w_sum: u64 = weights.iter().sum();
    if w_sum == 0 || total == 0 {
        return Vec::new();
    }
    let mut degrees: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = w as f64 * total as f64 / w_sum as f64;
        let d = exact.floor() as u64;
        degrees.push(d);
        remainders.push((exact - d as f64, i));
        assigned += d;
    }
    let mut deficit = total.saturating_sub(assigned) as usize;
    if deficit > 0 {
        // Give the remaining slots to the largest fractional remainders.
        deficit = deficit.min(remainders.len());
        let nth = remainders.len() - deficit;
        remainders.select_nth_unstable_by(nth, |a, b| {
            a.0.partial_cmp(&b.0).expect("remainders are finite")
        });
        for &(_, i) in &remainders[nth..] {
            degrees[i] += 1;
        }
    }
    let mut slots = Vec::with_capacity(total as usize);
    for (i, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            slots.push(i as NodeId);
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Distribution, EdgeConstraint, Occurrence, Schema, SchemaBuilder};
    use gmark_store::{CountingSink, VecSink};

    fn two_type_schema(din: Distribution, dout: Distribution) -> Schema {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("src", Occurrence::Proportion(0.5));
        let t = b.node_type("trg", Occurrence::Proportion(0.5));
        let p = b.predicate("p", None);
        b.edge(s, p, t, din, dout);
        b.build().unwrap()
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GraphConfig::new(
            500,
            two_type_schema(Distribution::uniform(1, 3), Distribution::uniform(1, 3)),
        );
        let opts = GeneratorOptions::with_seed(7);
        let mut a = VecSink::default();
        let mut b = VecSink::default();
        generate_into(&cfg, &opts, &mut a);
        generate_into(&cfg, &opts, &mut b);
        assert_eq!(a.triples, b.triples);
        let mut c = VecSink::default();
        generate_into(&cfg, &GeneratorOptions::with_seed(8), &mut c);
        assert_ne!(a.triples, c.triples, "different seeds should differ");
    }

    #[test]
    fn exactly_one_macro_gives_out_degree_one() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(50));
        let t = b.node_type("t", Occurrence::Fixed(10));
        let p = b.predicate("p", None);
        b.constraint(EdgeConstraint::exactly_one(s, p, t));
        let cfg = GraphConfig::new(60, b.build().unwrap());
        let mut sink = VecSink::default();
        generate_into(&cfg, &GeneratorOptions::with_seed(1), &mut sink);
        assert_eq!(sink.triples.len(), 50);
        let mut out_deg = vec![0u32; 60];
        for (src, _, trg) in &sink.triples {
            out_deg[*src as usize] += 1;
            assert!((50..60).contains(trg), "targets must be of type t");
        }
        assert!(out_deg[..50].iter().all(|&d| d == 1));
    }

    #[test]
    fn at_most_one_macro_bounds_out_degree() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(200));
        let t = b.node_type("t", Occurrence::Fixed(10));
        let p = b.predicate("p", None);
        b.constraint(EdgeConstraint::at_most_one(s, p, t));
        let cfg = GraphConfig::new(210, b.build().unwrap());
        let mut sink = VecSink::default();
        generate_into(&cfg, &GeneratorOptions::with_seed(2), &mut sink);
        let mut out_deg = vec![0u32; 210];
        for (src, _, _) in &sink.triples {
            out_deg[*src as usize] += 1;
        }
        assert!(out_deg.iter().all(|&d| d <= 1));
        // Expect roughly half the sources to emit an edge.
        assert!(
            (60..140).contains(&sink.triples.len()),
            "{}",
            sink.triples.len()
        );
    }

    #[test]
    fn none_macro_emits_nothing() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(20));
        let t = b.node_type("t", Occurrence::Fixed(20));
        let p = b.predicate("p", None);
        b.constraint(EdgeConstraint::none(s, p, t));
        let cfg = GraphConfig::new(40, b.build().unwrap());
        let mut sink = CountingSink::new(1);
        generate_into(&cfg, &GeneratorOptions::with_seed(3), &mut sink);
        assert_eq!(sink.total(), 0);
    }

    #[test]
    fn both_specified_truncates_to_min_side() {
        // Sources supply 2 slots each (100 total), targets demand 1 each
        // (50 total): exactly 50 edges must be emitted (Fig. 5 line 8).
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(50));
        let t = b.node_type("t", Occurrence::Fixed(50));
        let p = b.predicate("p", None);
        b.edge(
            s,
            p,
            t,
            Distribution::uniform(1, 1),
            Distribution::uniform(2, 2),
        );
        let cfg = GraphConfig::new(100, b.build().unwrap());
        let mut sink = VecSink::default();
        let report = generate_into(&cfg, &GeneratorOptions::with_seed(4), &mut sink);
        assert_eq!(report.constraints[0].src_slots, 100);
        assert_eq!(report.constraints[0].trg_slots, 50);
        assert_eq!(report.constraints[0].edges, 50);
        // Every target node has in-degree exactly 1.
        let mut in_deg = vec![0u32; 100];
        for (_, _, trg) in &sink.triples {
            in_deg[*trg as usize] += 1;
        }
        assert!(in_deg[50..].iter().all(|&d| d == 1));
    }

    #[test]
    fn zipfian_out_degrees_are_skewed() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Proportion(0.5));
        let t = b.node_type("t", Occurrence::Proportion(0.5));
        let p = b.predicate("p", None);
        b.edge(
            s,
            p,
            t,
            Distribution::NonSpecified,
            Distribution::zipfian(2.5),
        );
        let cfg = GraphConfig::new(10_000, b.build().unwrap());
        let (g, _) = generate_graph(&cfg, &GeneratorOptions::with_seed(5));
        let degs = g.out_degrees(0, 0);
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            max as f64 > 10.0 * mean,
            "power law should create hubs: max {max}, mean {mean}"
        );
    }

    #[test]
    fn gaussian_degrees_concentrate() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Proportion(0.5));
        let t = b.node_type("t", Occurrence::Proportion(0.5));
        let p = b.predicate("p", None);
        b.edge(
            s,
            p,
            t,
            Distribution::NonSpecified,
            Distribution::gaussian(5.0, 1.0),
        );
        let cfg = GraphConfig::new(4_000, b.build().unwrap());
        let opts = GeneratorOptions {
            gaussian_fast_path: false,
            ..GeneratorOptions::with_seed(6)
        };
        let (g, _) = generate_graph(&cfg, &opts);
        // NonSpecified in-dist: out-degrees are exact Gaussian draws.
        let degs = g.out_degrees(0, 0);
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!((mean - 5.0).abs() < 0.3, "mean out-degree {mean}");
    }

    #[test]
    fn fast_path_preserves_edge_budget() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Proportion(0.5));
        let t = b.node_type("t", Occurrence::Proportion(0.5));
        let p = b.predicate("p", None);
        b.edge(
            s,
            p,
            t,
            Distribution::gaussian(3.0, 0.5),
            Distribution::gaussian(3.0, 0.5),
        );
        let cfg = GraphConfig::new(2_000, b.build().unwrap());

        let mut fast = CountingSink::new(1);
        let fast_opts = GeneratorOptions {
            gaussian_fast_path: true,
            ..GeneratorOptions::with_seed(7)
        };
        generate_into(&cfg, &fast_opts, &mut fast);

        let mut slow = CountingSink::new(1);
        let slow_opts = GeneratorOptions {
            gaussian_fast_path: false,
            ..GeneratorOptions::with_seed(7)
        };
        generate_into(&cfg, &slow_opts, &mut slow);

        let (f, s) = (fast.total() as f64, slow.total() as f64);
        assert!((f - s).abs() / s < 0.05, "fast {f} vs slow {s}");
    }

    #[test]
    fn fixed_predicate_budget_for_unspecified_pair() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(100));
        let t = b.node_type("t", Occurrence::Fixed(100));
        let p = b.predicate("p", Some(Occurrence::Fixed(777)));
        b.edge(
            s,
            p,
            t,
            Distribution::NonSpecified,
            Distribution::NonSpecified,
        );
        let cfg = GraphConfig::new(200, b.build().unwrap());
        let mut sink = CountingSink::new(1);
        generate_into(&cfg, &GeneratorOptions::with_seed(8), &mut sink);
        assert_eq!(sink.total(), 777);
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let schema = crate::schema::tests::example_3_3();
        let cfg = GraphConfig::new(2_000, schema);
        let seq_opts = GeneratorOptions {
            threads: 1,
            ..GeneratorOptions::with_seed(9)
        };
        let par_opts = GeneratorOptions {
            threads: 4,
            ..GeneratorOptions::with_seed(9)
        };
        let (g_seq, r_seq) = generate_graph(&cfg, &seq_opts);
        let (g_par, r_par) = generate_graph(&cfg, &par_opts);
        assert_eq!(r_seq.total_edges, r_par.total_edges);
        assert_eq!(r_seq.constraints, r_par.constraints);
        for pred in 0..g_seq.predicate_count() {
            let a: Vec<_> = g_seq.edges(pred).collect();
            let b: Vec<_> = g_par.edges(pred).collect();
            assert_eq!(a, b, "predicate {pred} edge sets must match");
        }
    }

    #[test]
    fn streamed_is_byte_identical_across_thread_counts() {
        let schema = crate::schema::tests::example_3_3();
        let cfg = GraphConfig::new(2_000, schema);
        let stream = StreamOptions::default();
        let mut baseline = Vec::new();
        let opts1 = GeneratorOptions {
            threads: 1,
            ..GeneratorOptions::with_seed(12)
        };
        let (r1, w1) = generate_streamed(&cfg, &opts1, &stream, &mut baseline).unwrap();
        assert!(w1 > 0);
        assert_eq!(r1.total_edges, w1);
        for threads in [2usize, 8] {
            let opts = GeneratorOptions {
                threads,
                ..GeneratorOptions::with_seed(12)
            };
            let mut buf = Vec::new();
            let (r, w) = generate_streamed(&cfg, &opts, &stream, &mut buf).unwrap();
            assert_eq!(buf, baseline, "{threads} threads: bytes differ");
            assert_eq!(w, w1);
            assert_eq!(r.constraints, r1.constraints);
        }
    }

    #[test]
    fn streamed_matches_sequential_sink_stream() {
        // The streamed file is exactly what generate_into + one N-Triples
        // writer produces: same edges, same order, duplicates kept.
        let schema = crate::schema::tests::example_3_3();
        let cfg = GraphConfig::new(1_000, schema.clone());
        let opts = GeneratorOptions {
            threads: 4,
            ..GeneratorOptions::with_seed(13)
        };
        let mut streamed = Vec::new();
        generate_streamed(&cfg, &opts, &StreamOptions::default(), &mut streamed).unwrap();

        let mut direct = Vec::new();
        let mut writer =
            gmark_store::NTriplesWriter::new(&mut direct, cfg.schema.predicate_names());
        generate_into(&cfg, &opts, &mut writer);
        writer.finish().unwrap();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn zero_threads_means_auto_detect() {
        let opts = GeneratorOptions {
            threads: 0,
            ..Default::default()
        };
        assert!(opts.effective_threads() >= 1);
        let cfg = GraphConfig::new(
            300,
            two_type_schema(Distribution::uniform(1, 2), Distribution::uniform(1, 2)),
        );
        let mut auto = Vec::new();
        generate_streamed(&cfg, &opts, &StreamOptions::default(), &mut auto).unwrap();
        let mut one = Vec::new();
        let opts1 = GeneratorOptions {
            threads: 1,
            ..Default::default()
        };
        generate_streamed(&cfg, &opts1, &StreamOptions::default(), &mut one).unwrap();
        assert_eq!(auto, one);
    }

    #[test]
    fn empty_types_produce_no_edges() {
        let mut b = SchemaBuilder::new();
        let s = b.node_type("s", Occurrence::Fixed(0));
        let t = b.node_type("t", Occurrence::Fixed(10));
        let p = b.predicate("p", None);
        b.edge(
            s,
            p,
            t,
            Distribution::uniform(1, 1),
            Distribution::uniform(1, 1),
        );
        let cfg = GraphConfig::new(10, b.build().unwrap());
        let mut sink = CountingSink::new(1);
        let report = generate_into(&cfg, &GeneratorOptions::with_seed(10), &mut sink);
        assert_eq!(sink.total(), 0);
        assert_eq!(report.total_edges, 0);
    }

    #[test]
    fn targets_and_sources_respect_type_ranges() {
        let schema = crate::schema::tests::example_3_3();
        let cfg = GraphConfig::new(100, schema.clone());
        let mut sink = VecSink::default();
        generate_into(&cfg, &GeneratorOptions::with_seed(11), &mut sink);
        let counts = cfg.node_counts();
        let partition = TypePartition::from_counts(&counts);
        for (src, pred, trg) in &sink.triples {
            let st = partition.type_of(*src);
            let tt = partition.type_of(*trg);
            // Every emitted edge must correspond to some schema constraint.
            assert!(
                schema
                    .constraints()
                    .iter()
                    .any(|c| c.source.0 == st && c.target.0 == tt && c.predicate.0 == *pred),
                "edge ({src},{pred},{trg}) with types ({st},{tt}) matches no constraint"
            );
        }
    }
}
