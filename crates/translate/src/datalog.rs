//! Datalog translation.
//!
//! UCRPQs are "expressible in modern Datalog-like query languages"
//! (Section 2); the translation is the classical one. The EDB consists of
//! `edge_<label>(X, Y)` facts plus `node(X)`; each conjunct's regular
//! expression compiles to IDB predicates:
//!
//! * a path (concatenation) becomes one rule chaining fresh variables,
//! * a disjunction becomes several rules with the same head,
//! * a Kleene star becomes the linear recursion
//!   `p(X, X) :- node(X). p(X, Y) :- p(X, Z), step(Z, Y).`
//!
//! The same program shape is consumed by the in-repo semi-naive Datalog
//! engine (`gmark-engines`), keeping the textual output and the executable
//! semantics aligned.

use gmark_core::query::{PathExpr, Query, Symbol};
use gmark_core::schema::Schema;
use std::fmt::Write;

fn edge_atom(s: Symbol, from: &str, to: &str, schema: &Schema) -> String {
    let name = schema.predicate_name(s.predicate);
    if s.inverse {
        format!("edge_{name}({to}, {from})")
    } else {
        format!("edge_{name}({from}, {to})")
    }
}

/// Emits rules defining `head_name(X, Y)` as one path; returns the rule text.
fn path_rules(head_name: &str, p: &PathExpr, schema: &Schema) -> String {
    if p.is_empty() {
        return format!("{head_name}(X, X) :- node(X).\n");
    }
    let mut body = Vec::with_capacity(p.len());
    for (i, sym) in p.0.iter().enumerate() {
        let from = if i == 0 {
            "X".to_owned()
        } else {
            format!("Z{i}")
        };
        let to = if i + 1 == p.len() {
            "Y".to_owned()
        } else {
            format!("Z{}", i + 1)
        };
        body.push(edge_atom(*sym, &from, &to, schema));
    }
    format!("{head_name}(X, Y) :- {}.\n", body.join(", "))
}

/// Translates a UCRPQ into a Datalog program with answer predicate `ans`.
pub fn translate(query: &Query, schema: &Schema) -> String {
    let mut out = String::new();
    let mut fresh = 0usize;
    for rule in &query.rules {
        let mut body_atoms = Vec::with_capacity(rule.body.len());
        let mut definitions = String::new();
        for c in &rule.body {
            // A single non-starred, single-symbol disjunct inlines directly.
            if !c.expr.starred && c.expr.disjuncts.len() == 1 && c.expr.disjuncts[0].len() == 1 {
                let sym = c.expr.disjuncts[0].0[0];
                body_atoms.push(edge_atom(
                    sym,
                    &format!("X{}", c.src.0),
                    &format!("X{}", c.trg.0),
                    schema,
                ));
                continue;
            }
            let p_name = format!("p{fresh}");
            fresh += 1;
            if c.expr.starred {
                let step = format!("{p_name}_step");
                for d in &c.expr.disjuncts {
                    definitions.push_str(&path_rules(&step, d, schema));
                }
                let _ = writeln!(definitions, "{p_name}(X, X) :- node(X).");
                let _ = writeln!(
                    definitions,
                    "{p_name}(X, Y) :- {p_name}(X, Z), {step}(Z, Y)."
                );
            } else {
                for d in &c.expr.disjuncts {
                    definitions.push_str(&path_rules(&p_name, d, schema));
                }
            }
            body_atoms.push(format!("{p_name}(X{}, X{})", c.src.0, c.trg.0));
        }
        out.push_str(&definitions);
        let head = if rule.head.is_empty() {
            "ans()".to_owned()
        } else {
            let vars: Vec<String> = rule.head.iter().map(|v| format!("X{}", v.0)).collect();
            format!("ans({})", vars.join(", "))
        };
        let _ = writeln!(out, "{head} :- {}.", body_atoms.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, RegularExpr, Rule, Var};
    use gmark_core::schema::{Occurrence, PredicateId, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.build().unwrap()
    }

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    #[test]
    fn single_edge_inlines() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert_eq!(s, "ans(X0, X1) :- edge_a(X0, X1).\n");
    }

    #[test]
    fn inverse_swaps_arguments() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(1).flipped()),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert_eq!(s, "ans(X0, X1) :- edge_b(X1, X0).\n");
    }

    #[test]
    fn concatenation_chains_variables() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::path(PathExpr(vec![sym(0), sym(1)])),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(
            s.contains("p0(X, Y) :- edge_a(X, Z1), edge_b(Z1, Y)."),
            "{s}"
        );
        assert!(s.contains("ans(X0, X1) :- p0(X0, X1)."), "{s}");
    }

    #[test]
    fn disjunction_multiplies_rules() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::union(vec![PathExpr(vec![sym(0)]), PathExpr(vec![sym(1)])]),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("p0(X, Y) :- edge_a(X, Y)."), "{s}");
        assert!(s.contains("p0(X, Y) :- edge_b(X, Y)."), "{s}");
    }

    #[test]
    fn star_emits_linear_recursion() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1)])]),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(
            s.contains("p0_step(X, Y) :- edge_a(X, Z1), edge_b(Z1, Y)."),
            "{s}"
        );
        assert!(s.contains("p0(X, X) :- node(X)."), "{s}");
        assert!(s.contains("p0(X, Y) :- p0(X, Z), p0_step(Z, Y)."), "{s}");
    }

    #[test]
    fn epsilon_path() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::path(PathExpr::epsilon()),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("p0(X, X) :- node(X)."), "{s}");
    }

    #[test]
    fn boolean_head() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("ans() :- edge_a(X0, X1)."), "{s}");
    }

    #[test]
    fn multi_rule_union_shares_ans() {
        let mk = |p: usize| Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(p)),
                trg: Var(1),
            }],
        };
        let q = Query::new(vec![mk(0), mk(1)]).unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("ans(X0, X1) :- edge_a(X0, X1)."), "{s}");
        assert!(s.contains("ans(X0, X1) :- edge_b(X0, X1)."), "{s}");
    }
}
