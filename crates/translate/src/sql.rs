//! PostgreSQL SQL:1999 translation.
//!
//! The paper (footnote 4) uses "the standard translation of UCRPQ's into
//! recursive views, implemented using linear recursion". Queries run over
//! two base tables:
//!
//! ```sql
//! CREATE TABLE edge (src BIGINT, label TEXT, trg BIGINT);
//! CREATE TABLE node (id BIGINT);
//! ```
//!
//! Each conjunct becomes a named CTE producing `(s, t)` pairs: symbols are
//! filtered scans of `edge` (inverses swap the columns), concatenations are
//! joins, disjunctions are `UNION`s, and a Kleene star becomes a
//! `WITH RECURSIVE` CTE seeded with the zero-length path (`node`) and
//! extended by joining the starred body on the right — linear recursion.
//! The final `SELECT DISTINCT` joins the conjunct CTEs on shared variables.

use crate::TranslateError;
use gmark_core::query::{PathExpr, Query, RegularExpr, Rule, Symbol};
use gmark_core::schema::Schema;
use std::fmt::Write;

fn symbol_select(s: Symbol, schema: &Schema) -> String {
    let name = schema.predicate_name(s.predicate);
    if s.inverse {
        format!("SELECT trg AS s, src AS t FROM edge WHERE label = '{name}'")
    } else {
        format!("SELECT src AS s, trg AS t FROM edge WHERE label = '{name}'")
    }
}

/// A `(s, t)` subquery for one path (concatenation) expression.
fn path_select(p: &PathExpr, schema: &Schema) -> String {
    if p.is_empty() {
        return "SELECT id AS s, id AS t FROM node".to_owned();
    }
    if p.len() == 1 {
        return symbol_select(p.0[0], schema);
    }
    // Join chain e0 ⋈ e1 ⋈ … on t = s.
    let mut from = String::new();
    let mut wheres = Vec::new();
    for (i, sym) in p.0.iter().enumerate() {
        if i > 0 {
            from.push_str(", ");
            wheres.push(format!("e{}.t = e{}.s", i - 1, i));
        }
        let _ = write!(from, "({}) AS e{i}", symbol_select(*sym, schema));
    }
    let where_clause = if wheres.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", wheres.join(" AND "))
    };
    format!(
        "SELECT e0.s AS s, e{}.t AS t FROM {from}{where_clause}",
        p.len() - 1
    )
}

/// A `(s, t)` subquery for a non-starred disjunction.
fn union_select(e: &RegularExpr, schema: &Schema) -> String {
    e.disjuncts
        .iter()
        .map(|p| path_select(p, schema))
        .collect::<Vec<_>>()
        .join(" UNION ")
}

/// Translates a UCRPQ into a single SQL statement.
///
/// Fails with [`TranslateError::UnboundHeadVar`] on a head variable that no
/// conjunct binds — impossible for queries validated by `Query::new`, but
/// propagated rather than panicking so hand-built rules surface a clean
/// error through the pipeline.
pub fn translate(query: &Query, schema: &Schema) -> Result<String, TranslateError> {
    let mut ctes: Vec<String> = Vec::new();
    let mut recursive = false;
    let mut rule_selects = Vec::new();
    let mut cte_id = 0usize;

    for rule in &query.rules {
        let mut conjunct_ctes = Vec::with_capacity(rule.body.len());
        for c in &rule.body {
            let name = format!("c{cte_id}");
            cte_id += 1;
            if c.expr.starred {
                recursive = true;
                let base = format!("b{}", name);
                ctes.push(format!(
                    "{base}(s, t) AS ({})",
                    union_select(&c.expr, schema)
                ));
                ctes.push(format!(
                    "{name}(s, t) AS (SELECT id AS s, id AS t FROM node UNION \
                     SELECT r.s, b.t FROM {name} AS r, {base} AS b WHERE r.t = b.s)"
                ));
            } else {
                ctes.push(format!(
                    "{name}(s, t) AS ({})",
                    union_select(&c.expr, schema)
                ));
            }
            conjunct_ctes.push(name);
        }
        rule_selects.push(rule_select(rule, &conjunct_ctes)?);
    }

    let with = if ctes.is_empty() {
        String::new()
    } else if recursive {
        format!("WITH RECURSIVE\n  {}\n", ctes.join(",\n  "))
    } else {
        format!("WITH\n  {}\n", ctes.join(",\n  "))
    };
    let body = rule_selects.join("\nUNION\n");
    Ok(format!("{with}{body};\n"))
}

/// The per-rule `SELECT DISTINCT … FROM c0, c1, … WHERE joins`.
fn rule_select(rule: &Rule, conjunct_ctes: &[String]) -> Result<String, TranslateError> {
    // Variable -> list of (conjunct index, column) bindings.
    use std::collections::BTreeMap;
    let mut bindings: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for (i, c) in rule.body.iter().enumerate() {
        bindings
            .entry(c.src.0)
            .or_default()
            .push(format!("{}.s", conjunct_ctes[i]));
        bindings
            .entry(c.trg.0)
            .or_default()
            .push(format!("{}.t", conjunct_ctes[i]));
    }
    let mut wheres = Vec::new();
    for cols in bindings.values() {
        for pair in cols.windows(2) {
            wheres.push(format!("{} = {}", pair[0], pair[1]));
        }
    }
    let projection = if rule.head.is_empty() {
        "1 AS nonempty".to_owned()
    } else {
        rule.head
            .iter()
            .map(|v| {
                let col = &bindings
                    .get(&v.0)
                    .ok_or(TranslateError::UnboundHeadVar { var: v.0 })?[0];
                Ok(format!("{col} AS x{}", v.0))
            })
            .collect::<Result<Vec<_>, TranslateError>>()?
            .join(", ")
    };
    let from = conjunct_ctes.join(", ");
    let where_clause = if wheres.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", wheres.join(" AND "))
    };
    Ok(format!(
        "SELECT DISTINCT {projection} FROM {from}{where_clause}"
    ))
}

/// The count-distinct measurement wrapper of Section 7.1.
pub fn translate_count(query: &Query, schema: &Schema) -> Result<String, TranslateError> {
    let inner = translate(query, schema)?;
    let inner = inner.trim_end().trim_end_matches(';');
    Ok(format!("SELECT COUNT(*) FROM ({inner}) AS answers;\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, Var};
    use gmark_core::schema::{Occurrence, PredicateId, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.build().unwrap()
    }

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    #[test]
    fn single_edge_query() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(
            s.contains("c0(s, t) AS (SELECT src AS s, trg AS t FROM edge WHERE label = 'a')"),
            "{s}"
        );
        assert!(
            s.contains("SELECT DISTINCT c0.s AS x0, c0.t AS x1 FROM c0"),
            "{s}"
        );
        assert!(!s.contains("RECURSIVE"), "{s}");
    }

    #[test]
    fn inverse_swaps_columns() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(1).flipped()),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(
            s.contains("SELECT trg AS s, src AS t FROM edge WHERE label = 'b'"),
            "{s}"
        );
    }

    #[test]
    fn concatenation_joins() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::path(PathExpr(vec![sym(0), sym(1)])),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(s.contains("e0.t = e1.s"), "{s}");
        assert!(s.contains("SELECT e0.s AS s, e1.t AS t"), "{s}");
    }

    #[test]
    fn star_emits_linear_recursion() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::star(vec![PathExpr(vec![sym(0)])]),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(s.contains("WITH RECURSIVE"), "{s}");
        assert!(s.contains("SELECT id AS s, id AS t FROM node"), "{s}");
        assert!(s.contains("WHERE r.t = b.s"), "{s}");
    }

    #[test]
    fn shared_variables_become_join_conditions() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(1),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(2),
                },
            ],
        })
        .unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(s.contains("c0.t = c1.s"), "{s}");
    }

    #[test]
    fn boolean_query_selects_constant() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(s.contains("SELECT DISTINCT 1 AS nonempty"), "{s}");
    }

    #[test]
    fn multi_rule_union() {
        let mk = |p: usize| Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(p)),
                trg: Var(1),
            }],
        };
        let q = Query::new(vec![mk(0), mk(1)]).unwrap();
        let s = translate(&q, &schema()).unwrap();
        assert!(s.contains("\nUNION\n"), "{s}");
    }

    #[test]
    fn count_wrapper() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate_count(&q, &schema()).unwrap();
        assert!(s.starts_with("SELECT COUNT(*) FROM ("), "{s}");
        assert!(s.trim_end().ends_with(") AS answers;"), "{s}");
    }
}
