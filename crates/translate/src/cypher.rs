//! openCypher translation.
//!
//! openCypher's pattern language is strictly weaker than UCRPQ
//! (Section 7.1): variable-length relationship patterns (`[:a*0..]`)
//! support neither inverse traversal nor concatenations. The paper handles
//! this by degrading such queries — "the corresponding openCypher query has
//! only the non-inverse symbol and/or the first symbol in a concatenation
//! of symbols, respectively" — and we do exactly the same, marking every
//! degradation with a `// LOSSY:` comment so benchmark harnesses can detect
//! approximated queries (the reason system `G` "often has answer sets
//! that differ from … the other languages").
//!
//! Non-starred conjuncts translate faithfully: concatenations become paths
//! through anonymous nodes, single-symbol disjunctions become relationship
//! alternations `[:a|b]`, and multi-path disjunctions expand into a
//! `UNION` over the (capped) cross product of disjunct choices.

use gmark_core::query::{PathExpr, Query, RegularExpr, Rule, Symbol};
use gmark_core::schema::Schema;
use std::fmt::Write;

/// Upper bound on the disjunct cross-product expansion; beyond it, the
/// translator keeps the first disjunct and flags the loss.
const MAX_EXPANSION: usize = 64;

/// Translates a UCRPQ into openCypher.
pub fn translate(query: &Query, schema: &Schema) -> String {
    let mut notes = Vec::new();
    let mut blocks = Vec::new();
    for rule in &query.rules {
        blocks.extend(rule_blocks(rule, schema, &mut notes));
    }
    let mut out = String::new();
    for n in &notes {
        let _ = writeln!(out, "// LOSSY: {n}");
    }
    out.push_str(&blocks.join("UNION\n"));
    out
}

/// One rule may expand into several `MATCH … RETURN` blocks (disjunction
/// expansion); each block is a complete query, joined by `UNION`.
fn rule_blocks(rule: &Rule, schema: &Schema, notes: &mut Vec<String>) -> Vec<String> {
    // Per conjunct: list of pattern alternatives.
    let mut per_conjunct: Vec<Vec<String>> = Vec::with_capacity(rule.body.len());
    for c in &rule.body {
        let alternatives = conjunct_patterns(c.src.0, &c.expr, c.trg.0, schema, notes);
        per_conjunct.push(alternatives);
    }
    // Cross product of alternatives, capped.
    let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
    for alts in &per_conjunct {
        let mut next = Vec::new();
        for combo in &combos {
            for i in 0..alts.len() {
                if next.len() >= MAX_EXPANSION {
                    break;
                }
                let mut c2 = combo.clone();
                c2.push(i);
                next.push(c2);
            }
        }
        if combos.len() * alts.len() > MAX_EXPANSION {
            notes.push(format!(
                "disjunction expansion capped at {MAX_EXPANSION} combinations"
            ));
        }
        combos = next;
    }
    let ret = if rule.head.is_empty() {
        "RETURN DISTINCT true AS result".to_owned()
    } else {
        let vars: Vec<String> = rule.head.iter().map(|v| format!("x{}", v.0)).collect();
        format!("RETURN DISTINCT {}", vars.join(", "))
    };
    combos
        .into_iter()
        .map(|combo| {
            let mut block = String::new();
            for (ci, alt) in combo.iter().enumerate() {
                let _ = writeln!(block, "MATCH {}", per_conjunct[ci][*alt]);
            }
            let _ = writeln!(block, "{ret}");
            block
        })
        .collect()
}

/// Pattern alternatives for one conjunct.
fn conjunct_patterns(
    src: u32,
    expr: &RegularExpr,
    trg: u32,
    schema: &Schema,
    notes: &mut Vec<String>,
) -> Vec<String> {
    if expr.starred {
        // Degrade each disjunct to one forward symbol (paper's rule), then
        // merge into a single variable-length alternation.
        let mut labels = Vec::new();
        for p in &expr.disjuncts {
            if let Some(label) = degrade_path(p, schema, notes) {
                if !labels.contains(&label) {
                    labels.push(label);
                }
            }
        }
        if labels.is_empty() {
            notes.push("starred conjunct had no usable symbol; pattern dropped to ε".into());
            return vec![format!("(x{src})-[*0..0]->(x{trg})")];
        }
        return vec![format!("(x{src})-[:{}*0..]->(x{trg})", labels.join("|"))];
    }
    // Non-starred: single-symbol disjuncts of the same direction can merge
    // into an alternation; everything else becomes separate alternatives.
    let all_single_forward = expr
        .disjuncts
        .iter()
        .all(|p| p.len() == 1 && !p.0[0].inverse);
    if all_single_forward && expr.disjuncts.len() > 1 {
        let labels: Vec<&str> = expr
            .disjuncts
            .iter()
            .map(|p| schema.predicate_name(p.0[0].predicate))
            .collect();
        return vec![format!("(x{src})-[:{}]->(x{trg})", labels.join("|"))];
    }
    expr.disjuncts
        .iter()
        .map(|p| path_pattern(src, p, trg, schema))
        .collect()
}

/// A concatenation as a path through anonymous nodes.
fn path_pattern(src: u32, p: &PathExpr, trg: u32, schema: &Schema) -> String {
    if p.is_empty() {
        return format!("(x{src})-[*0..0]->(x{trg})");
    }
    let mut out = format!("(x{src})");
    for (i, s) in p.0.iter().enumerate() {
        let node = if i + 1 == p.len() {
            format!("(x{trg})")
        } else {
            "()".to_owned()
        };
        out.push_str(&segment(*s, schema));
        out.push_str(&node);
    }
    out
}

fn segment(s: Symbol, schema: &Schema) -> String {
    let name = schema.predicate_name(s.predicate);
    if s.inverse {
        format!("<-[:{name}]-")
    } else {
        format!("-[:{name}]->")
    }
}

/// Section 7.1's degradation for symbols under a star: keep the first
/// non-inverse symbol of the path (or the first symbol's label when all are
/// inverse, dropping the inversion).
fn degrade_path(p: &PathExpr, schema: &Schema, notes: &mut Vec<String>) -> Option<String> {
    if p.is_empty() {
        return None;
    }
    if p.len() > 1 {
        notes.push(format!(
            "concatenation of {} symbols under * reduced to its first usable symbol",
            p.len()
        ));
    }
    if let Some(sym) = p.0.iter().find(|s| !s.inverse) {
        if p.0.iter().any(|s| s.inverse) {
            notes.push("inverse symbol under * dropped".into());
        }
        return Some(schema.predicate_name(sym.predicate).to_owned());
    }
    notes.push("inverse-only path under * degraded to forward traversal".into());
    Some(schema.predicate_name(p.0[0].predicate).to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, Var};
    use gmark_core::schema::{Occurrence, PredicateId, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.predicate("c", None);
        b.build().unwrap()
    }

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    fn single(expr: RegularExpr) -> Query {
        Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr,
                trg: Var(1),
            }],
        })
        .unwrap()
    }

    #[test]
    fn simple_edge() {
        let s = translate(&single(RegularExpr::symbol(sym(0))), &schema());
        assert!(s.contains("MATCH (x0)-[:a]->(x1)"), "{s}");
        assert!(s.contains("RETURN DISTINCT x0, x1"), "{s}");
    }

    #[test]
    fn inverse_edge() {
        let s = translate(&single(RegularExpr::symbol(sym(1).flipped())), &schema());
        assert!(s.contains("MATCH (x0)<-[:b]-(x1)"), "{s}");
    }

    #[test]
    fn concatenation_through_anonymous_nodes() {
        let s = translate(
            &single(RegularExpr::path(PathExpr(vec![
                sym(0),
                sym(1).flipped(),
                sym(2),
            ]))),
            &schema(),
        );
        assert!(s.contains("MATCH (x0)-[:a]->()<-[:b]-()-[:c]->(x1)"), "{s}");
    }

    #[test]
    fn single_symbol_alternation() {
        let s = translate(
            &single(RegularExpr::union(vec![
                PathExpr(vec![sym(0)]),
                PathExpr(vec![sym(1)]),
            ])),
            &schema(),
        );
        assert!(s.contains("MATCH (x0)-[:a|b]->(x1)"), "{s}");
        assert!(!s.contains("UNION"), "{s}");
    }

    #[test]
    fn multi_path_disjunction_expands_to_union() {
        let s = translate(
            &single(RegularExpr::union(vec![
                PathExpr(vec![sym(0), sym(1)]),
                PathExpr(vec![sym(2)]),
            ])),
            &schema(),
        );
        assert!(s.contains("UNION"), "{s}");
        assert!(s.contains("(x0)-[:a]->()-[:b]->(x1)"), "{s}");
        assert!(s.contains("(x0)-[:c]->(x1)"), "{s}");
    }

    #[test]
    fn star_of_single_symbol() {
        let s = translate(
            &single(RegularExpr::star(vec![PathExpr(vec![sym(0)])])),
            &schema(),
        );
        assert!(s.contains("MATCH (x0)-[:a*0..]->(x1)"), "{s}");
        assert!(!s.contains("LOSSY"), "{s}");
    }

    #[test]
    fn star_with_concatenation_is_lossy() {
        // (a·b)* degrades to a*, per Section 7.1.
        let s = translate(
            &single(RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1)])])),
            &schema(),
        );
        assert!(s.contains("// LOSSY: concatenation"), "{s}");
        assert!(s.contains("(x0)-[:a*0..]->(x1)"), "{s}");
    }

    #[test]
    fn star_with_inverse_is_lossy() {
        // (a·a⁻)* keeps the non-inverse a.
        let s = translate(
            &single(RegularExpr::star(vec![PathExpr(vec![
                sym(0),
                sym(0).flipped(),
            ])])),
            &schema(),
        );
        assert!(s.contains("LOSSY"), "{s}");
        assert!(s.contains("(x0)-[:a*0..]->(x1)"), "{s}");
    }

    #[test]
    fn degradation_counters_match_lossy_notes() {
        // `gmark_core::workload::cypher_degradations` promises to count
        // exactly the degradations this translator flags: one star_concat
        // per "concatenation … under *" note, one star_inverse per
        // "inverse …" note. Pin the agreement on a recursion-heavy
        // generated workload.
        use gmark_core::usecases;
        use gmark_core::workload::{cypher_degradations, generate_workload, WorkloadConfig};
        let schema = usecases::bib();
        let mut cfg = WorkloadConfig::new(40).with_seed(0xC1FE);
        cfg.recursion_probability = 0.6;
        cfg.query_size.length = (1, 3);
        cfg.query_size.disjuncts = (1, 2);
        let (workload, report) = generate_workload(&schema, &cfg).unwrap();
        let mut concat_notes = 0u64;
        let mut inverse_notes = 0u64;
        let mut counted = gmark_core::workload::CypherDegradations::default();
        for gq in &workload.queries {
            let text = translate(&gq.query, &schema);
            concat_notes += text
                .lines()
                .filter(|l| l.starts_with("// LOSSY: concatenation"))
                .count() as u64;
            inverse_notes += text
                .lines()
                .filter(|l| l.starts_with("// LOSSY: inverse"))
                .count() as u64;
            let d = cypher_degradations(&gq.query);
            counted.star_concat += d.star_concat;
            counted.star_inverse += d.star_inverse;
        }
        assert_eq!(counted.star_concat, concat_notes, "concat counters drift");
        assert_eq!(
            counted.star_inverse, inverse_notes,
            "inverse counters drift"
        );
        // The WorkloadReport aggregates the same counters.
        assert_eq!(report.cypher, counted);
        assert!(
            workload.queries.iter().any(|gq| gq.query.is_recursive()),
            "test workload should exercise stars"
        );
    }

    #[test]
    fn boolean_query_returns_flag() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("RETURN DISTINCT true AS result"), "{s}");
    }
}
