//! The streaming workload pipeline: generation → translation → output
//! without materializing the workload's text in memory.
//!
//! The gMark CLI historically accumulated every query's rule notation and
//! all four translated syntaxes as `String`s before writing them, which
//! caps workload size at available RAM. This module instead drives the
//! whole path incrementally, mirroring the graph pipeline's architecture
//! (`gmark_core::gen::generate_streamed`):
//!
//! * the shared selectivity context is built once as an immutable
//!   [`WorkloadContext`] snapshot;
//! * worker threads claim query indices from a shared counter, generate
//!   query `i` from its own RNG stream (split off the master seed by
//!   index), render its five documents — rule notation plus SPARQL,
//!   openCypher, SQL, Datalog — and write them to per-query shards
//!   ([`gmark_store::ShardSet`], one set per document);
//! * shards are concatenated in **ascending query index**, reproducing
//!   byte for byte what a single-threaded run streams directly (the
//!   1-thread path skips the shard files entirely).
//!
//! Because shard `(d, i)` is a pure function of `(schema, config, i)`, all
//! five documents are byte-identical at every thread count — pinned by
//! `tests/workload_determinism.rs` and the CI `cmp` smoke step.
//!
//! Per-worker partial [`WorkloadReport`]s and [`DiversitySummary`]s are
//! merged commutatively, so the summary is scheduling-independent too.
//!
//! This module is the workload half of the pipeline; the `gmark` facade
//! crate's `run` module orchestrates it (plan → options → sink) behind
//! one API, and maps [`WorkloadStreamError`] into the unified
//! `GmarkError` variant for variant.

use crate::{translate, Syntax, TranslateError};
use gmark_core::schema::Schema;
use gmark_core::workload::{
    DiversitySummary, GeneratedQuery, WorkloadConfig, WorkloadContext, WorkloadError,
    WorkloadReport,
};
use gmark_store::ShardSet;
use std::io::{self, Write};
use std::path::PathBuf;

/// Number of output documents: the rule notation plus the four syntaxes.
pub const DOC_COUNT: usize = 5;

/// The five destinations of a streamed workload, in document order: rule
/// notation (`workload.txt`), then SPARQL, openCypher, SQL, Datalog.
#[derive(Debug)]
pub struct WorkloadOutputs<W> {
    /// The paper's rule notation (`workload.txt`).
    pub rules: W,
    /// SPARQL 1.1 (`workload.sparql`).
    pub sparql: W,
    /// openCypher (`workload.cypher`).
    pub cypher: W,
    /// SQL:1999 (`workload.sql`).
    pub sql: W,
    /// Datalog (`workload.datalog`).
    pub datalog: W,
}

impl<W: Write> WorkloadOutputs<W> {
    /// The outputs as an array indexed in document order.
    fn as_array_mut(&mut self) -> [&mut W; DOC_COUNT] {
        [
            &mut self.rules,
            &mut self.sparql,
            &mut self.cypher,
            &mut self.sql,
            &mut self.datalog,
        ]
    }
}

/// Options for [`stream_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadStreamOptions {
    /// Worker threads; `0` auto-detects via
    /// [`std::thread::available_parallelism`]. Output never depends on
    /// this value.
    pub threads: usize,
    /// Parent directory for the temporary per-query shard files (used only
    /// with more than one thread). Pick one on the same filesystem as the
    /// final outputs so concatenation is a plain sequential copy.
    pub scratch_dir: PathBuf,
}

impl Default for WorkloadStreamOptions {
    fn default() -> Self {
        WorkloadStreamOptions {
            threads: 1,
            scratch_dir: std::env::temp_dir(),
        }
    }
}

/// An error from the streaming workload pipeline. Generation and
/// translation failures carry the failing query index; in a parallel run
/// the **lowest** failing index is reported, independent of scheduling.
#[derive(Debug)]
pub enum WorkloadStreamError {
    /// Query construction failed (carries its own index).
    Generate(WorkloadError),
    /// Translating query `index` failed.
    Translate {
        /// The failing query's index.
        index: usize,
        /// The underlying translation error.
        source: TranslateError,
    },
    /// Writing a shard or an output failed.
    Io(io::Error),
}

impl std::fmt::Display for WorkloadStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadStreamError::Generate(e) => write!(f, "generating {e}"),
            WorkloadStreamError::Translate { index, source } => {
                write!(f, "translating query {index}: {source}")
            }
            WorkloadStreamError::Io(e) => write!(f, "writing workload: {e}"),
        }
    }
}

impl std::error::Error for WorkloadStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadStreamError::Generate(e) => Some(e),
            WorkloadStreamError::Translate { source, .. } => Some(source),
            WorkloadStreamError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for WorkloadStreamError {
    fn from(e: io::Error) -> Self {
        WorkloadStreamError::Io(e)
    }
}

impl From<WorkloadError> for WorkloadStreamError {
    fn from(e: WorkloadError) -> Self {
        WorkloadStreamError::Generate(e)
    }
}

/// Summary of a streamed workload run (the streaming counterpart of the
/// `(Workload, WorkloadReport)` pair — the queries themselves were written
/// out, not kept).
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    /// The generation report (produced / unsatisfied / relaxations /
    /// cypher degradations).
    pub report: WorkloadReport,
    /// Workload diversity, as [`gmark_core::workload::Workload::diversity`]
    /// would compute it.
    pub diversity: DiversitySummary,
    /// Bytes written per document, in document order.
    pub bytes: [u64; DOC_COUNT],
    /// Worker threads actually used after resolving `0 = auto-detect` and
    /// clamping to the workload size (what the CLI reports).
    pub threads: usize,
}

/// Renders query `i`'s five documents. Each document gets a per-query
/// header in that syntax's own comment leader; the rule-notation header
/// additionally records the target class, shape, and estimated α̂.
fn render_query(
    index: usize,
    gq: &GeneratedQuery,
    schema: &Schema,
) -> Result<[String; DOC_COUNT], WorkloadStreamError> {
    let rules = format!(
        "# query {index} target={} shape={} estimated_alpha={:?}\n{}\n\n",
        gq.target.map_or("-".into(), |t| t.to_string()),
        gq.shape,
        gq.estimated_alpha,
        gq.query.display(schema)
    );
    let mut docs = [
        rules,
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ];
    for (d, syntax) in Syntax::ALL.into_iter().enumerate() {
        let text = translate(&gq.query, schema, syntax)
            .map_err(|source| WorkloadStreamError::Translate { index, source })?;
        docs[d + 1] = format!("{} query {index}\n{text}\n", syntax.comment_prefix());
    }
    Ok(docs)
}

/// Renders an **already-materialized** workload's five documents in
/// index order — byte-for-byte what [`stream_workload`] produces for the
/// same queries (both funnel through the same per-query renderer; pinned
/// by this module's materialize-then-translate test). Returns the bytes
/// written per document, in document order.
///
/// This is the path for callers that must hold the [`GeneratedQuery`]s
/// in memory anyway (the evaluation pipeline, notably): generate once,
/// render from the materialized workload, instead of paying query
/// generation a second time inside [`stream_workload`]. Rendering is
/// sequential — translation is cheap next to generation and evaluation.
pub fn write_workload<W: Write>(
    schema: &Schema,
    queries: &[GeneratedQuery],
    outs: &mut WorkloadOutputs<W>,
) -> Result<[u64; DOC_COUNT], WorkloadStreamError> {
    let mut bytes = [0u64; DOC_COUNT];
    let destinations = outs.as_array_mut();
    for (i, gq) in queries.iter().enumerate() {
        let docs = render_query(i, gq, schema)?;
        for (d, text) in docs.iter().enumerate() {
            destinations[d].write_all(text.as_bytes())?;
            bytes[d] += text.len() as u64;
        }
    }
    for out in destinations {
        out.flush()?;
    }
    Ok(bytes)
}

/// Per-worker fold state for the parallel path.
#[derive(Default)]
struct Partial {
    report: WorkloadReport,
    diversity: DiversitySummary,
}

impl Partial {
    fn absorb(&mut self, gq: &GeneratedQuery) {
        self.report.absorb(gq);
        self.diversity.add(gq);
    }
}

/// Generates, translates, and writes a whole workload without holding more
/// than one query's text in memory per worker (see the module docs). All
/// five documents are byte-identical for every thread count.
pub fn stream_workload<W: Write>(
    schema: &Schema,
    config: &WorkloadConfig,
    opts: &WorkloadStreamOptions,
    outs: &mut WorkloadOutputs<W>,
) -> Result<StreamSummary, WorkloadStreamError> {
    let ctx = WorkloadContext::new(schema, config);
    let size = config.size;
    let threads = ctx.effective_threads(opts.threads);

    let mut summary = StreamSummary {
        threads,
        ..StreamSummary::default()
    };
    if threads <= 1 {
        // Query order equals concat order, so the sequential path streams
        // the same bytes as the sharded path without touching scratch.
        let destinations = outs.as_array_mut();
        for i in 0..size {
            let gq = ctx.generate(i)?;
            let docs = render_query(i, &gq, schema)?;
            for (d, text) in docs.iter().enumerate() {
                destinations[d].write_all(text.as_bytes())?;
                summary.bytes[d] += text.len() as u64;
            }
            summary.report.absorb(&gq);
            summary.diversity.add(&gq);
        }
        for out in destinations {
            out.flush()?;
        }
        return Ok(summary);
    }

    // Parallel path: one shard set per document, one shard per query.
    let sets: Vec<ShardSet> = (0..DOC_COUNT)
        .map(|_| ShardSet::create(&opts.scratch_dir, size))
        .collect::<io::Result<_>>()?;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<Result<Partial, (usize, WorkloadStreamError)>> =
        std::thread::scope(|scope| {
            let (next, ctx, sets) = (&next, &ctx, &sets);
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut partial = Partial::default();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= size {
                                break;
                            }
                            let gq = ctx.generate(i).map_err(|e| (i, e.into()))?;
                            let docs = render_query(i, &gq, schema).map_err(|e| (i, e))?;
                            for (d, text) in docs.iter().enumerate() {
                                let write = || -> io::Result<()> {
                                    let mut w = sets[d].text_writer(i)?;
                                    w.write_str(text)?;
                                    w.finish()?;
                                    Ok(())
                                };
                                write().map_err(|e| (i, e.into()))?;
                            }
                            partial.absorb(&gq);
                        }
                        Ok(partial)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("workload streaming worker panicked"))
                .collect()
        });

    // Report the lowest failing index (scheduling-independent: every index
    // below it was claimed earlier and completed by whoever claimed it).
    let mut first_error: Option<(usize, WorkloadStreamError)> = None;
    for result in per_worker {
        match result {
            Ok(partial) => {
                summary.report.merge(&partial.report);
                summary.diversity.merge(&partial.diversity);
            }
            Err((i, e)) => {
                if first_error.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_error = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    for (d, out) in outs.as_array_mut().into_iter().enumerate() {
        summary.bytes[d] = sets[d].concat_into(out)?;
        out.flush()?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::usecases;
    use gmark_core::workload::Shape;

    fn outputs() -> WorkloadOutputs<Vec<u8>> {
        WorkloadOutputs {
            rules: Vec::new(),
            sparql: Vec::new(),
            cypher: Vec::new(),
            sql: Vec::new(),
            datalog: Vec::new(),
        }
    }

    fn config() -> WorkloadConfig {
        let mut cfg = WorkloadConfig::new(16).with_seed(0xCAFE);
        cfg.shapes = Shape::ALL.to_vec();
        cfg.recursion_probability = 0.3;
        cfg
    }

    fn run(threads: usize) -> (StreamSummary, WorkloadOutputs<Vec<u8>>) {
        let schema = usecases::bib();
        let mut outs = outputs();
        let opts = WorkloadStreamOptions {
            threads,
            ..Default::default()
        };
        let summary = stream_workload(&schema, &config(), &opts, &mut outs).expect("streams");
        (summary, outs)
    }

    #[test]
    fn streamed_documents_are_byte_identical_across_thread_counts() {
        let (base_summary, base) = run(1);
        assert_eq!(base_summary.report.produced, 16);
        assert!(!base.rules.is_empty());
        for threads in [2, 8] {
            let (summary, outs) = run(threads);
            assert_eq!(outs.rules, base.rules, "{threads} threads: rules differ");
            assert_eq!(
                outs.sparql, base.sparql,
                "{threads} threads: sparql differs"
            );
            assert_eq!(
                outs.cypher, base.cypher,
                "{threads} threads: cypher differs"
            );
            assert_eq!(outs.sql, base.sql, "{threads} threads: sql differs");
            assert_eq!(
                outs.datalog, base.datalog,
                "{threads} threads: datalog differs"
            );
            assert_eq!(summary.report, base_summary.report);
            assert_eq!(summary.bytes, base_summary.bytes);
            assert_eq!(summary.diversity.total, base_summary.diversity.total);
            assert_eq!(summary.diversity.by_shape, base_summary.diversity.by_shape);
        }
    }

    #[test]
    fn streamed_matches_materialize_then_translate() {
        // The streamed documents must equal what generating the workload
        // and rendering each query sequentially would produce.
        let schema = usecases::bib();
        let cfg = config();
        let (workload, report) =
            gmark_core::workload::generate_workload(&schema, &cfg).expect("generates");
        let mut expected = outputs();
        let destinations = expected.as_array_mut();
        for (i, gq) in workload.queries.iter().enumerate() {
            let docs = render_query(i, gq, &schema).expect("renders");
            for (d, text) in docs.iter().enumerate() {
                destinations[d].extend_from_slice(text.as_bytes());
            }
        }
        let (summary, outs) = run(4);
        assert_eq!(outs.rules, expected.rules);
        assert_eq!(outs.sparql, expected.sparql);
        assert_eq!(outs.cypher, expected.cypher);
        assert_eq!(outs.sql, expected.sql);
        assert_eq!(outs.datalog, expected.datalog);
        assert_eq!(summary.report, report);
    }

    #[test]
    fn write_workload_matches_stream_workload_bytes() {
        let schema = usecases::bib();
        let cfg = config();
        let (workload, _) =
            gmark_core::workload::generate_workload(&schema, &cfg).expect("generates");
        let mut rendered = outputs();
        let bytes = write_workload(&schema, &workload.queries, &mut rendered).expect("renders");
        let (summary, streamed) = run(4);
        assert_eq!(rendered.rules, streamed.rules);
        assert_eq!(rendered.sparql, streamed.sparql);
        assert_eq!(rendered.cypher, streamed.cypher);
        assert_eq!(rendered.sql, streamed.sql);
        assert_eq!(rendered.datalog, streamed.datalog);
        assert_eq!(bytes, summary.bytes);
    }

    #[test]
    fn headers_use_per_syntax_comment_leaders() {
        let (_, outs) = run(1);
        let sparql = String::from_utf8(outs.sparql).unwrap();
        let cypher = String::from_utf8(outs.cypher).unwrap();
        let sql = String::from_utf8(outs.sql).unwrap();
        let datalog = String::from_utf8(outs.datalog).unwrap();
        assert!(sparql.starts_with("# query 0\n"), "{sparql}");
        assert!(cypher.starts_with("// query 0\n"), "{cypher}");
        assert!(sql.starts_with("-- query 0\n"), "{sql}");
        assert!(datalog.starts_with("% query 0\n"), "{datalog}");
        // Every query appears in every document.
        for doc in [&sparql, &cypher, &sql, &datalog] {
            assert!(doc.contains("query 15"), "last query missing");
        }
    }

    #[test]
    fn empty_workload_streams_nothing() {
        let schema = usecases::bib();
        let cfg = WorkloadConfig::new(0);
        let mut outs = outputs();
        let summary = stream_workload(&schema, &cfg, &WorkloadStreamOptions::default(), &mut outs)
            .expect("empty workload streams");
        assert_eq!(summary.report.produced, 0);
        assert!(outs.rules.is_empty());
        assert_eq!(summary.bytes, [0; DOC_COUNT]);
    }

    #[test]
    fn no_scratch_leftovers_after_parallel_run() {
        let scratch = std::env::temp_dir().join(format!("gmark-wl-scratch-{}", std::process::id()));
        let schema = usecases::bib();
        let mut outs = outputs();
        let opts = WorkloadStreamOptions {
            threads: 4,
            scratch_dir: scratch.clone(),
        };
        stream_workload(&schema, &config(), &opts, &mut outs).expect("streams");
        let leftovers: Vec<_> = std::fs::read_dir(&scratch)
            .map(|rd| rd.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover shard dirs: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
